"""Tests for the §8 extension cores: in-order and OoO timing models."""

import pytest

from repro.analysis import CriticalPathProbe
from repro.sim.config import load_core_model
from repro.sim.inorder import InOrderTimingProbe
from repro.sim.ooo import OoOTimingProbe
from repro.workloads import run_workload
from repro.workloads.stream import Stream, StreamParams

WL = Stream(StreamParams(n=128, ntimes=1))


def run_with(probes, isa="rv64"):
    run_workload(WL, isa, "gcc12", probes)
    return probes


class TestInOrder:
    def test_cycles_at_least_issue_bound(self):
        model = load_core_model("tx2-riscv")
        probe, = run_with([InOrderTimingProbe(model, issue_width=2)])
        result = probe.result()
        assert result.cycles >= result.instructions / 2
        assert result.ipc <= 2.0

    def test_single_issue_slower_than_dual(self):
        model = load_core_model("tx2-riscv")
        single, dual = run_with([
            InOrderTimingProbe(model, issue_width=1),
            InOrderTimingProbe(model, issue_width=2),
        ])
        assert single.result().cycles >= dual.result().cycles
        assert single.result().ipc <= 1.0

    def test_cycles_at_least_scaled_cp(self):
        """An in-order core can never beat the latency-weighted dataflow
        bound on the same latencies (loads/stores unscaled there)."""
        model = load_core_model("tx2-riscv")
        inorder, cp = run_with([
            InOrderTimingProbe(model),
            CriticalPathProbe(model),
        ])
        assert inorder.result().cycles >= cp.result().critical_path

    def test_branch_redirect_costs_cycles(self):
        model = load_core_model("tx2-riscv")
        cheap, dear = run_with([
            InOrderTimingProbe(model, branch_redirect=0),
            InOrderTimingProbe(model, branch_redirect=5),
        ])
        assert dear.result().cycles > cheap.result().cycles


class TestOoO:
    def test_cycles_bounded_below_by_cp(self):
        model = load_core_model("tx2-riscv")
        ooo, cp = run_with([
            OoOTimingProbe(model),
            CriticalPathProbe(model),
        ])
        # complete-time is CP-bounded; commit adds in-order drain
        assert ooo.result().cycles >= cp.result().critical_path

    def test_ooo_beats_inorder(self):
        model = load_core_model("tx2-riscv")
        ooo, inorder = run_with([
            OoOTimingProbe(model),
            InOrderTimingProbe(model),
        ])
        assert ooo.result().cycles < inorder.result().cycles

    def test_bigger_rob_never_slower(self):
        model = load_core_model("tx2-riscv")
        probes = [OoOTimingProbe(model, rob_size=size)
                  for size in (4, 16, 64, 256)]
        run_with(list(probes))
        cycles = [p.result().cycles for p in probes]
        assert cycles == sorted(cycles, reverse=True) or all(
            cycles[i] >= cycles[i + 1] for i in range(len(cycles) - 1)
        )

    def test_wider_issue_never_slower(self):
        model = load_core_model("tx2-riscv")
        narrow, wide = run_with([
            OoOTimingProbe(model, issue_width=1),
            OoOTimingProbe(model, issue_width=8),
        ])
        assert narrow.result().cycles >= wide.result().cycles

    def test_ipc_bounded_by_commit_width(self):
        model = load_core_model("tx2-riscv")
        probe, = run_with([OoOTimingProbe(model, commit_width=2)])
        assert probe.result().ipc <= 2.0

    def test_tiny_rob_approaches_inorder(self):
        model = load_core_model("tx2-riscv")
        tiny, big = run_with([
            OoOTimingProbe(model, rob_size=2, issue_width=1),
            OoOTimingProbe(model, rob_size=512, issue_width=8),
        ])
        assert tiny.result().cycles > big.result().cycles * 1.5

    def test_runtime_ms(self):
        model = load_core_model("tx2-riscv")
        probe, = run_with([OoOTimingProbe(model)])
        result = probe.result()
        assert result.runtime_ms(2.0) == pytest.approx(
            result.cycles / 2e9 * 1e3
        )


class TestIsaComparisonWithCores:
    def test_both_isas_run_on_both_cores(self):
        for isa, model_name in (("rv64", "tx2-riscv"), ("aarch64", "tx2")):
            model = load_core_model(model_name)
            inorder = InOrderTimingProbe(model)
            ooo = OoOTimingProbe(model)
            run_workload(WL, isa, "gcc12", [inorder, ooo])
            assert 0 < ooo.result().cycles < inorder.result().cycles


class TestSimulateWrapper:
    def test_emulation_pipeline(self):
        from repro.isa import get_isa
        from repro.sim import simulate
        compiled = WL.compile("rv64", "gcc12")
        outcome = simulate(compiled.image, get_isa("rv64"))
        assert outcome.pipeline == "emulation"
        assert outcome.cycles == outcome.instructions  # 1 IPC by definition
        assert outcome.cpi == 1.0

    def test_timed_pipelines_ordered(self):
        from repro.isa import get_isa
        from repro.sim import simulate
        compiled = WL.compile("aarch64", "gcc12")
        isa = get_isa("aarch64")
        inorder = simulate(compiled.image, isa, pipeline="inorder", model="tx2")
        ooo = simulate(compiled.image, isa, pipeline="ooo", model="tx2")
        assert ooo.cycles < inorder.cycles
        assert inorder.runtime_ms() > ooo.runtime_ms()
        # default clock comes from the model
        assert inorder.runtime_ms() == pytest.approx(
            inorder.cycles / (inorder.model.clock_ghz * 1e9) * 1e3
        )

    def test_errors(self):
        from repro.common import SimulationError
        from repro.isa import get_isa
        from repro.sim import simulate
        compiled = WL.compile("rv64", "gcc12")
        isa = get_isa("rv64")
        with pytest.raises(SimulationError):
            simulate(compiled.image, isa, pipeline="superscalar9000")
        with pytest.raises(SimulationError):
            simulate(compiled.image, isa, pipeline="ooo")  # no model


class TestTuneTargetModels:
    """The paper's -mtune cores (§2.2) as in-order timing models."""

    def test_models_load(self):
        a55 = load_core_model("cortex-a55")
        u7 = load_core_model("sifive-7")
        assert a55.pipeline.issue_width == 2
        assert u7.pipeline.issue_width == 2
        assert a55.isa == "aarch64" and u7.isa == "rv64"

    def test_tuned_inorder_comparison(self):
        """Both little cores run both validated binaries; runtimes land in
        the same ballpark (the paper's premise that the two -mtune targets
        are comparable machines)."""
        results = {}
        for isa, model_name in (("aarch64", "cortex-a55"),
                                ("rv64", "sifive-7")):
            model = load_core_model(model_name)
            probe = InOrderTimingProbe(model)
            run_workload(WL, isa, "gcc12", [probe])
            results[isa] = probe.result()
        ratio = results["rv64"].cycles / results["aarch64"].cycles
        assert 0.6 < ratio < 1.6, ratio
        for result in results.values():
            assert 0 < result.ipc <= 2.0
