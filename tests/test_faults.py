"""Fault-injection harness tests: every fault class in FaultPlan either
completes with results identical to a fault-free run (crash, hang,
transient, corrupt-cache, translation faults) or produces a structured
failure report — plus checkpoint/resume with byte-identical artifacts.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.critpath import CriticalPathResult
from repro.analysis.mix import InstructionMixResult
from repro.analysis.pathlength import PathLengthResult
from repro.analysis.windowed import WindowedCPResult
from repro.common.errors import ExperimentError
from repro.isa.base import InstructionGroup
from repro.harness import executor as executor_mod
from repro.harness import faults
from repro.harness.cache import ResultCache, TraceStore
from repro.harness.checkpoint import RunJournal, unfinished_runs
from repro.harness.events import (
    CacheCorruption,
    EventBus,
    ExecutorDegraded,
    PlanFailed,
)
from repro.harness.executor import Executor, SuiteExecutionError, execute_plan
from repro.harness.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    InjectedTransientError,
)
from repro.harness.plan import ExperimentPlan, plan_suite, suite_params_doc


def make_plan(**overrides) -> ExperimentPlan:
    base = dict(workload="stream", isa="rv64", profile="gcc12", scale=0.02,
                windowed=True, window_sizes=(4, 16))
    base.update(overrides)
    return ExperimentPlan(**base)


def make_result(plan: ExperimentPlan, seed: int = 7):
    """A synthetic but structurally complete ConfigResult."""
    from repro.harness.experiments import ConfigResult

    windowed = None
    if plan.windowed:
        windowed = {w: WindowedCPResult(window_size=w, count=3,
                                        total_cp=6 * seed, max_cp=3 * seed,
                                        min_cp=seed, cps=[seed, 2 * seed])
                    for w in plan.window_sizes}
    return ConfigResult(
        workload=plan.workload,
        isa=plan.isa,
        profile=plan.profile,
        path=PathLengthResult(total=100 * seed,
                              per_region={"copy": 60 * seed,
                                          "other": 40 * seed}),
        cp=CriticalPathResult(critical_path=10 * seed,
                              instructions=100 * seed),
        scaled_cp=CriticalPathResult(critical_path=60 * seed,
                                     instructions=100 * seed),
        mix=InstructionMixResult(
            total=100 * seed,
            by_mnemonic={"add": 50 * seed, "beq": 10 * seed},
            by_group={InstructionGroup.INT_SIMPLE: 90 * seed,
                      InstructionGroup.BRANCH: 10 * seed},
            branches=10 * seed, conditional_branches=9 * seed,
            flag_setters=0, loads=20 * seed, stores=10 * seed),
        windowed=windowed,
    )


#: The small real matrix the integration tests run: 4 configs, no
#: windowed analysis (fast), deterministic results.
SUITE_KW = dict(workloads=("stream",), windowed=False)
PLANS = plan_suite(0.02, **SUITE_KW)


def docs(results) -> dict:
    """Canonical JSON per plan — byte-level result identity."""
    return {plan.describe(): json.dumps(result.to_dict(), sort_keys=True)
            for plan, result in results.items()}


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def baseline():
    """Fault-free serial results of the real 4-config matrix."""
    return docs(Executor(jobs=1).run(PLANS))


def capture_bus():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    return bus, seen


# ---------------------------------------------------------- FaultPlan unit

class TestFaultPlan:
    def test_roundtrip(self):
        plan = FaultPlan([FaultSpec(site="worker", kind="crash",
                                    plan="stream", attempts=(1, 2),
                                    at=(3,), seconds=1.5, exit_code=9)],
                         seed=42)
        again = FaultPlan.loads(plan.dumps())
        assert again.to_dict() == plan.to_dict()

    def test_bad_schema_rejected(self):
        with pytest.raises(ExperimentError):
            FaultPlan.from_dict({"v": 99, "specs": []})

    def test_site_and_plan_filters(self):
        plan = FaultPlan([FaultSpec(site="execute", kind="error",
                                    plan="rv64/gcc12")])
        assert plan.fire("worker", plan="stream/rv64/gcc12") is None
        assert plan.fire("execute", plan="stream/aarch64/gcc12") is None
        assert plan.fire("execute", plan="stream/rv64/gcc12") is not None

    def test_attempt_filter(self):
        plan = FaultPlan([FaultSpec(site="execute", kind="error",
                                    attempts=(1,))])
        assert plan.fire("execute", attempt=1) is not None
        assert plan.fire("execute", attempt=2) is None

    def test_occurrence_filter_counts_matching_only(self):
        plan = FaultPlan([FaultSpec(site="execute", kind="error",
                                    plan="rv64", at=(2,))])
        # non-matching plans do not advance the occurrence counter
        assert plan.fire("execute", plan="a/aarch64/x") is None
        assert plan.fire("execute", plan="a/rv64/x") is None       # occ 1
        assert plan.fire("execute", plan="b/rv64/x") is not None   # occ 2
        assert plan.fire("execute", plan="c/rv64/x") is None       # occ 3

    def test_crash_requires_worker_context(self):
        plan = FaultPlan([FaultSpec(site="worker", kind="crash")])
        assert plan.fire("worker", in_worker=False) is None
        assert plan.fire("worker", in_worker=True) is not None

    def test_check_raises_typed_errors(self):
        faults.install(FaultPlan([
            FaultSpec(site="a", kind="transient"),
            FaultSpec(site="b", kind="error"),
        ]))
        with pytest.raises(InjectedTransientError):
            faults.check("a")
        with pytest.raises(InjectedFaultError):
            faults.check("b")
        faults.check("unconfigured-site")  # no-op

    def test_garble_is_deterministic_per_seed(self):
        data = bytes(range(256)) * 4
        mangled = []
        for _ in range(2):
            faults.install(FaultPlan(
                [FaultSpec(site="cache-result-write", kind="garble")],
                seed=7))
            mangled.append(faults.corrupt("cache-result-write", data))
            faults.uninstall()
        assert mangled[0] == mangled[1]
        assert mangled[0] != data
        faults.install(FaultPlan(
            [FaultSpec(site="cache-result-write", kind="garble")], seed=8))
        assert faults.corrupt("cache-result-write", data) != mangled[0]

    def test_validate_rejects_unknown_site_and_misapplied_kind(self):
        with pytest.raises(ExperimentError, match="unknown fault site"):
            FaultPlan([FaultSpec(site="nope", kind="error")]).validate()
        with pytest.raises(ExperimentError, match="does not apply"):
            FaultPlan([FaultSpec(site="serve", kind="leftover")]).validate()
        with pytest.raises(ExperimentError, match="does not apply"):
            FaultPlan([FaultSpec(site="translate-compile",
                                 kind="garble")]).validate()
        plan = FaultPlan([FaultSpec(site="serve", kind="crash"),
                          FaultSpec(site="serve", kind="garble"),
                          FaultSpec(site="warm", kind="truncate")])
        assert plan.validate() is plan  # chains

    def test_check_daemon_opens_worker_gated_kinds(self):
        # plain fire() refuses crash outside worker context — the
        # daemon is not an executor worker
        faults.install(FaultPlan([FaultSpec(site="serve", kind="crash")]))
        assert faults.fire("serve", ("crash",)) is None
        faults.uninstall()
        # check_daemon opts the daemon in deliberately (proven via
        # kind="error"; actually firing a crash would exit pytest)
        faults.install(FaultPlan([FaultSpec(site="serve", kind="error")]))
        with pytest.raises(InjectedFaultError):
            faults.check_daemon("serve", kinds=("crash", "error"))
        # kinds outside ACTION_KINDS are filtered out, never fired
        faults.check_daemon("serve", kinds=("garble",))  # no-op

    def test_inactive_is_identity(self):
        assert faults.active() is None
        assert faults.fire("execute") is None
        assert faults.corrupt("cache-result-write", b"abc") == b"abc"


# ------------------------------------------------- executor supervision

class TestWorkerSupervision:
    def test_worker_crash_retried_and_byte_identical(self, baseline):
        faults.install(FaultPlan([FaultSpec(
            site="worker", kind="crash", plan="stream/rv64/gcc12",
            attempts=(1,))]))
        bus, seen = capture_bus()
        results = Executor(jobs=2, retries=1, backoff=0.01,
                           events=bus).run(PLANS)
        assert docs(results) == baseline
        failed = [e for e in seen if isinstance(e, PlanFailed)]
        assert failed and all(e.will_retry for e in failed)
        assert all("rv64/gcc12" in e.plan.describe() for e in failed)

    def test_hang_detected_by_heartbeat_not_timeout(self, monkeypatch):
        monkeypatch.setattr(
            executor_mod, "execute_plan",
            lambda plan, trace_store=None, warm_cache=None: make_result(plan))
        faults.install(FaultPlan([FaultSpec(
            site="worker", kind="hang", plan="stream/rv64/gcc9",
            attempts=(1,), seconds=30.0)]))
        bus, seen = capture_bus()
        results = Executor(jobs=2, heartbeat=0.5, retries=1, backoff=0.01,
                           events=bus).run(PLANS)
        assert len(results) == 4
        failed = [e for e in seen if isinstance(e, PlanFailed)]
        assert len(failed) == 1
        assert "heartbeat" in failed[0].error
        assert failed[0].will_retry

    def test_transient_retry_records_attempt_history(self):
        faults.install(FaultPlan([FaultSpec(
            site="execute", kind="transient", plan="stream/rv64/gcc9",
            attempts=(1, 2))]))
        bus, seen = capture_bus()
        results = Executor(jobs=1, retries=2, backoff=0.0,
                           events=bus).run([PLANS[2]])
        assert len(results) == 1
        failed = [e for e in seen if isinstance(e, PlanFailed)]
        assert [e.attempt for e in failed] == [1, 2]
        assert failed[0].history == ()
        assert failed[1].history == (failed[0].error,)

    def test_exhausted_retries_raise_structured_report(self):
        faults.install(FaultPlan([FaultSpec(
            site="execute", kind="transient", plan="stream/rv64/gcc9")]))
        with pytest.raises(SuiteExecutionError) as exc:
            Executor(jobs=1, retries=1, backoff=0.0).run([PLANS[2]])
        (report,) = exc.value.reports
        assert report.plan.describe() == "stream/rv64/gcc9"
        assert len(report.attempts) == 2
        assert all(a.transient for a in report.attempts)
        assert "attempt 1" in str(exc.value)

    def test_deterministic_error_not_retried_serial(self):
        faults.install(FaultPlan([FaultSpec(
            site="execute", kind="error", plan="stream/rv64/gcc9")]))
        bus, seen = capture_bus()
        with pytest.raises(InjectedFaultError):
            Executor(jobs=1, events=bus).run([PLANS[2]])
        failed = [e for e in seen if isinstance(e, PlanFailed)]
        assert len(failed) == 1 and not failed[0].will_retry

    def test_deterministic_error_not_retried_pool(self, monkeypatch):
        def fake(plan, trace_store=None, warm_cache=None):
            faults.check("execute")  # the real execute_plan's fault site
            return make_result(plan)

        monkeypatch.setattr(executor_mod, "execute_plan", fake)
        faults.install(FaultPlan([FaultSpec(
            site="execute", kind="error", plan="stream/rv64/gcc9")]))
        with pytest.raises(SuiteExecutionError) as exc:
            Executor(jobs=2, retries=3, backoff=0.0).run(PLANS)
        (report,) = exc.value.reports
        assert len(report.attempts) == 1  # deterministic: no retry
        assert not report.attempts[0].transient

    def test_repeated_pool_failures_degrade_to_serial(self, monkeypatch):
        monkeypatch.setattr(
            executor_mod, "execute_plan",
            lambda plan, trace_store=None, warm_cache=None: make_result(plan))
        # every worker process crashes; the in-process fallback does not
        # (crash specs require worker context)
        faults.install(FaultPlan([FaultSpec(site="worker", kind="crash")]))
        bus, seen = capture_bus()
        results = Executor(jobs=2, retries=10, backoff=0.0,
                           events=bus).run(PLANS)
        assert len(results) == 4
        degraded = [e for e in seen if isinstance(e, ExecutorDegraded)]
        assert len(degraded) == 1
        assert degraded[0].failures >= executor_mod.POOL_FAILURE_LIMIT

    def test_worker_interrupt_reraises(self):
        # satellite: KeyboardInterrupt must escape _child_main (after
        # reporting), not be swallowed as a plan failure
        class Conn:
            def __init__(self):
                self.sent = []

            def send(self, msg):
                self.sent.append(msg)

            def close(self):
                pass

        conn = Conn()
        plan_doc = make_plan().to_dict()

        def interrupt(plan, trace_store=None, warm_cache=None):
            raise KeyboardInterrupt

        real = executor_mod.execute_plan
        executor_mod.execute_plan = interrupt
        try:
            with pytest.raises(KeyboardInterrupt):
                executor_mod._child_main(conn, plan_doc)
        finally:
            executor_mod.execute_plan = real
        assert conn.sent and conn.sent[-1]["ok"] is False


# ---------------------------------------------------- cache corruption

class TestCacheCorruption:
    def _put_one(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = make_plan()
        path = cache.put(plan, make_result(plan))
        return cache, plan, path

    def _assert_quarantined(self, cache, plan, path):
        bus, seen = capture_bus()
        cache.attach_events(bus)
        assert cache.get(plan) is None
        assert cache.stats.errors == 1
        assert cache.stats.quarantined == 1
        assert not path.exists()
        assert list((cache.root / "quarantine").iterdir())
        corruption = [e for e in seen if isinstance(e, CacheCorruption)]
        assert len(corruption) == 1 and corruption[0].level == "result"
        # quarantined entries are never re-parsed: plain miss afterwards
        assert cache.get(plan) is None
        assert cache.stats.errors == 1
        assert cache.stats.quarantined == 1

    def test_truncated_json_quarantined(self, tmp_path):
        cache, plan, path = self._put_one(tmp_path)
        path.write_text("{ truncated")
        self._assert_quarantined(cache, plan, path)

    def test_wrong_format_field_quarantined(self, tmp_path):
        cache, plan, path = self._put_one(tmp_path)
        doc = json.loads(path.read_text())
        doc["format"] = 999
        path.write_text(json.dumps(doc))
        self._assert_quarantined(cache, plan, path)

    def test_mutated_value_fails_checksum(self, tmp_path):
        cache, plan, path = self._put_one(tmp_path)
        doc = json.loads(path.read_text())
        doc["result"]["analysis"]["path"]["total"] += 1  # silent bit-rot
        path.write_text(json.dumps(doc))
        self._assert_quarantined(cache, plan, path)

    def test_garbled_trace_quarantined(self, tmp_path):
        store = TraceStore(tmp_path)
        key = "ab" * 32
        blob = bytes(range(256)) * 64
        path = store.put(key, blob)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        bus, seen = capture_bus()
        store.events = bus
        assert store.get(key) is None
        assert store.stats.errors == 1 and store.stats.quarantined == 1
        assert list((tmp_path / "quarantine").iterdir())
        corruption = [e for e in seen if isinstance(e, CacheCorruption)]
        assert len(corruption) == 1 and corruption[0].level == "trace"
        assert store.get(key) is None  # plain miss, no re-parse
        assert store.stats.quarantined == 1

    def test_injected_corrupt_writes_resimulated(self, tmp_path, monkeypatch):
        calls = []

        def fake(plan, trace_store=None, warm_cache=None):
            calls.append(plan)
            return make_result(plan)

        monkeypatch.setattr(executor_mod, "execute_plan", fake)
        plans = plan_suite(0.02, **SUITE_KW)
        faults.install(FaultPlan([FaultSpec(site="cache-result-write",
                                            kind="truncate")]))
        first = Executor(jobs=1, cache=ResultCache(tmp_path)).run(plans)
        faults.uninstall()
        assert len(calls) == 4

        bus, seen = capture_bus()
        cache = ResultCache(tmp_path)
        second = Executor(jobs=1, cache=cache, events=bus).run(plans)
        assert len(calls) == 8  # every corrupt entry was a miss
        assert cache.stats.quarantined == 4
        assert len([e for e in seen if isinstance(e, CacheCorruption)]) == 4
        assert docs(second) == docs(first)

        # the re-written (uncorrupted) entries now hit
        third = Executor(jobs=1, cache=ResultCache(tmp_path)).run(plans)
        assert len(calls) == 8
        assert docs(third) == docs(first)

    def test_empty_write_fault_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = make_plan()
        faults.install(FaultPlan([FaultSpec(site="cache-result-write",
                                            kind="empty")]))
        path = cache.put(plan, make_result(plan))
        faults.uninstall()
        assert path.read_bytes() == b""
        assert cache.get(plan) is None
        assert cache.stats.quarantined == 1

    def test_tmp_leftover_swept_by_verify(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = make_plan()
        faults.install(FaultPlan([FaultSpec(site="cache-tmp-leftover",
                                            kind="leftover")]))
        cache.put(plan, make_result(plan))
        cache.traces.put("cd" * 32, b"trace bytes")
        faults.uninstall()
        strays = list(cache.root.rglob("*.tmp"))
        assert len(strays) == 2
        report = cache.verify()
        assert report["tmp_removed"] == 2
        assert report["results"] == {"checked": 1, "ok": 1, "quarantined": 0}
        assert report["traces"] == {"checked": 1, "ok": 1, "quarantined": 0}
        assert not list(cache.root.rglob("*.tmp"))

    def test_verify_quarantines_bad_entries(self, tmp_path):
        cache, plan, path = self._put_one(tmp_path)
        path.write_text("not json at all")
        report = cache.verify()
        assert report["results"]["quarantined"] == 1
        assert not path.exists()

    def test_unique_tmp_names_differ(self, tmp_path):
        from repro.harness.cache import _unique_tmp

        target = tmp_path / "ab" / "entry.json"
        names = {_unique_tmp(target).name for _ in range(10)}
        assert len(names) == 10
        assert all(n.endswith(".tmp") for n in names)


# ------------------------------------------------- translation demotion

class TestTranslationDemotion:
    def test_compile_fault_demotes_block_same_results(self):
        plan = PLANS[3]  # stream/rv64/gcc12, translate=True
        faults.install(FaultPlan([FaultSpec(site="translate-compile",
                                            kind="error", at=(1, 3))]))
        translated = execute_plan(plan)
        faults.uninstall()
        assert translated.translation["demoted_blocks"] >= 1
        interpreted = execute_plan(plan.with_overrides(translate=False))
        assert (json.dumps(translated.to_dict(), sort_keys=True)
                == json.dumps(interpreted.to_dict(), sort_keys=True))

    def test_no_demotions_without_faults(self):
        result = execute_plan(PLANS[3])
        assert result.translation["demoted_blocks"] == 0


# -------------------------------------------------- checkpoint journal

class TestRunJournal:
    PARAMS = suite_params_doc(0.02, workloads=("stream",), windowed=False,
                              window_sizes=(4,))

    def test_create_record_load_finish(self, tmp_path):
        journal = RunJournal.create(tmp_path, self.PARAMS, total=4)
        journal.record_done("f" * 64, plan="stream/rv64/gcc9", seconds=1.0)
        journal.record_done("f" * 64)  # idempotent
        journal.record_done("e" * 64)
        journal.close()

        assert unfinished_runs(tmp_path) == [journal.run_id]
        loaded = RunJournal.load(tmp_path, journal.run_id)
        assert loaded.params == self.PARAMS
        assert loaded.total == 4
        assert loaded.done == {"f" * 64, "e" * 64}
        assert not loaded.finished

        loaded.finish()
        assert unfinished_runs(tmp_path) == []
        assert RunJournal.load(tmp_path, journal.run_id).finished

    def test_torn_final_line_tolerated(self, tmp_path):
        journal = RunJournal.create(tmp_path, self.PARAMS, total=4)
        journal.record_done("a" * 64)
        journal.close()
        with journal.path.open("a") as fh:
            fh.write('{"done": "bbbb')  # crash mid-append
        loaded = RunJournal.load(tmp_path, journal.run_id)
        assert loaded.done == {"a" * 64}
        assert not loaded.finished

    def test_load_unknown_run_errors(self, tmp_path):
        with pytest.raises(ExperimentError):
            RunJournal.load(tmp_path, "20990101-000000-1")

    def test_subscriber_records_finished_and_cache_hits(self, tmp_path):
        from repro.harness.events import PlanCacheHit, PlanFinished

        journal = RunJournal.create(tmp_path, self.PARAMS, total=2)
        plan = make_plan()
        journal.subscriber(PlanFinished(plan=plan, index=1, total=2,
                                        seconds=0.5))
        journal.subscriber(PlanCacheHit(plan=plan, index=2, total=2,
                                        key="c" * 64))
        journal.close()
        loaded = RunJournal.load(tmp_path, journal.run_id)
        assert loaded.done == {plan.fingerprint(), "c" * 64}

    def test_torn_header_quarantined_not_misparsed(self, tmp_path):
        journal = RunJournal.create(tmp_path, self.PARAMS, total=4)
        journal.record_done("a" * 64)
        journal.close()
        # tear the header itself: only its first bytes made it to disk
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[:10])
        with pytest.raises(ExperimentError, match="torn or invalid"):
            RunJournal.load(tmp_path, journal.run_id)
        # evidence preserved, never deleted — and never read as "empty"
        assert not journal.path.exists()
        qdir = journal.path.parent / "quarantine"
        assert len(list(qdir.glob("*.jsonl"))) == 1
        reasons = list(qdir.glob("*.reason"))
        assert reasons and "header" in reasons[0].read_text()
        assert unfinished_runs(tmp_path) == []

    def test_empty_journal_quarantined(self, tmp_path):
        journal = RunJournal.create(tmp_path, self.PARAMS, total=4)
        journal.close()
        journal.path.write_bytes(b"")
        with pytest.raises(ExperimentError, match="empty"):
            RunJournal.load(tmp_path, journal.run_id)
        assert not journal.path.exists()
        # the scan quarantines as a side effect and reports nothing
        stale = RunJournal.create(tmp_path, self.PARAMS, total=4)
        stale.close()
        stale.path.write_bytes(b"\n\n")
        assert unfinished_runs(tmp_path) == []
        assert not stale.path.exists()

    def test_fresh_journal_dir_fsynced_into_existence(self, tmp_path):
        # creation must leave a loadable file even before any record
        journal = RunJournal.create(tmp_path, self.PARAMS, total=4)
        journal.close()
        loaded = RunJournal.load(tmp_path, journal.run_id)
        assert loaded.params == self.PARAMS
        assert loaded.done == set()
        assert not loaded.finished


# --------------------------------------------- event subscriber isolation

class TestSubscriberIsolation:
    def test_failing_subscriber_removed_after_one_error(self):
        from repro.harness.events import (
            SubscriberError,
            SuiteFinished,
            TimingCollector,
        )

        bus = EventBus()
        timing = TimingCollector()
        calls, seen = [], []

        def bad(event):
            calls.append(event)
            raise RuntimeError("boom")

        bus.subscribe(timing)
        bus.subscribe(bad)
        bus.subscribe(seen.append)
        bus.emit(SuiteFinished(total=1))
        bus.emit(SuiteFinished(total=2))

        assert len(calls) == 1  # unsubscribed after its first failure
        errors = [e for e in seen if isinstance(e, SubscriberError)]
        assert len(errors) == 1  # announced exactly once
        assert "RuntimeError: boom" in errors[0].error
        assert errors[0].during == "SuiteFinished"
        assert timing.summary()["subscriber_errors"] == 1
        # the run itself was unaffected: both suite events delivered
        suites = [e for e in seen if isinstance(e, SuiteFinished)]
        assert [e.total for e in suites] == [1, 2]

    def test_subscriber_failing_on_subscriber_error_cannot_recurse(self):
        from repro.harness.events import SuiteFinished

        bus = EventBus()

        def bad_a(event):
            raise RuntimeError("a")

        def bad_b(event):
            raise RuntimeError("b even on SubscriberError")

        bus.subscribe(bad_a)
        bus.subscribe(bad_b)
        bus.emit(SuiteFinished())  # must terminate, no RecursionError
        assert bus._subscribers == []


# ----------------------------------------------- concurrent cache writers

def _hammer_stores(root, rounds):
    """Write the same result/block entries over and over (run in child
    processes to race the in-test threads across process boundaries)."""
    from pathlib import Path

    from repro.harness.cache import BlockStore

    cache = ResultCache(Path(root) / "rc")
    blocks = BlockStore(Path(root) / "bs")
    plan = make_plan()
    result = make_result(plan)
    for _ in range(rounds):
        cache.put(plan, result)
        blocks.put("ab" * 32, ["src-a", "src-b"], ["cp-a"])


class TestConcurrentWriters:
    def test_same_entry_write_race_never_corrupts(self, tmp_path):
        import multiprocessing
        import threading

        from repro.harness.cache import BlockStore

        plan = make_plan()
        result = make_result(plan)
        reader_cache = ResultCache(tmp_path / "rc")
        reader_blocks = BlockStore(tmp_path / "bs")
        thread_errors = []
        stop = threading.Event()

        def writer():
            try:
                cache = ResultCache(tmp_path / "rc")
                blocks = BlockStore(tmp_path / "bs")
                for _ in range(20):
                    cache.put(plan, result)
                    blocks.put("ab" * 32, ["src-a", "src-b"], ["cp-a"])
            except Exception as err:  # noqa: BLE001 — collected below
                thread_errors.append(err)

        def reader():
            # a reader racing the replaces must only ever see a valid
            # entry or a clean miss — never corruption
            try:
                while not stop.is_set():
                    reader_cache.get(plan)
                    reader_blocks.get("ab" * 32)
            except Exception as err:  # noqa: BLE001
                thread_errors.append(err)

        procs = [multiprocessing.Process(target=_hammer_stores,
                                         args=(tmp_path, 20))
                 for _ in range(2)]
        for proc in procs:
            proc.start()
        threads = [threading.Thread(target=writer) for _ in range(4)]
        watcher = threading.Thread(target=reader)
        for t in threads:
            t.start()
        watcher.start()
        for t in threads:
            t.join(60)
        for proc in procs:
            proc.join(60)
        stop.set()
        watcher.join(10)

        assert not thread_errors
        assert all(proc.exitcode == 0 for proc in procs)
        assert reader_cache.stats.quarantined == 0
        assert reader_blocks.stats.quarantined == 0

        # every store reads back valid, with no quarantine and no strays
        final_cache = ResultCache(tmp_path / "rc")
        loaded = final_cache.get(plan)
        assert loaded is not None
        assert (json.dumps(loaded.to_dict(), sort_keys=True)
                == json.dumps(result.to_dict(), sort_keys=True))
        assert final_cache.stats.errors == 0
        doc = BlockStore(tmp_path / "bs").get("ab" * 32)
        assert doc["sources"] == ["src-a", "src-b"]
        assert doc["cp_sources"] == ["cp-a"]
        assert not list(tmp_path.rglob("*.tmp"))
        assert not list((tmp_path / "rc").glob("quarantine"))
        assert not list((tmp_path / "bs").glob("quarantine"))


# ------------------------------------------------------ CLI kill/resume

class TestResumeCli:
    def _run(self, argv, capsys):
        from repro.harness.cli import main

        rc = main(argv)
        captured = capsys.readouterr()
        return rc, captured.out, captured.err

    def test_kill_mid_run_then_resume_byte_identical(self, tmp_path, capsys,
                                                     monkeypatch):
        cache_dir = tmp_path / "cache"
        out_resumed = tmp_path / "out-resumed"
        fault_file = tmp_path / "faults.json"
        # the third plan in serial order (stream/rv64/gcc9) dies with a
        # deterministic error: the suite aborts mid-run with two plans
        # journaled, simulating a killed session
        fault_file.write_text(FaultPlan([FaultSpec(
            site="execute", kind="error", plan="stream/rv64/gcc9")]).dumps())
        common = ["--scale", "0.02", "--workloads", "stream",
                  "--skip-windowed", "--cache-dir", str(cache_dir),
                  "--jobs", "1", "--quiet"]
        rc, _out, err = self._run(
            ["run", *common, "--fault-plan", str(fault_file)], capsys)
        assert rc == 2
        assert "injected fault" in err
        assert faults.active() is None  # uninstalled on the way out

        crashed = unfinished_runs(cache_dir)
        assert len(crashed) == 1
        journal = RunJournal.load(cache_dir, crashed[0])
        assert len(journal.done) == 2  # two plans completed before the kill

        calls = []
        real = executor_mod.execute_plan

        def counting(plan, trace_store=None, warm_cache=None):
            calls.append(plan.describe())
            return real(plan, trace_store, warm_cache=warm_cache)

        monkeypatch.setattr(executor_mod, "execute_plan", counting)
        rc, _out, err = self._run(
            ["run", "--resume", crashed[0], "--cache-dir", str(cache_dir),
             "--jobs", "1", "--out", str(out_resumed)], capsys)
        assert rc == 0
        assert f"resuming run {crashed[0]}" in err
        # only the two unfinished plans re-executed; the rest were hits
        assert sorted(calls) == ["stream/rv64/gcc12", "stream/rv64/gcc9"]
        assert unfinished_runs(cache_dir) == []
        monkeypatch.setattr(executor_mod, "execute_plan", real)

        # a fresh fault-free run in a separate cache must produce
        # byte-identical artifacts
        out_fresh = tmp_path / "out-fresh"
        rc, _out, _err = self._run(
            ["run", "--scale", "0.02", "--workloads", "stream",
             "--skip-windowed", "--cache-dir", str(tmp_path / "cache2"),
             "--jobs", "1", "--quiet", "--out", str(out_fresh)], capsys)
        assert rc == 0
        resumed_files = sorted(p.name for p in out_resumed.iterdir())
        fresh_files = sorted(p.name for p in out_fresh.iterdir())
        assert resumed_files == fresh_files and resumed_files
        for name in resumed_files:
            assert ((out_resumed / name).read_bytes()
                    == (out_fresh / name).read_bytes()), name

    def test_crashed_run_detected_on_startup(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.harness import cli as cli_mod

        cache_dir = tmp_path / "cache"
        stale = RunJournal.create(
            cache_dir, suite_params_doc(0.02, workloads=("stream",),
                                        windowed=False, window_sizes=(4,)),
            total=4)
        stale.close()  # never finished: a crashed suite

        monkeypatch.setattr(cli_mod, "run_suite",
                            lambda *args, **kwargs: object())
        monkeypatch.setattr(cli_mod, "_render_and_write",
                            lambda *args, **kwargs: None)
        rc, _out, err = self._run(
            ["run", "--scale", "0.02", "--workloads", "stream",
             "--skip-windowed", "--cache-dir", str(cache_dir),
             "--jobs", "1"], capsys)
        assert rc == 0
        assert "unfinished run(s)" in err and stale.run_id in err
        assert "run id:" in err  # the new run advertises its own id

    def test_resume_requires_cache(self, tmp_path, capsys):
        rc, _out, err = self._run(
            ["run", "--resume", "some-run", "--no-cache", "--quiet"], capsys)
        assert rc == 2
        assert "--resume requires the result cache" in err

    def test_cache_verify_subcommand(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        plan = make_plan()
        good_path = cache.put(plan, make_result(plan))
        bad_plan = make_plan(scale=0.03)
        bad_path = cache.put(bad_plan, make_result(bad_plan))
        bad_path.write_text("{ truncated")
        (good_path.parent / "stray.json.123.456.tmp").write_text("x")

        rc, out, _err = self._run(
            ["cache", "verify", "--cache-dir", str(tmp_path)], capsys)
        assert rc == 1  # corruption found
        assert "1 quarantined" in out
        assert "1 stragglers removed" in out

        rc, out, _err = self._run(
            ["cache", "verify", "--cache-dir", str(tmp_path)], capsys)
        assert rc == 0  # quarantined entries are gone, not re-flagged
