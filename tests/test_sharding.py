"""Sharded execution tests: byte-identity with serial runs, rendered
artifact identity, plan/fingerprint semantics, executor integration, and
degrade-never-fail recovery at the ``shard`` fault site.

The whole point of intra-run sharding (PR 7) is that it is *invisible*
in results — ``shards`` is an execution strategy like ``translate``, so
every test here ultimately reduces to "the sharded run produced exactly
the bytes the serial run did".
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import AnalysisConfig
from repro.common.errors import ExperimentError
from repro.harness import faults
from repro.harness.events import EventBus, PlanShardStats
from repro.harness.executor import Executor
from repro.harness.experiments import (
    SCALED_MODELS,
    run_config,
    run_figure1,
    run_figure2,
    run_suite,
    run_table1,
    run_table2,
)
from repro.harness.faults import FaultPlan, FaultSpec
from repro.harness.plan import ExperimentPlan, plan_suite
from repro.harness.sharding import (
    MAX_AUTO_SHARDS,
    resolve_shards,
    run_sharded_config,
)
from repro.sim.config import load_core_model
from repro.workloads.stream import Stream, StreamParams

WL = Stream(StreamParams(n=4200, ntimes=1))
CFG = AnalysisConfig(windowed=True, window_sizes=(4, 16))
BUDGET = 50_000_000


def result_bytes(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def model_for(isa: str):
    return load_core_model(SCALED_MODELS[isa])


@pytest.fixture(scope="module")
def compiled():
    return WL.compile("rv64", "gcc12")


@pytest.fixture(scope="module")
def serial():
    return run_config(WL, "rv64", "gcc12", analysis=CFG)


@pytest.fixture
def clean_faults():
    yield
    faults.uninstall()


class TestByteIdentity:
    def test_run_config_sharded_equals_serial(self, serial):
        sharded = run_config(WL, "rv64", "gcc12", analysis=CFG, shards=3)
        assert sharded.shard_stats is not None
        assert sharded.shard_stats["shards"] >= 1
        assert result_bytes(sharded) == result_bytes(serial)

    def test_serial_result_carries_no_shard_stats(self, serial):
        assert serial.shard_stats is None
        assert "shard_stats" not in serial.to_dict()

    def test_direct_in_process_slicing(self, compiled, serial):
        result, stats = run_sharded_config(
            WL, "rv64", "gcc12", compiled, CFG, model_for("rv64"),
            BUDGET, 4, checkpoint_interval=2048, parallel=False)
        assert not stats.parallel
        assert stats.shards == 4
        assert stats.checkpoints > 4
        assert result_bytes(result) == result_bytes(serial)

    def test_single_slice_degenerate(self, compiled, serial):
        """One shard still goes through snapshot + restore + slice."""
        result, stats = run_sharded_config(
            WL, "rv64", "gcc12", compiled, CFG, model_for("rv64"),
            BUDGET, 1, parallel=False)
        assert stats.shards == 1
        assert result_bytes(result) == result_bytes(serial)

    def test_more_shards_than_checkpoints(self, compiled, serial):
        """Requesting absurdly many shards degrades to the checkpoints
        that exist — never to an error."""
        result, stats = run_sharded_config(
            WL, "rv64", "gcc12", compiled, CFG, model_for("rv64"),
            BUDGET, 64, checkpoint_interval=4096, parallel=False)
        assert stats.shards <= 64
        assert result_bytes(result) == result_bytes(serial)

    def test_parallel_workers_equal_serial(self, compiled, serial,
                                           monkeypatch):
        """Fork real shard workers (cpu gate bypassed): snapshot out,
        state doc back, rebase merge — still byte-identical."""
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        result, stats = run_sharded_config(
            WL, "rv64", "gcc12", compiled, CFG, model_for("rv64"),
            BUDGET, 2, checkpoint_interval=4096)
        assert stats.parallel
        assert result_bytes(result) == result_bytes(serial)

    def test_probe_engine_rejected(self):
        with pytest.raises(ExperimentError, match="fused"):
            run_config(WL, "rv64", "gcc12",
                       analysis=AnalysisConfig(engine="probes"), shards=2)


class TestRenderedArtifacts:
    """Acceptance: the paper artifacts render byte-identically from a
    sharded suite and a serial one."""

    @pytest.fixture(scope="class")
    def suites(self):
        kwargs = dict(workloads=("stream",), windowed=True,
                      window_sizes=(4, 16))
        return (run_suite(scale=0.0004, **kwargs),
                run_suite(scale=0.0004, shards=2, **kwargs))

    def test_figure1(self, suites):
        a, b = suites
        assert run_figure1(suite=a).render() == run_figure1(suite=b).render()

    def test_tables(self, suites):
        a, b = suites
        assert run_table1(suite=a).render() == run_table1(suite=b).render()
        assert run_table2(suite=a).render() == run_table2(suite=b).render()

    def test_figure2(self, suites):
        a, b = suites
        fa = run_figure2(suite=a, window_sizes=(4, 16))
        fb = run_figure2(suite=b, window_sizes=(4, 16))
        assert fa.render() == fb.render()

    def test_suite_docs_identical(self, suites):
        a, b = suites
        assert set(a.configs) == set(b.configs)
        for key, config in a.configs.items():
            assert result_bytes(config) == result_bytes(b.configs[key])


class TestResolveShards:
    def test_auto_caps_at_max(self):
        assert resolve_shards(0, cores=32) == MAX_AUTO_SHARDS

    def test_auto_follows_cores(self):
        assert resolve_shards(0, cores=3) == 3

    def test_auto_single_core(self):
        assert resolve_shards(0, cores=1) == 1

    def test_explicit_passthrough(self):
        assert resolve_shards(5, cores=1) == 5

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_shards(-1)


class TestPlanSemantics:
    def plan(self, **overrides):
        base = dict(workload="stream", isa="rv64", profile="gcc12",
                    scale=0.0004, windowed=False)
        base.update(overrides)
        return ExperimentPlan(**base)

    def test_fingerprint_ignores_shards(self):
        a, b = self.plan(shards=1), self.plan(shards=4)
        assert a.fingerprint() == b.fingerprint()
        assert a.trace_fingerprint() == b.trace_fingerprint()

    def test_to_dict_round_trips_shards(self):
        plan = self.plan(shards=4)
        doc = plan.to_dict()
        assert doc["shards"] == 4
        assert ExperimentPlan.from_dict(doc).shards == 4

    def test_v2_docs_mean_serial(self):
        doc = self.plan().to_dict()
        doc["v"] = 2
        doc.pop("shards")
        assert ExperimentPlan.from_dict(doc).shards == 1

    def test_negative_shards_rejected(self):
        with pytest.raises(ExperimentError):
            self.plan(shards=-2)

    def test_plan_suite_threads_shards(self):
        plans = plan_suite(0.0004, workloads=("stream",), shards=2)
        assert plans and all(plan.shards == 2 for plan in plans)


class TestExecutorIntegration:
    def test_emits_shard_stats_event(self):
        bus = EventBus()
        seen: list = []
        bus.subscribe(seen.append)
        plan = ExperimentPlan(workload="stream", isa="rv64",
                              profile="gcc12", scale=0.0004,
                              windowed=False, shards=2)
        Executor(jobs=2, events=bus).run([plan])
        stats_events = [e for e in seen if isinstance(e, PlanShardStats)]
        assert len(stats_events) == 1
        assert stats_events[0].stats["shards"] >= 1
        assert stats_events[0].stats["total_instructions"] > 0

    def test_sharded_equals_pooled_serial(self):
        kwargs = dict(workload="stream", isa="rv64", profile="gcc12",
                      scale=0.0004, windowed=False)
        serial_res = Executor(jobs=1).run(
            [ExperimentPlan(**kwargs)])
        sharded_res = Executor(jobs=1).run(
            [ExperimentPlan(shards=2, **kwargs)])
        a, = serial_res.values()
        b, = sharded_res.values()
        assert result_bytes(a) == result_bytes(b)

    def test_sharded_plan_skips_trace_recording(self, tmp_path):
        """A trace sink would force slices onto the slow per-retirement
        path, so sharded plans shard instead of recording — and still
        replay traces a serial run recorded (shared trace identity)."""
        from repro.harness.cache import ResultCache
        from repro.harness.executor import execute_plan

        kwargs = dict(workload="stream", isa="rv64", profile="gcc12",
                      scale=0.0004, windowed=True, window_sizes=(4, 16))
        store = ResultCache(tmp_path).traces
        sharded_plan = ExperimentPlan(shards=2, **kwargs)
        a = execute_plan(sharded_plan, store)
        assert a.shard_stats is not None
        assert store.get(sharded_plan.trace_fingerprint()) is None
        b = execute_plan(ExperimentPlan(**kwargs), store)
        assert store.get(sharded_plan.trace_fingerprint()) is not None
        assert result_bytes(a) == result_bytes(b)


class TestShardFaultSite:
    """Worker deaths and corrupt snapshots degrade; they never fail the
    plan, and the degraded result is still byte-identical."""

    def run_faulted(self, compiled, shards=2, retries=1):
        return run_sharded_config(
            WL, "rv64", "gcc12", compiled, CFG, model_for("rv64"),
            BUDGET, shards, checkpoint_interval=4096, retries=retries)

    def test_crash_once_recovers_by_retry(self, compiled, serial,
                                          monkeypatch, clean_faults):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        faults.install(FaultPlan(specs=[
            FaultSpec(site="shard", kind="crash", attempts=(1,)),
        ]))
        result, stats = self.run_faulted(compiled)
        assert stats.retries >= 1
        assert stats.fallbacks == 0
        assert result_bytes(result) == result_bytes(serial)

    def test_corrupt_snapshot_falls_back_in_process(self, compiled, serial,
                                                    monkeypatch,
                                                    clean_faults):
        """Every attempt ships a garbled snapshot (SnapshotError in the
        worker) — the slices fall back to in-process serial execution."""
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        faults.install(FaultPlan(specs=[
            FaultSpec(site="shard", kind="garble"),
        ]))
        result, stats = self.run_faulted(compiled, retries=1)
        assert stats.fallbacks >= 1
        assert result_bytes(result) == result_bytes(serial)

    def test_persistent_crash_falls_back(self, compiled, serial,
                                         monkeypatch, clean_faults):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        faults.install(FaultPlan(specs=[
            FaultSpec(site="shard", kind="crash"),
        ]))
        result, stats = self.run_faulted(compiled, retries=1)
        assert stats.fallbacks >= 1
        assert result_bytes(result) == result_bytes(serial)

    def test_injected_error_falls_back(self, compiled, serial,
                                       monkeypatch, clean_faults):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        faults.install(FaultPlan(specs=[
            FaultSpec(site="shard", kind="error"),
        ]))
        result, stats = self.run_faulted(compiled, retries=0)
        assert stats.fallbacks >= 1
        assert result_bytes(result) == result_bytes(serial)
