"""Round-trip property tests for the snapshot layer.

The sharding contract (PR 7) rests on one property: a machine restored
from a :class:`MachineSnapshot` taken at retirement position ``k`` and
then run to completion is indistinguishable — final architectural
state, memory image, and the *entire remaining retirement stream* —
from a machine that ran serially without interruption. These tests
check that property at random cut points, through the wire format, on
both ISAs, for both the interpreter and translated execution paths.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.common import SnapshotError
from repro.isa import get_isa
from repro.loader import load_program
from repro.sim import EmulationCore, Machine, Memory
from repro.sim.snapshot import (
    SNAPSHOT_MAGIC,
    CheckpointRecorder,
    MachineSnapshot,
)
from repro.workloads.stream import Stream, StreamParams

WL = Stream(StreamParams(n=64, ntimes=1))
BUDGET = 5_000_000


class StreamSink:
    """Batch sink normalizing the retirement stream to comparable tuples:
    ``(pc, word, reads, writes)`` per retired instruction."""

    needs_memory = True

    def __init__(self):
        self.events = []

    def on_batch(self, table, count, indices, read_ends, write_ends,
                 reads, writes):
        r0 = w0 = 0
        for i in range(count):
            inst = table[indices[i]]
            r1, w1 = read_ends[i], write_ends[i]
            self.events.append((inst.pc, inst.word,
                                tuple(tuple(a) for a in reads[r0:r1]),
                                tuple(tuple(a) for a in writes[w0:w1])))
            r0, w0 = r1, w1


def fresh(compiled):
    isa = get_isa(compiled.isa_name)
    memory = Memory()
    load_program(compiled.image, memory)
    machine = Machine(isa.name, memory)
    machine.reset_stack()
    machine.pc = compiled.image.entry
    return machine, isa


@pytest.fixture(scope="module")
def compiled_for():
    cache = {}

    def get(isa_name):
        if isa_name not in cache:
            cache[isa_name] = WL.compile(isa_name, "gcc12")
        return cache[isa_name]

    return get


@pytest.fixture(scope="module")
def reference_for(compiled_for):
    """Uninterrupted run per (isa, translate): final machine + stream."""
    cache = {}

    def get(isa_name, translate):
        key = (isa_name, translate)
        if key not in cache:
            machine, isa = fresh(compiled_for(isa_name))
            core = EmulationCore(isa, machine, translate=translate)
            sink = StreamSink()
            core.run_batched([sink], max_instructions=BUDGET)
            cache[key] = (machine, sink.events)
        return cache[key]

    return get


@pytest.mark.parametrize("translate", [False, True],
                         ids=["interpreter", "translated"])
@pytest.mark.parametrize("isa_name", ["rv64", "aarch64"])
class TestResumeRoundTrip:
    def test_resume_matches_serial(self, isa_name, translate, compiled_for,
                                   reference_for):
        compiled = compiled_for(isa_name)
        ref_machine, ref_events = reference_for(isa_name, translate)
        total = len(ref_events)
        assert total > 1000, "workload too small to cut meaningfully"
        rng = random.Random(f"snapshot/{isa_name}/{translate}")
        for k in sorted(rng.sample(range(1, total), 2)):
            machine, isa = fresh(compiled)
            baseline = bytes(machine.memory.data)
            core = EmulationCore(isa, machine, translate=translate)
            assert core.fast_forward(k) == k
            assert machine.instret == k
            blob = MachineSnapshot.capture(machine, k, baseline).to_bytes()
            snap = MachineSnapshot.from_bytes(blob)
            assert snap.retired == k

            resumed, isa2 = fresh(compiled)
            snap.restore(resumed, compiled.image)
            sink = StreamSink()
            EmulationCore(isa2, resumed, translate=translate).run_batched(
                [sink], max_instructions=BUDGET)

            assert sink.events == ref_events[k:]
            assert resumed.capture_state() == ref_machine.capture_state()
            assert bytes(resumed.memory.data) == bytes(ref_machine.memory.data)

    def test_restore_is_in_place(self, isa_name, translate, compiled_for):
        """Restore must mutate, never rebind: compiled blocks hold the
        register files and memory by object identity."""
        compiled = compiled_for(isa_name)
        machine, isa = fresh(compiled)
        baseline = bytes(machine.memory.data)
        core = EmulationCore(isa, machine, translate=translate)
        core.fast_forward(500)
        snap = MachineSnapshot.capture(machine, 500, baseline)

        target, _ = fresh(compiled)
        r, f, data = target.r, target.f, target.memory.data
        stdout, stderr = target.stdout, target.stderr
        snap.restore(target, compiled.image)
        assert target.r is r and target.f is f
        assert target.memory.data is data
        assert target.stdout is stdout and target.stderr is stderr


@pytest.fixture(scope="module")
def snap_blob(compiled_for):
    compiled = compiled_for("rv64")
    machine, isa = fresh(compiled)
    baseline = bytes(machine.memory.data)
    EmulationCore(isa, machine, translate=False).fast_forward(500)
    snap = MachineSnapshot.capture(machine, 500, baseline)
    return snap, snap.to_bytes()


class TestWireFormat:
    def test_round_trip_fields(self, snap_blob):
        snap, blob = snap_blob
        again = MachineSnapshot.from_bytes(blob)
        assert again == snap

    def test_header_magic(self, snap_blob):
        _, blob = snap_blob
        assert blob[:4] == SNAPSHOT_MAGIC

    def test_truncated_header(self, snap_blob):
        _, blob = snap_blob
        with pytest.raises(SnapshotError, match="truncated"):
            MachineSnapshot.from_bytes(blob[:10])

    def test_empty(self):
        with pytest.raises(SnapshotError, match="truncated"):
            MachineSnapshot.from_bytes(b"")

    def test_bad_magic(self, snap_blob):
        _, blob = snap_blob
        with pytest.raises(SnapshotError, match="magic"):
            MachineSnapshot.from_bytes(b"XXXX" + blob[4:])

    def test_bad_version(self, snap_blob):
        _, blob = snap_blob
        mangled = blob[:4] + struct.pack("<I", 99) + blob[8:]
        with pytest.raises(SnapshotError, match="version"):
            MachineSnapshot.from_bytes(mangled)

    def test_truncated_payload(self, snap_blob):
        _, blob = snap_blob
        with pytest.raises(SnapshotError, match="truncated"):
            MachineSnapshot.from_bytes(blob[:-5])

    def test_crc_catches_bitflip(self, snap_blob):
        _, blob = snap_blob
        flipped = bytearray(blob)
        flipped[len(blob) // 2] ^= 0x40
        with pytest.raises(SnapshotError, match="CRC|truncated|version"):
            MachineSnapshot.from_bytes(bytes(flipped))

    def test_undecodable_payload(self):
        """A well-framed header over garbage still fails cleanly."""
        import zlib

        payload = b"not a pickle, not even compressed"
        blob = struct.pack("<4sIIQ", SNAPSHOT_MAGIC, 1,
                           zlib.crc32(payload), len(payload)) + payload
        with pytest.raises(SnapshotError, match="undecodable"):
            MachineSnapshot.from_bytes(blob)


class TestRestoreGuards:
    def test_wrong_isa(self, compiled_for):
        compiled = compiled_for("rv64")
        machine, isa = fresh(compiled)
        snap = MachineSnapshot.capture(machine, 0, bytes(machine.memory.data))
        other, _ = fresh(compiled_for("aarch64"))
        with pytest.raises(SnapshotError, match="rv64"):
            snap.restore(other, compiled.image)

    def test_wrong_memory_size(self, compiled_for):
        compiled = compiled_for("rv64")
        machine, isa = fresh(compiled)
        snap = MachineSnapshot.capture(machine, 0, bytes(machine.memory.data))
        small = Machine("rv64", Memory(1 << 20))
        with pytest.raises(SnapshotError, match="memory size"):
            snap.restore(small, compiled.image)


class TestCheckpointRecorder:
    def test_thinning_keeps_first_and_last(self, compiled_for):
        compiled = compiled_for("rv64")
        machine, isa = fresh(compiled)
        core = EmulationCore(isa, machine, translate=False)
        recorder = CheckpointRecorder(machine)
        pos = 0
        for _ in range(9):
            pos += core.fast_forward(100)
            recorder.capture(pos)
        positions = [s.retired for s in recorder.snapshots]
        assert positions[0] == 0 and positions[-1] == pos
        recorder.thin()
        thinned = [s.retired for s in recorder.snapshots]
        assert thinned[0] == 0 and thinned[-1] == pos
        assert len(thinned) < len(positions)
        assert set(thinned) <= set(positions)
