"""Tests for trace record/replay: analyses offline must equal analyses live."""

import io

import pytest

from repro.analysis import (
    CriticalPathProbe,
    InstructionMixProbe,
    PathLengthProbe,
    WindowedCPProbe,
)
from repro.common import SimulationError
from repro.sim.trace import Trace, TraceRecorderProbe, read_trace
from repro.workloads import run_workload
from repro.workloads.stream import Stream, StreamParams

WL = Stream(StreamParams(n=48, ntimes=1))


@pytest.fixture(scope="module")
def recorded():
    """One live run with a recorder AND live probes, for comparison."""
    recorder = TraceRecorderProbe()
    live_cp = CriticalPathProbe()
    live_mix = InstructionMixProbe()
    live_window = WindowedCPProbe(window_sizes=(16,))
    run = run_workload(WL, "rv64", "gcc12",
                       [recorder, live_cp, live_mix, live_window])
    blob = recorder.finish("rv64")
    return {
        "blob": blob,
        "run": run,
        "cp": live_cp.result(),
        "mix": live_mix.result(),
        "window": live_window.results()[16],
    }


class TestRoundTrip:
    def test_header(self, recorded):
        trace = read_trace(recorded["blob"])
        assert trace.isa_name == "rv64"
        assert len(trace) == recorded["run"].path_length

    def test_static_table_compact(self, recorded):
        trace = read_trace(recorded["blob"])
        # far fewer static entries than dynamic events (loops!)
        assert len(trace.instructions) < len(trace) / 4

    def test_replay_critical_path(self, recorded):
        trace = read_trace(recorded["blob"])
        probe = CriticalPathProbe()
        trace.replay([probe])
        assert probe.result().critical_path == recorded["cp"].critical_path
        assert probe.result().instructions == recorded["cp"].instructions

    def test_replay_mix(self, recorded):
        trace = read_trace(recorded["blob"])
        probe = InstructionMixProbe()
        trace.replay([probe])
        live = recorded["mix"]
        offline = probe.result()
        assert offline.by_mnemonic == live.by_mnemonic
        assert offline.branches == live.branches
        assert offline.loads == live.loads

    def test_replay_windowed(self, recorded):
        trace = read_trace(recorded["blob"])
        probe = WindowedCPProbe(window_sizes=(16,))
        trace.replay([probe])
        live = recorded["window"]
        offline = probe.results()[16]
        assert offline.count == live.count
        assert offline.total_cp == live.total_cp

    def test_replay_pathlength_with_regions(self, recorded):
        trace = read_trace(recorded["blob"])
        compiled = recorded["run"].compiled
        offline = PathLengthProbe(compiled.image.regions)
        trace.replay([offline])
        counts = offline.result()
        assert counts.total == len(trace)
        assert set(counts.per_region) >= {"copy", "scale", "add", "triad"}

    def test_file_sink(self, tmp_path, recorded):
        path = tmp_path / "run.rtrc"
        recorder = TraceRecorderProbe(path.open("wb"))
        run_workload(WL, "rv64", "gcc12", [recorder])
        recorder.finish("rv64")
        recorder.sink.close()
        trace = read_trace(path.read_bytes())
        assert len(trace) == recorded["run"].path_length


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(SimulationError):
            read_trace(b"NOPE" + b"\x00" * 32)

    def test_truncated(self, recorded):
        with pytest.raises((SimulationError, struct_error := Exception)):
            read_trace(recorded["blob"][: len(recorded["blob"]) // 2])

    def test_double_finish(self):
        recorder = TraceRecorderProbe()
        recorder.finish("rv64")
        with pytest.raises(SimulationError):
            recorder.finish("rv64")

    def test_replayed_instructions_cannot_execute(self, recorded):
        trace = read_trace(recorded["blob"])
        with pytest.raises(SimulationError):
            trace.instructions[0].execute(None)
