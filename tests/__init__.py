"""Test package (importable so helpers in tests.conftest can be shared)."""
