"""End-to-end language tests: kernelc → binary → simulated result.

Every test runs on both ISAs and both compiler profiles, asserting that the
program's observable result is identical everywhere — the compiler's whole
point is that code generation differences must never change semantics.
"""

import pytest

from tests.conftest import compile_and_run

CONFIGS = [
    ("rv64", "gcc9"), ("rv64", "gcc12"),
    ("aarch64", "gcc9"), ("aarch64", "gcc12"),
]


def result_of(src, isa, profile, symbol="out", as_float=False):
    _result, machine, compiled = compile_and_run(src, isa, profile)
    addr = compiled.image.symbol(symbol)
    if as_float:
        return machine.memory.load_f64(addr)
    return machine.memory.load(addr, 8, signed=True)


@pytest.fixture(params=CONFIGS, ids=lambda c: f"{c[0]}-{c[1]}")
def config(request):
    return request.param


class TestArithmetic:
    def test_integer_ops(self, config):
        src = """
global long out;
func long main() {
  long a = 17;
  long b = 5;
  out = (a + b) * (a - b) / b % 7 + (a << 2) - (a >> 1)
      + (a & b) + (a | b) + (a ^ b);
  return 0;
}
"""
        expected = (22 * 12) // 5 % 7 + (17 << 2) - (17 >> 1) + (17 & 5) + (17 | 5) + (17 ^ 5)
        assert result_of(src, *config) == expected

    def test_negative_division_truncates(self, config):
        src = """
global long out;
global long a = -7;
global long b = 2;
func long main() { out = a / b * 10 + a % b; return 0; }
"""
        assert result_of(src, *config) == -3 * 10 + -1

    def test_unary_ops(self, config):
        src = """
global long out;
func long main() {
  long x = 6;
  out = -x + ~x + !x + !(x - 6);
  return 0;
}
"""
        assert result_of(src, *config) == -6 + ~6 + 0 + 1

    def test_double_arithmetic(self, config):
        src = """
global double out;
func long main() {
  double a = 7.5;
  double b = 2.5;
  out = (a + b) * (a - b) / b - a;
  return 0;
}
"""
        assert result_of(src, *config, as_float=True) == (10.0 * 5.0) / 2.5 - 7.5

    def test_casts(self, config):
        src = """
global long out;
global double fout;
func long main() {
  double d = 2.75;
  out = (long)(d) + (long)(0.0 - d);
  fout = (double)(7) / 2.0;
  return 0;
}
"""
        assert result_of(src, *config) == 2 + (-2)   # both truncate toward zero
        assert result_of(src, *config, symbol="fout", as_float=True) == 3.5

    def test_big_constants(self, config):
        src = """
global long out;
func long main() {
  long big = 123456789012345;
  long neg = -987654321;
  out = big + neg;
  return 0;
}
"""
        assert result_of(src, *config) == 123456789012345 - 987654321

    def test_builtins(self, config):
        src = """
global double out;
func long main() {
  out = sqrt(16.0) + fabs(0.0 - 2.5) + fmin(1.0, 2.0) + fmax(1.0, 2.0);
  return 0;
}
"""
        assert result_of(src, *config, as_float=True) == 4.0 + 2.5 + 1.0 + 2.0


class TestControlFlow:
    def test_if_else_chain(self, config):
        src = """
global long out;
func long classify(long x) {
  if (x < 0) { return -1; }
  else if (x == 0) { return 0; }
  else if (x < 10) { return 1; }
  else { return 2; }
}
func long main() {
  out = classify(-5) * 1000 + classify(0) * 100 + classify(5) * 10
      + classify(50);
  return 0;
}
"""
        assert result_of(src, *config) == -1000 + 0 + 10 + 2

    def test_logical_short_circuit(self, config):
        src = """
global long out;
global long calls;
func long bump() { calls = calls + 1; return 1; }
func long main() {
  long t = 1;
  long f = 0;
  out = 0;
  if (f != 0) { if (bump() != 0) { out = out + 1; } }
  if (t == 1) { out = out + 10; }
  if (t == 1 || t == 2) { out = out + 100; }
  if (t == 1 && f == 0) { out = out + 1000; }
  return 0;
}
"""
        assert result_of(src, *config) == 1110
        assert result_of(src, *config, symbol="calls") == 0

    def test_while_and_break_continue(self, config):
        src = """
global long out;
func long main() {
  long total = 0;
  long i = 0;
  while (i < 100) {
    i = i + 1;
    if (i % 2 == 0) { continue; }
    if (i > 20) { break; }
    total = total + i;
  }
  out = total;
  return 0;
}
"""
        assert result_of(src, *config) == sum(i for i in range(1, 21) if i % 2)

    def test_nested_for(self, config):
        src = """
global long out;
func long main() {
  long total = 0;
  for (long i = 0; i < 7; i = i + 1) {
    for (long j = 0; j < 5; j = j + 1) {
      total = total + i * j;
    }
  }
  out = total;
  return 0;
}
"""
        assert result_of(src, *config) == sum(i * j for i in range(7) for j in range(5))

    def test_zero_trip_loop(self, config):
        src = """
global long out;
global long n = 0;
func long main() {
  out = 42;
  for (long j = 5; j < n; j = j + 1) { out = 0; }
  for (long j = 5; j < 5; j = j + 1) { out = 0; }
  return 0;
}
"""
        assert result_of(src, *config) == 42

    def test_for_with_step(self, config):
        src = """
global long out;
func long main() {
  long total = 0;
  for (long j = 1; j <= 30; j = j + 7) { total = total + j; }
  out = total;
  return 0;
}
"""
        assert result_of(src, *config) == sum(range(1, 31, 7))

    def test_loop_bound_from_expression(self, config):
        src = """
global long out;
global long n = 6;
func long main() {
  long total = 0;
  for (long j = 0; j < n * 2; j = j + 1) { total = total + 1; }
  out = total;
  return 0;
}
"""
        assert result_of(src, *config) == 12


class TestFunctions:
    def test_recursion(self, config):
        src = """
global long out;
func long fib(long n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
func long main() { out = fib(12); return 0; }
"""
        assert result_of(src, *config) == 144

    def test_many_args(self, config):
        src = """
global long out;
func long addsix(long a, long b, long c, long d, long e, long f) {
  return a + 2 * b + 3 * c + 4 * d + 5 * e + 6 * f;
}
func long main() { out = addsix(1, 2, 3, 4, 5, 6); return 0; }
"""
        assert result_of(src, *config) == 1 + 4 + 9 + 16 + 25 + 36

    def test_double_args_and_return(self, config):
        src = """
global double out;
func double mix(double a, long b, double c) {
  return a * (double)(b) + c;
}
func long main() { out = mix(2.5, 4, 0.5); return 0; }
"""
        assert result_of(src, *config, as_float=True) == 10.5

    def test_locals_survive_calls(self, config):
        src = """
global long out;
func long noisy() { return 7; }
func long main() {
  long keep = 1000;
  long got = noisy();
  out = keep + got;
  return 0;
}
"""
        assert result_of(src, *config) == 1007

    def test_void_function(self, config):
        src = """
global long out;
func void setit() { out = 31; }
func long main() { setit(); return 0; }
"""
        assert result_of(src, *config) == 31

    def test_exit_code_is_main_return(self, config):
        src = "global long out; func long main() { out = 0; return 5; }"
        result, _m, _c = compile_and_run(src, *config)
        assert result.exit_code == 5


class TestArrays:
    def test_read_write_loop(self, config):
        src = """
global long data[20];
global long out;
func long main() {
  for (long j = 0; j < 20; j = j + 1) { data[j] = j * j; }
  long total = 0;
  for (long j = 0; j < 20; j = j + 1) { total = total + data[j]; }
  out = total;
  return 0;
}
"""
        assert result_of(src, *config) == sum(j * j for j in range(20))

    def test_initialized_array(self, config):
        src = """
global double weights[5] = { 0.5, 1.5, 2.5, 3.5, 4.5 };
global double out;
func long main() {
  double total = 0.0;
  for (long j = 0; j < 5; j = j + 1) { total = total + weights[j]; }
  out = total;
  return 0;
}
"""
        assert result_of(src, *config, as_float=True) == 12.5

    def test_neighbour_offsets(self, config):
        src = """
global long data[10] = { 0, 1, 2, 3, 4, 5, 6, 7, 8, 9 };
global long out;
func long main() {
  long total = 0;
  for (long j = 1; j < 9; j = j + 1) {
    total = total + data[j + 1] - data[j + -1];
  }
  out = total;
  return 0;
}
"""
        assert result_of(src, *config) == sum(
            (j + 1) - (j - 1) for j in range(1, 9)
        )

    def test_strided_record_access(self, config):
        """AoS pattern: arr[i*3 + field] (the miniBUDE shape)."""
        src = """
global long rec[12] = { 1, 2, 3, 10, 20, 30, 100, 200, 300, 1000, 2000, 3000 };
global long out;
func long main() {
  long total = 0;
  for (long i = 0; i < 4; i = i + 1) {
    total = total + rec[i * 3 + 0] + 2 * rec[i * 3 + 1] - rec[i * 3 + 2];
  }
  out = total;
  return 0;
}
"""
        expected = sum(
        	[1 + 4 - 3, 10 + 40 - 30, 100 + 400 - 300, 1000 + 4000 - 3000]
        )
        assert result_of(src, *config) == expected

    def test_2d_flattened(self, config):
        src = """
global double grid[36];
global double out;
func long main() {
  for (long jj = 0; jj < 6; jj = jj + 1) {
    for (long ii = 0; ii < 6; ii = ii + 1) {
      grid[jj * 6 + ii] = (double)(jj) * 10.0 + (double)(ii);
    }
  }
  double total = 0.0;
  for (long jj = 1; jj < 5; jj = jj + 1) {
    for (long ii = 1; ii < 5; ii = ii + 1) {
      total = total + grid[jj * 6 + ii + 1] + grid[jj * 6 + ii + -6];
    }
  }
  out = total;
  return 0;
}
"""
        grid = {(jj, ii): jj * 10.0 + ii for jj in range(6) for ii in range(6)}
        expected = sum(
            grid[(jj, ii + 1)] + grid[(jj - 1, ii)]
            for jj in range(1, 5) for ii in range(1, 5)
        )
        assert result_of(src, *config, as_float=True) == expected

    def test_global_scalar_rmw_in_loop(self, config):
        """Global scalar assigned inside the loop must not be hoisted."""
        src = """
global long acc = 5;
global long out;
func long main() {
  for (long j = 0; j < 4; j = j + 1) { acc = acc * 2; }
  out = acc;
  return 0;
}
"""
        assert result_of(src, *config) == 80

    def test_indirect_index(self, config):
        src = """
global long perm[5] = { 3, 0, 4, 1, 2 };
global long vals[5] = { 10, 20, 30, 40, 50 };
global long out;
func long main() {
  long total = 0;
  for (long j = 0; j < 5; j = j + 1) { total = total + vals[perm[j]]; }
  out = total;
  return 0;
}
"""
        assert result_of(src, *config) == 40 + 10 + 50 + 20 + 30


class TestCompoundAssignment:
    def test_scalar_compound_ops(self, config):
        src = """
global long out;
func long main() {
  long x = 10;
  x += 5;
  x -= 3;
  x *= 4;
  x /= 6;
  out = x;
  return 0;
}
"""
        assert result_of(src, *config) == ((10 + 5 - 3) * 4) // 6

    def test_array_compound(self, config):
        src = """
global double acc[8];
global double out;
func long main() {
  for (long j = 0; j < 8; j = j + 1) { acc[j] = 1.0; }
  for (long k = 0; k < 3; k = k + 1) {
    for (long j = 0; j < 8; j = j + 1) {
      acc[j] += (double)(j) * 0.5;
    }
  }
  double total = 0.0;
  for (long j = 0; j < 8; j = j + 1) { total += acc[j]; }
  out = total;
  return 0;
}
"""
        expected = sum(1.0 + 3 * (j * 0.5) for j in range(8))
        assert result_of(src, *config, as_float=True) == expected

    def test_compound_in_for_update_rejected_shape(self, config):
        # "j += 1" as the for-update is an AssignStmt but not the canonical
        # "j = j + C" pattern; it must still compile and run correctly
        src = """
global long out;
func long main() {
  long n = 0;
  for (long j = 0; j < 10; j += 2) { n += 1; }
  out = n;
  return 0;
}
"""
        assert result_of(src, *config) == 5
