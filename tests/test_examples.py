"""Smoke tests: every shipped example must run end to end.

Run as subprocesses (the examples are user-facing entry points), with
small arguments where the script accepts them.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "validated: dot = 1999000.0" in out
    assert "=== aarch64" in out and "=== rv64" in out
    assert "lsl #3" in out          # the Listing-1 addressing mode

def test_stream_analysis():
    out = run_example("stream_analysis.py")
    assert "Listing 1" in out and "Listing 2" in out
    assert "subs" in out            # the gcc9 idiom
    assert "NZCV setters" in out

def test_windowed_rob_study():
    out = run_example("windowed_rob_study.py", "minisweep", "0.15")
    assert "window     4" in out.replace("  ", " ").replace(" ", " ") or "window" in out
    assert "ILP ratio" in out

def test_custom_kernel():
    out = run_example("custom_kernel.py")
    assert "Jacobi" in out
    assert "validated against the NumPy reference" in out

def test_ooo_future_work():
    out = run_example("ooo_future_work.py", "minisweep", "0.3")
    assert "in-order dual-issue" in out
    assert "OoO rob=630" in out
