"""Tests for the AArch64 bitmask-immediate encoder/decoder."""

import pytest
from hypothesis import given, strategies as st

from repro.common import EncodingError
from repro.isa.aarch64.logical_imm import (
    decode_bitmask_immediate,
    encode_bitmask_immediate,
    is_bitmask_immediate,
)


class TestKnownEncodings:
    def test_single_bit(self):
        n, immr, imms = encode_bitmask_immediate(1, 64)
        assert decode_bitmask_immediate(n, immr, imms, 64) == 1

    def test_ff(self):
        assert is_bitmask_immediate(0xFF, 64)
        n, immr, imms = encode_bitmask_immediate(0xFF, 64)
        assert decode_bitmask_immediate(n, immr, imms, 64) == 0xFF

    def test_alternating(self):
        assert is_bitmask_immediate(0x5555555555555555, 64)
        assert is_bitmask_immediate(0xAAAAAAAAAAAAAAAA, 64)

    def test_rotated_run(self):
        # 0xF00000000000000F is a rotated 8-bit run
        assert is_bitmask_immediate(0xF00000000000000F, 64)

    def test_page_mask(self):
        assert is_bitmask_immediate(0xFFFFFFFFFFFFF000, 64)
        assert is_bitmask_immediate(0xFFF, 64)

    def test_32bit(self):
        assert is_bitmask_immediate(0xFFFF0000, 32)
        n, immr, imms = encode_bitmask_immediate(0xFFFF0000, 32)
        assert n == 0
        assert decode_bitmask_immediate(n, immr, imms, 32) == 0xFFFF0000


class TestRejections:
    def test_zero_and_all_ones(self):
        assert not is_bitmask_immediate(0, 64)
        assert not is_bitmask_immediate((1 << 64) - 1, 64)
        assert not is_bitmask_immediate(0, 32)
        assert not is_bitmask_immediate((1 << 32) - 1, 32)

    def test_non_run_pattern(self):
        assert not is_bitmask_immediate(0b101, 64)          # two runs
        assert not is_bitmask_immediate(0xDEADBEEF, 64)

    def test_encode_raises(self):
        with pytest.raises(EncodingError):
            encode_bitmask_immediate(0, 64)
        with pytest.raises(EncodingError):
            encode_bitmask_immediate(0b101, 64)

    def test_decode_reserved(self):
        with pytest.raises(EncodingError):
            decode_bitmask_immediate(1, 0, 0x3F, 64)  # all-ones element
        with pytest.raises(EncodingError):
            decode_bitmask_immediate(1, 0, 0, 32)     # N=1 invalid for 32-bit

    def test_bad_width(self):
        with pytest.raises(EncodingError):
            encode_bitmask_immediate(0xFF, 16)


@given(
    esize_log=st.integers(min_value=1, max_value=6),
    run_len_frac=st.floats(min_value=0.01, max_value=0.99),
    rotation=st.integers(min_value=0, max_value=63),
)
def test_all_constructible_patterns_roundtrip(esize_log, run_len_frac, rotation):
    """Any replicated rotated run must encode and decode back to itself."""
    esize = 1 << esize_log
    ones = max(1, min(esize - 1, int(esize * run_len_frac)))
    element = (1 << ones) - 1
    rotation %= esize
    rotated = ((element >> rotation) | (element << (esize - rotation))) & (
        (1 << esize) - 1
    )
    value = 0
    for i in range(64 // esize):
        value |= rotated << (i * esize)
    n, immr, imms = encode_bitmask_immediate(value, 64)
    assert decode_bitmask_immediate(n, immr, imms, 64) == value


@given(st.integers(min_value=1, max_value=(1 << 64) - 2))
def test_encoder_never_lies(value):
    """If the encoder accepts a value, decode must return it exactly."""
    try:
        n, immr, imms = encode_bitmask_immediate(value, 64)
    except EncodingError:
        return
    assert decode_bitmask_immediate(n, immr, imms, 64) == value


def test_exhaustive_8bit_patterns():
    """For all 8-bit-element patterns, encoder acceptance matches the
    ground-truth 'replicated rotated run' definition."""
    def is_rotated_run(element: int) -> bool:
        ones = bin(element).count("1")
        if ones in (0, 8):
            return False
        for rot in range(8):
            r = ((element << rot) | (element >> (8 - rot))) & 0xFF
            if r == (1 << ones) - 1:
                return True
        return False

    for element in range(256):
        value = int.from_bytes(bytes([element]) * 8, "little")
        expected = is_rotated_run(element)
        # NB: patterns that also replicate at a smaller element size are
        # still encodable; is_rotated_run covers those too (a run at size 8
        # implies encodability, and sub-period patterns are checked at
        # their own size by the encoder).
        got = is_bitmask_immediate(value, 64)
        if expected:
            assert got, f"pattern {element:#04x} should encode"
        elif not got:
            pass  # consistent rejection
        else:
            # encoder accepted: must be a sub-period run (e.g. 0x55)
            sub_ok = False
            for esize in (1, 2, 4):
                period = element & ((1 << esize) - 1)
                if all(
                    ((element >> (i * esize)) & ((1 << esize) - 1)) == period
                    for i in range(8 // esize)
                ):
                    sub_ok = True
            assert sub_ok, f"pattern {element:#04x} wrongly accepted"
