"""Execution tests for RV64G: assemble real encodings, run, check state.

Each test goes through the full pipeline — assembler → ELF → loader →
decoder → executor — so it covers encodings and semantics together.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import MASK64, u64
from tests.conftest import run_rv

u64s = st.integers(min_value=0, max_value=MASK64)


def rv_regs(body: str, isa, data: str = ""):
    _result, machine, _image = run_rv(body, isa, data)
    return machine


class TestIntegerArithmetic:
    def test_add_sub(self, rv64):
        m = rv_regs("""
    li t0, 100
    li t1, 42
    add a0, t0, t1
    sub a1, t0, t1
""", rv64)
        assert m.r[10] == 142
        assert m.r[11] == 58

    def test_addi_negative(self, rv64):
        m = rv_regs("    li t0, 5\n    addi a0, t0, -10\n", rv64)
        assert m.r[10] == u64(-5)

    def test_overflow_wraps(self, rv64):
        m = rv_regs("""
    li t0, 0x7fffffffffffffff
    addi a0, t0, 1
""", rv64)
        assert m.r[10] == 1 << 63

    def test_logic_ops(self, rv64):
        m = rv_regs("""
    li t0, 0xff00
    li t1, 0x0ff0
    and a0, t0, t1
    or  a1, t0, t1
    xor a2, t0, t1
    andi a3, t0, 0xf0
""", rv64)
        assert m.r[10] == 0x0f00
        assert m.r[11] == 0xfff0
        assert m.r[12] == 0xf0f0
        assert m.r[13] == 0x00

    def test_shifts(self, rv64):
        m = rv_regs("""
    li t0, -8
    srai a0, t0, 1
    srli a1, t0, 60
    slli a2, t0, 1
    li t1, 3
    sra a3, t0, t1
""", rv64)
        assert m.r[10] == u64(-4)
        assert m.r[11] == 0xF
        assert m.r[12] == u64(-16)
        assert m.r[13] == u64(-1)

    def test_slt_family(self, rv64):
        m = rv_regs("""
    li t0, -1
    li t1, 1
    slt a0, t0, t1
    sltu a1, t0, t1
    slti a2, t0, 0
    sltiu a3, t0, 1
""", rv64)
        assert m.r[10] == 1      # -1 < 1 signed
        assert m.r[11] == 0      # 0xFF..FF > 1 unsigned
        assert m.r[12] == 1
        assert m.r[13] == 0

    def test_w_forms_sign_extend(self, rv64):
        m = rv_regs("""
    li t0, 0x7fffffff
    addiw a0, t0, 1
    li t1, 1
    addw a1, t0, t1
    li t2, 0xffffffff
    sext.w a2, t2
""", rv64)
        assert m.r[10] == u64(-(1 << 31))
        assert m.r[11] == u64(-(1 << 31))
        assert m.r[12] == u64(-1)

    def test_mul_div(self, rv64):
        m = rv_regs("""
    li t0, -6
    li t1, 4
    mul a0, t0, t1
    div a1, t0, t1
    rem a2, t0, t1
    divu a3, t1, t0
""", rv64)
        assert m.r[10] == u64(-24)
        assert m.r[11] == u64(-1)   # trunc(-1.5)
        assert m.r[12] == u64(-2)
        assert m.r[13] == 0         # 4 / huge unsigned

    def test_mulh(self, rv64):
        m = rv_regs("""
    li t0, -1
    li t1, -1
    mulh a0, t0, t1
    mulhu a1, t0, t1
""", rv64)
        assert m.r[10] == 0
        assert m.r[11] == MASK64 - 1

    def test_lui_auipc(self, rv64):
        m = rv_regs("    lui a0, 0x12345\n", rv64)
        assert m.r[10] == 0x12345000

    def test_zero_register_writes_discarded(self, rv64):
        m = rv_regs("""
    li t0, 7
    add zero, t0, t0
    mv a0, zero
""", rv64)
        assert m.r[10] == 0
        assert m.r[0] == 0


class TestLiExpansion:
    @pytest.mark.parametrize("value", [
        0, 1, -1, 2047, -2048, 2048, 65536, 0x7FFFFFFF, -(1 << 31),
        0x123456789ABCDEF0, -(1 << 63), (1 << 63) - 1, 0xDEADBEEFCAFEBABE,
    ])
    def test_li_exact(self, rv64, value):
        m = rv_regs(f"    li a0, {value}\n", rv64)
        assert m.r[10] == u64(value)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_li_random(self, rv64, value):
        m = rv_regs(f"    li a0, {value}\n", rv64)
        assert m.r[10] == u64(value)


class TestBranches:
    @pytest.mark.parametrize("insn,a,b,taken", [
        ("beq", 5, 5, True), ("beq", 5, 6, False),
        ("bne", 5, 6, True), ("bne", 5, 5, False),
        ("blt", -1, 1, True), ("blt", 1, -1, False),
        ("bge", 1, -1, True), ("bge", -2, -1, False),
        ("bltu", 1, -1, True),   # unsigned: 1 < 0xFF..FF
        ("bgeu", -1, 1, True),
    ])
    def test_conditional(self, rv64, insn, a, b, taken):
        m = rv_regs(f"""
    li t0, {a}
    li t1, {b}
    li a0, 0
    {insn} t0, t1, 1f
    li a0, 99
1:
""", rv64)
        assert m.r[10] == (0 if taken else 99)

    def test_jal_links(self, rv64):
        m = rv_regs("""
    jal ra, target
back:
    j done
target:
    li a1, 55
    ret
done:
""", rv64)
        assert m.r[11] == 55

    def test_jalr_indirect(self, rv64):
        m = rv_regs("""
    la t0, target
    jalr ra, 0(t0)
    j done
target:
    li a1, 77
    ret
done:
""", rv64)
        assert m.r[11] == 77

    def test_loop_counts(self, rv64):
        m = rv_regs("""
    li a0, 0
    li t0, 0
    li t1, 10
loop:
    addi a0, a0, 2
    addi t0, t0, 1
    blt t0, t1, loop
""", rv64)
        assert m.r[10] == 20


class TestMemory:
    def test_load_store_widths(self, rv64):
        m = rv_regs("""
    la t0, buf
    li t1, -2
    sd t1, 0(t0)
    lb a0, 0(t0)
    lbu a1, 0(t0)
    lh a2, 0(t0)
    lhu a3, 0(t0)
    lw a4, 0(t0)
    lwu a5, 0(t0)
    ld a6, 0(t0)
""", rv64, data="buf:\n    .dword 0\n")
        assert m.r[10] == u64(-2)
        assert m.r[11] == 0xFE
        assert m.r[12] == u64(-2)
        assert m.r[13] == 0xFFFE
        assert m.r[14] == u64(-2)
        assert m.r[15] == 0xFFFFFFFE
        assert m.r[16] == u64(-2)

    def test_byte_halfword_stores(self, rv64):
        m = rv_regs("""
    la t0, buf
    li t1, 0x1122334455667788
    sd t1, 0(t0)
    li t2, 0xAB
    sb t2, 2(t0)
    ld a0, 0(t0)
""", rv64, data="buf:\n    .dword 0\n")
        assert m.r[10] == 0x11223344_55AB7788

    def test_negative_offsets(self, rv64):
        m = rv_regs("""
    la t0, buf
    addi t0, t0, 16
    li t1, 42
    sd t1, -8(t0)
    ld a0, -8(t0)
""", rv64, data="buf:\n    .zero 32\n")
        assert m.r[10] == 42


class TestFloatingPoint:
    def test_arith(self, rv64):
        m = rv_regs("""
    la t0, vals
    fld fa0, 0(t0)
    fld fa1, 8(t0)
    fadd.d fa2, fa0, fa1
    fsub.d fa3, fa0, fa1
    fmul.d fa4, fa0, fa1
    fdiv.d fa5, fa0, fa1
""", rv64, data="vals:\n    .double 6.0, 1.5\n")
        assert m.f[12] == 7.5
        assert m.f[13] == 4.5
        assert m.f[14] == 9.0
        assert m.f[15] == 4.0

    def test_fma_family(self, rv64):
        m = rv_regs("""
    la t0, vals
    fld fa0, 0(t0)
    fld fa1, 8(t0)
    fld fa2, 16(t0)
    fmadd.d  ft0, fa0, fa1, fa2
    fmsub.d  ft1, fa0, fa1, fa2
    fnmsub.d ft2, fa0, fa1, fa2
    fnmadd.d ft3, fa0, fa1, fa2
""", rv64, data="vals:\n    .double 2.0, 3.0, 10.0\n")
        assert m.f[0] == 16.0    # 2*3 + 10
        assert m.f[1] == -4.0    # 2*3 - 10
        assert m.f[2] == 4.0     # -(2*3) + 10
        assert m.f[3] == -16.0   # -(2*3) - 10

    def test_compares(self, rv64):
        m = rv_regs("""
    la t0, vals
    fld fa0, 0(t0)
    fld fa1, 8(t0)
    feq.d a0, fa0, fa1
    flt.d a1, fa0, fa1
    fle.d a2, fa0, fa0
""", rv64, data="vals:\n    .double 1.0, 2.0\n")
        assert m.r[10] == 0
        assert m.r[11] == 1
        assert m.r[12] == 1

    def test_conversions(self, rv64):
        m = rv_regs("""
    li t0, -3
    fcvt.d.l fa0, t0
    la t1, vals
    fld fa1, 0(t1)
    fcvt.l.d a0, fa1
    fcvt.l.d a1, fa1, rtz
""", rv64, data="vals:\n    .double 2.75\n")
        assert m.f[10] == -3.0
        assert m.r[10] == 2     # default rtz
        assert m.r[11] == 2

    def test_fmv_bit_patterns(self, rv64):
        m = rv_regs("""
    la t0, vals
    fld fa0, 0(t0)
    fmv.x.d a0, fa0
    li t1, 0x4000000000000000
    fmv.d.x fa1, t1
""", rv64, data="vals:\n    .double 1.0\n")
        assert m.r[10] == 0x3FF0000000000000
        assert m.f[11] == 2.0

    def test_fsqrt_fabs_fneg(self, rv64):
        m = rv_regs("""
    la t0, vals
    fld fa0, 0(t0)
    fsqrt.d fa1, fa0
    fneg.d fa2, fa0
    fabs.d fa3, fa2
""", rv64, data="vals:\n    .double 9.0\n")
        assert m.f[11] == 3.0
        assert m.f[12] == -9.0
        assert m.f[13] == 9.0

    def test_single_precision(self, rv64):
        m = rv_regs("""
    la t0, vals
    flw fa0, 0(t0)
    flw fa1, 4(t0)
    fadd.s fa2, fa0, fa1
    fcvt.d.s fa3, fa2
""", rv64, data="vals:\n    .float 0.5, 0.25\n")
        assert m.f[12] == 0.75
        assert m.f[13] == 0.75

    def test_fmin_fmax(self, rv64):
        m = rv_regs("""
    la t0, vals
    fld fa0, 0(t0)
    fld fa1, 8(t0)
    fmin.d fa2, fa0, fa1
    fmax.d fa3, fa0, fa1
""", rv64, data="vals:\n    .double -1.0, 3.0\n")
        assert m.f[12] == -1.0
        assert m.f[13] == 3.0


class TestAtomics:
    def test_lr_sc_success(self, rv64):
        m = rv_regs("""
    la t0, buf
    li t1, 10
    sd t1, 0(t0)
    lr.d a0, (t0)
    li t2, 20
    sc.d a1, t2, (t0)
    ld a2, 0(t0)
""", rv64, data="buf:\n    .dword 0\n")
        assert m.r[10] == 10
        assert m.r[11] == 0      # success
        assert m.r[12] == 20

    def test_amoadd(self, rv64):
        m = rv_regs("""
    la t0, buf
    li t1, 100
    sd t1, 0(t0)
    li t2, 5
    amoadd.d a0, t2, (t0)
    ld a1, 0(t0)
""", rv64, data="buf:\n    .dword 0\n")
        assert m.r[10] == 100    # old value
        assert m.r[11] == 105

    def test_amoswap_w_sign_extends(self, rv64):
        m = rv_regs("""
    la t0, buf
    li t1, 0xffffffff
    sw t1, 0(t0)
    li t2, 1
    amoswap.w a0, t2, (t0)
    lw a1, 0(t0)
""", rv64, data="buf:\n    .dword 0\n")
        assert m.r[10] == u64(-1)
        assert m.r[11] == 1


class TestCsr:
    def test_fcsr_rw(self, rv64):
        m = rv_regs("""
    li t0, 0x45
    csrrw a0, fcsr, t0
    csrr a1, fcsr
    csrr a2, fflags
    csrr a3, frm
""", rv64)
        assert m.r[10] == 0      # old fcsr
        assert m.r[11] == 0x45
        assert m.r[12] == 0x5    # low 5 bits
        assert m.r[13] == 0x2    # bits 7:5

    def test_instret_counts(self, rv64):
        m = rv_regs("""
    csrr a0, instret
""", rv64)
        # instret is only committed at run end; reads mid-run see the
        # previous run's total (0 for a fresh machine)
        assert m.r[10] == 0


class TestPseudoInstructions:
    def test_not_neg_seqz_snez(self, rv64):
        m = rv_regs("""
    li t0, 0
    seqz a0, t0
    snez a1, t0
    li t1, 5
    neg a2, t1
    not a3, t0
""", rv64)
        assert m.r[10] == 1
        assert m.r[11] == 0
        assert m.r[12] == u64(-5)
        assert m.r[13] == MASK64

    def test_beqz_bnez(self, rv64):
        m = rv_regs("""
    li a0, 1
    li t0, 0
    beqz t0, 1f
    li a0, 99
1:
""", rv64)
        assert m.r[10] == 1

    def test_bgt_ble_swap(self, rv64):
        m = rv_regs("""
    li t0, 5
    li t1, 3
    li a0, 0
    bgt t0, t1, 1f
    li a0, 99
1:
    li a1, 0
    ble t1, t0, 2f
    li a1, 99
2:
""", rv64)
        assert m.r[10] == 0
        assert m.r[11] == 0


class TestDisassembly:
    @pytest.mark.parametrize("text", [
        "add a0,a1,a2",
        "addi a0,a1,-5",
        "fld fa5,0(a5)",
        "fsd fa5,8(a4)",
        "fmadd.d fa0,fa1,fa2,fa3",
        "lui a0,0x12345",
        "div a0,a1,a2",
    ])
    def test_roundtrip_through_assembler(self, rv64, text):
        """assemble(disassemble(assemble(x))) is a fixed point."""

        class Ctx:
            pc = 0x1000

            def lookup(self, sym):
                return 0x1000

        mnemonic, operands = text.split(" ", 1)
        words = rv64.encode_instruction(mnemonic, operands.split(","), Ctx())
        assert len(words) == 1
        assert rv64.disassemble(words[0], 0x1000) == text


class TestZba:
    def test_shadd_semantics(self, rv64):
        m = rv_regs("""
    li t0, 5
    li t1, 1000
    sh1add a0, t0, t1
    sh2add a1, t0, t1
    sh3add a2, t0, t1
""", rv64)
        assert m.r[10] == 1000 + 10
        assert m.r[11] == 1000 + 20
        assert m.r[12] == 1000 + 40

    def test_sh3add_wraps(self, rv64):
        from repro.common import u64
        m = rv_regs("""
    li t0, -1
    li t1, 8
    sh3add a0, t0, t1
""", rv64)
        assert m.r[10] == 0  # (-1 << 3) + 8 wraps to zero
