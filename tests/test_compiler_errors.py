"""Compiler robustness: error paths and degraded-but-correct code generation."""

import pytest

from repro.common import CompilerError
from repro.compiler import compile_source, compile_to_asm, get_profile
from repro.compiler.profiles import PROFILES, Profile
from tests.conftest import compile_and_run


class TestProfiles:
    def test_lookup(self):
        assert get_profile("gcc9").name == "gcc9"
        assert get_profile("GCC12").name == "gcc12"

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_profile("gcc4")

    def test_profile_fields(self):
        gcc9, gcc12 = PROFILES["gcc9"], PROFILES["gcc12"]
        assert not gcc9.local_cse and gcc12.local_cse
        assert not gcc9.hoist_const_bounds and gcc12.hoist_const_bounds
        assert gcc9.max_streams is not None and gcc12.max_streams is None

    def test_custom_profile_object_accepted(self):
        custom = Profile(name="custom", local_cse=True,
                         hoist_const_bounds=False, max_streams=3)
        src = "global long out; func long main() { out = 1; return 0; }"
        compiled = compile_source(src, "rv64", custom)
        assert compiled.profile.name == "custom"


class TestDriverErrors:
    def test_unknown_isa(self):
        with pytest.raises(ValueError):
            compile_to_asm("func long main() { return 0; }", "x86_64")

    def test_frontend_errors_carry_lines(self):
        with pytest.raises(CompilerError) as err:
            compile_to_asm("func long main() {\n  return nope;\n}", "rv64")
        assert "line 2" in str(err.value)


class TestRegisterPressureDegradation:
    """When register pools run dry, code must degrade, not break."""

    def test_many_arrays_in_one_loop(self):
        n = 16
        decls = "\n".join(f"global double a{i}[8];" for i in range(n))
        writes = "\n".join(f"    a{i}[j] = (double)(j + {i});"
                           for i in range(n))
        src = f"""
{decls}
global double out;
func long main() {{
  for (long j = 0; j < 8; j = j + 1) {{
{writes}
  }}
  double total = 0.0;
  for (long j = 0; j < 8; j = j + 1) {{
    total = total + a0[j] + a{n - 1}[j];
  }}
  out = total;
  return 0;
}}
"""
        expected = sum(float(j) + float(j + n - 1) for j in range(8))
        for isa in ("rv64", "aarch64"):
            for profile in ("gcc9", "gcc12"):
                _r, machine, compiled = compile_and_run(src, isa, profile)
                got = machine.memory.load_f64(compiled.image.symbol("out"))
                assert got == expected, (isa, profile)

    def test_deeply_nested_loops(self):
        src = """
global long out;
func long main() {
  long total = 0;
  for (long a = 0; a < 3; a = a + 1) {
    for (long b = 0; b < 3; b = b + 1) {
      for (long c = 0; c < 3; c = c + 1) {
        for (long d = 0; d < 3; d = d + 1) {
          for (long e = 0; e < 3; e = e + 1) {
            total = total + a + b + c + d + e;
          }
        }
      }
    }
  }
  out = total;
  return 0;
}
"""
        expected = sum(a + b + c + d + e
                       for a in range(3) for b in range(3) for c in range(3)
                       for d in range(3) for e in range(3))
        for isa in ("rv64", "aarch64"):
            _r, machine, compiled = compile_and_run(src, isa, "gcc12")
            assert machine.memory.load(compiled.image.symbol("out"), 8) == expected

    def test_many_fp_locals_with_calls(self):
        """Non-leaf function: locals must survive the calls (callee-saved
        homes or stack slots)."""
        decls = "\n".join(f"  double v{i} = {i}.5;" for i in range(20))
        uses = " + ".join(f"v{i}" for i in range(20))
        src = f"""
global double out;
func double bump(double x) {{ return x + 1.0; }}
func long main() {{
{decls}
  double extra = bump(bump(bump(0.0)));
  out = {uses} + extra;
  return 0;
}}
"""
        expected = sum(i + 0.5 for i in range(20)) + 3.0
        for isa in ("rv64", "aarch64"):
            _r, machine, compiled = compile_and_run(src, isa, "gcc9")
            got = machine.memory.load_f64(compiled.image.symbol("out"))
            assert got == expected


class TestGcc9StreamBudget:
    def test_max_streams_demotes_not_breaks(self):
        """gcc9's 5-stream budget: a 8-array loop still computes correctly
        and its asm contains generic (recomputed-address) accesses."""
        n = 8
        decls = "\n".join(f"global double b{i}[16];" for i in range(n))
        body = "\n".join(f"    b{i}[j] = b{i}[j] + 1.0;" for i in range(n))
        src = f"""
{decls}
global double out;
func long main() {{
  for (long j = 0; j < 16; j = j + 1) {{
{body}
  }}
  out = b7[3];
  return 0;
}}
"""
        asm9 = compile_to_asm(src, "rv64", "gcc9")
        asm12 = compile_to_asm(src, "rv64", "gcc12")
        # gcc9 emits strictly more address arithmetic in the loop
        count9 = asm9.count("slli")
        count12 = asm12.count("slli")
        assert count9 > count12
        for profile in ("gcc9", "gcc12"):
            _r, machine, compiled = compile_and_run(src, "rv64", profile)
            assert machine.memory.load_f64(compiled.image.symbol("out")) == 1.0
