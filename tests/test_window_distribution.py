"""§6.2's distributional observation, verified.

"Due to the regular nature of STREAM, many of the windows produced CP
lengths of the same size, with no CP lengths ≤ 1 instruction. All other
benchmarks had much smoother distributions of CP lengths."
"""

from collections import Counter

from repro.analysis import WindowedCPProbe
from repro.workloads import run_workload
from repro.workloads.lbm import Lbm, LbmParams
from repro.workloads.stream import Stream, StreamParams


def window_cps(workload, isa="rv64", window=64):
    probe = WindowedCPProbe(window_sizes=(window,), keep_cps=True)
    run_workload(workload, isa, "gcc12", [probe])
    return probe.results()[window].cps


def concentration(cps, k=5):
    counts = Counter(cps)
    return sum(n for _v, n in counts.most_common(k)) / len(cps)


def test_stream_windows_are_regular():
    cps = window_cps(Stream(StreamParams(n=600, ntimes=1)))
    # "many of the windows produced CP lengths of the same size": the
    # handful of per-kernel modal values covers the bulk of all windows
    assert concentration(cps, k=5) > 0.6
    # few distinct CP values relative to the number of windows
    assert len(set(cps)) < 0.05 * len(cps)
    # "no CP lengths <= 1 instruction"
    assert min(cps) > 1


def test_lbm_distribution_is_smoother():
    stream_cps = window_cps(Stream(StreamParams(n=600, ntimes=1)))
    lbm_cps = window_cps(Lbm(LbmParams(nx=12, ny=12, iters=2)))
    # LBM's top window-CP values cover a smaller share: smoother distribution
    assert concentration(lbm_cps, k=5) < concentration(stream_cps, k=5)


def test_no_window_cp_below_one_anywhere():
    for workload in (Stream(StreamParams(n=200, ntimes=1)),
                     Lbm(LbmParams(nx=8, ny=8, iters=2))):
        for isa in ("rv64", "aarch64"):
            cps = window_cps(workload, isa=isa, window=16)
            assert min(cps) >= 1
