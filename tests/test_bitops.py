"""Unit and property tests for repro.common.bitops."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common import bitops as B

u64s = st.integers(min_value=0, max_value=(1 << 64) - 1)
s64s = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


class TestFieldExtraction:
    def test_bit(self):
        assert B.bit(0b1010, 1) == 1
        assert B.bit(0b1010, 0) == 0
        assert B.bit(1 << 63, 63) == 1

    def test_bits_inclusive_range(self):
        assert B.bits(0xDEADBEEF, 31, 16) == 0xDEAD
        assert B.bits(0xDEADBEEF, 15, 0) == 0xBEEF
        assert B.bits(0xFF, 3, 3) == 1

    def test_bits_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            B.bits(0, 3, 5)


class TestSignExtension:
    def test_sext_negative(self):
        assert B.sext(0xFFF, 12) == -1
        assert B.sext(0x800, 12) == -2048

    def test_sext_positive(self):
        assert B.sext(0x7FF, 12) == 2047
        assert B.sext(0x001, 12) == 1

    def test_zext_truncates(self):
        assert B.zext(0x1FF, 8) == 0xFF

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_sext_roundtrips_through_unsigned(self, value):
        assert B.sext(B.to_unsigned(value, 32), 32) == value

    @given(u64s)
    def test_s64_u64_roundtrip(self, pattern):
        assert B.u64(B.s64(pattern)) == pattern

    @given(u64s)
    def test_s32_matches_sext(self, pattern):
        assert B.s32(pattern) == B.sext(pattern, 32)


class TestRotates:
    def test_rotate_right64_basic(self):
        assert B.rotate_right64(1, 1) == 1 << 63
        assert B.rotate_right64(0b11, 1) == (1 << 63) | 1

    def test_rotate_right32_wraps(self):
        assert B.rotate_right32(1, 32) == 1
        assert B.rotate_right32(0x80000000, 31) == 1

    @given(u64s, st.integers(min_value=0, max_value=200))
    def test_rotate64_composition(self, value, amount):
        # rotating by amount then by 64-amount is the identity
        once = B.rotate_right64(value, amount)
        assert B.rotate_right64(once, (64 - amount) % 64) == value


class TestCounting:
    def test_clz(self):
        assert B.count_leading_zeros(0, 64) == 64
        assert B.count_leading_zeros(1, 64) == 63
        assert B.count_leading_zeros(1 << 63, 64) == 0
        assert B.count_leading_zeros(0xFF, 8) == 0

    def test_ctz(self):
        assert B.count_trailing_zeros(0, 64) == 64
        assert B.count_trailing_zeros(8, 64) == 3
        assert B.count_trailing_zeros(1, 64) == 0

    def test_popcount(self):
        assert B.popcount(0xFF) == 8
        assert B.popcount(0) == 0

    @given(u64s)
    def test_clz_consistent_with_bit_length(self, value):
        assert B.count_leading_zeros(value, 64) == 64 - value.bit_length()


class TestReversal:
    def test_bit_reverse_known(self):
        assert B.bit_reverse(0b1, 8) == 0b1000_0000
        assert B.bit_reverse(0b1011, 4) == 0b1101

    @given(u64s)
    def test_bit_reverse_involution(self, value):
        assert B.bit_reverse(B.bit_reverse(value, 64), 64) == value

    def test_byte_reverse(self):
        assert B.byte_reverse(0x0102030405060708, 64) == 0x0807060504030201
        assert B.byte_reverse(0x1234, 16) == 0x3412

    @given(u64s)
    def test_byte_reverse_involution(self, value):
        assert B.byte_reverse(B.byte_reverse(value, 64), 64) == value

    def test_byte_reverse_rejects_odd_width(self):
        with pytest.raises(ValueError):
            B.byte_reverse(1, 12)


class TestReplicate:
    def test_replicate_pattern(self):
        assert B.replicate(0b01, 2, 8) == 0b01010101
        assert B.replicate(0xF0, 8, 32) == 0xF0F0F0F0

    def test_replicate_rejects_mismatched_width(self):
        with pytest.raises(ValueError):
            B.replicate(1, 3, 64)


class TestRangePredicates:
    def test_fits_signed(self):
        assert B.fits_signed(2047, 12)
        assert B.fits_signed(-2048, 12)
        assert not B.fits_signed(2048, 12)
        assert not B.fits_signed(-2049, 12)

    def test_fits_unsigned(self):
        assert B.fits_unsigned(4095, 12)
        assert not B.fits_unsigned(4096, 12)
        assert not B.fits_unsigned(-1, 12)


class TestAlignment:
    def test_align_down_up(self):
        assert B.align_down(0x1234, 16) == 0x1230
        assert B.align_up(0x1234, 16) == 0x1240
        assert B.align_up(0x1230, 16) == 0x1230

    def test_align_rejects_non_power(self):
        with pytest.raises(ValueError):
            B.align_up(10, 12)

    @given(st.integers(min_value=0, max_value=1 << 48),
           st.sampled_from([1, 2, 4, 8, 16, 4096]))
    def test_align_bounds(self, value, alignment):
        down, up = B.align_down(value, alignment), B.align_up(value, alignment)
        assert down <= value <= up
        assert down % alignment == 0 and up % alignment == 0
        assert up - down in (0, alignment)


class TestFloatBits:
    def test_f64_roundtrip_specials(self):
        for value in (0.0, -0.0, 1.0, -1.5, math.inf, -math.inf):
            assert B.bits_to_f64(B.f64_to_bits(value)) == value
            # -0.0 must preserve its sign bit
        assert B.f64_to_bits(-0.0) == 1 << 63

    def test_f64_nan_pattern(self):
        assert math.isnan(B.bits_to_f64(B.f64_to_bits(math.nan)))

    @given(st.floats(allow_nan=False))
    def test_f64_bits_roundtrip(self, value):
        assert B.bits_to_f64(B.f64_to_bits(value)) == value

    @given(st.floats(allow_nan=False, width=32))
    def test_f32_bits_roundtrip(self, value):
        assert B.bits_to_f32(B.f32_to_bits(value)) == value

    def test_known_patterns(self):
        assert B.f64_to_bits(1.0) == 0x3FF0000000000000
        assert B.f32_to_bits(1.0) == 0x3F800000
