"""Tests for memory, machine state, syscalls and the emulation core."""

import pytest
from hypothesis import given, strategies as st

from repro.common import SimulationError
from repro.sim import Memory
from repro.sim.machine import CSR_FCSR, CSR_FFLAGS, CSR_FRM, Machine
from tests.conftest import run_asm, run_rv


class TestMemory:
    def test_widths_little_endian(self):
        mem = Memory(1024)
        mem.store(0, 8, 0x1122334455667788)
        assert mem.load(0, 1) == 0x88
        assert mem.load(0, 2) == 0x7788
        assert mem.load(0, 4) == 0x55667788
        assert mem.load(7, 1) == 0x11

    def test_signed_loads(self):
        mem = Memory(64)
        mem.store(0, 1, 0xFF)
        assert mem.load(0, 1, signed=True) == -1
        assert mem.load(0, 1) == 255

    def test_float_access(self):
        mem = Memory(64)
        mem.store_f64(8, 2.5)
        assert mem.load_f64(8) == 2.5
        mem.store_f32(0, 0.5)
        assert mem.load_f32(0) == 0.5

    def test_bounds_checked(self):
        mem = Memory(64)
        with pytest.raises(SimulationError):
            mem.load(60, 8)
        with pytest.raises(SimulationError):
            mem.store(-1, 1, 0)
        with pytest.raises(SimulationError):
            mem.write_bytes(60, b"12345678")

    def test_recording(self):
        mem = Memory(64)
        mem.start_recording()
        mem.load(0, 8)
        mem.store(8, 4, 1)
        reads, writes = mem.drain_accesses()
        assert reads == [(0, 8)]
        assert writes == [(8, 4)]
        mem.stop_recording()
        mem.load(16, 8)
        assert mem.reads == []

    @given(st.integers(min_value=0, max_value=56),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_read_after_write(self, addr, value):
        mem = Memory(64)
        mem.store(addr, 8, value)
        assert mem.load(addr, 8) == value

    @given(st.binary(min_size=1, max_size=32))
    def test_bulk_roundtrip(self, blob):
        mem = Memory(64)
        mem.write_bytes(0, blob)
        assert mem.read_bytes(0, len(blob)) == blob


class TestMachine:
    def test_zero_slot_is_zero(self):
        machine = Machine("aarch64")
        assert machine.r[32] == 0
        assert len(machine.r) == 33

    def test_reset_stack_per_isa(self):
        arm = Machine("aarch64")
        arm.reset_stack()
        assert arm.r[31] == arm.stack_top
        rv = Machine("rv64")
        rv.reset_stack()
        assert rv.r[2] == rv.stack_top

    def test_csr_fcsr_composition(self):
        machine = Machine("rv64")
        machine.write_csr(CSR_FRM, 0b010)
        machine.write_csr(CSR_FFLAGS, 0b00011)
        assert machine.read_csr(CSR_FCSR) == (0b010 << 5) | 0b00011
        machine.write_csr(CSR_FCSR, 0)
        assert machine.read_csr(CSR_FRM) == 0

    def test_unknown_csr_raises(self):
        machine = Machine("rv64")
        with pytest.raises(SimulationError):
            machine.read_csr(0x7C0)
        with pytest.raises(SimulationError):
            machine.write_csr(0xC00, 1)  # cycle is read-only

    def test_dump_registers_smoke(self):
        text = Machine("rv64").dump_registers()
        assert "pc" in text and "r31" in text


class TestSyscalls:
    def test_exit_code(self, rv64):
        result, _m, _img = run_asm("""
    .text
_start:
    li a0, 7
    li a7, 93
    ecall
""", rv64)
        assert result.exit_code == 7
        assert result.instructions == 3

    def test_write_stdout_stderr(self, rv64):
        result, _m, _img = run_asm("""
    .text
_start:
    li a7, 64
    li a0, 1
    la a1, msg
    li a2, 5
    ecall
    li a7, 64
    li a0, 2
    la a1, msg
    li a2, 2
    ecall
    li a7, 93
    li a0, 0
    ecall
    .data
msg:
    .ascii "hello"
""", rv64)
        assert result.stdout == b"hello"
        assert result.stderr == b"he"

    def test_brk(self, rv64):
        _result, machine, _img = run_rv("""
    li a7, 214
    li a0, 0
    ecall
    mv t0, a0
    addi a0, a0, 1024
    li a7, 214
    ecall
    sub a1, a0, t0
    mv a0, zero
""", rv64)
        assert machine.r[11] == 1024

    def test_unsupported_syscall_raises(self, rv64):
        with pytest.raises(SimulationError):
            run_asm("""
    .text
_start:
    li a7, 999
    ecall
""", rv64)

    def test_aarch64_abi(self, aarch64):
        result, _m, _img = run_asm("""
    .text
_start:
    mov x8, #64
    mov x0, #1
    adrl x1, msg
    mov x2, #3
    svc #0
    mov x8, #93
    mov x0, #0
    svc #0
    .data
msg:
    .ascii "arm"
""", aarch64)
        assert result.stdout == b"arm"
        assert result.exit_code == 0


class TestEmulationCore:
    def test_instruction_budget(self, rv64):
        with pytest.raises(SimulationError) as err:
            run_asm("""
    .text
_start:
loop:
    j loop
""", rv64, max_instructions=100)
        assert "budget" in str(err.value)

    def test_decode_cache_reused(self, rv64):
        from repro.asm import assemble
        from repro.loader import program_to_image
        from repro.sim import Machine, Memory
        from repro.sim.emucore import EmulationCore
        from repro.loader import load_program

        prog = assemble("""
    .text
_start:
    li t0, 0
    li t1, 50
1:
    addi t0, t0, 1
    blt t0, t1, 1b
    li a7, 93
    li a0, 0
    ecall
""", rv64)
        image = program_to_image(prog)
        memory = Memory()
        load_program(image, memory)
        machine = Machine("rv64", memory)
        machine.reset_stack()
        machine.pc = image.entry
        core = EmulationCore(rv64, machine, [])
        result = core.run()
        # 6 static instructions in the loop region; cache holds exactly the
        # distinct PCs executed
        assert len(core.decode_cache) == 7
        assert result.instructions == 2 + 50 * 2 + 3

    def test_probes_see_every_instruction(self, rv64):
        from repro.asm import assemble
        from repro.loader import load_program, program_to_image
        from repro.sim import Machine, Memory
        from repro.sim.emucore import EmulationCore

        class Counter:
            needs_memory = False

            def __init__(self):
                self.count = 0
                self.mnemonics = []

            def on_retire(self, inst, reads, writes):
                self.count += 1
                self.mnemonics.append(inst.mnemonic)

        prog = assemble("""
    .text
_start:
    li t0, 1
    li a7, 93
    li a0, 0
    ecall
""", rv64)
        image = program_to_image(prog)
        memory = Memory()
        load_program(image, memory)
        machine = Machine("rv64", memory)
        machine.reset_stack()
        machine.pc = image.entry
        probe = Counter()
        core = EmulationCore(rv64, machine, [probe])
        result = core.run()
        assert probe.count == result.instructions
        assert probe.mnemonics[-1] == "ecall"

    def test_memory_probe_gets_addresses(self, rv64):
        from repro.asm import assemble
        from repro.loader import load_program, program_to_image
        from repro.sim import Machine, Memory
        from repro.sim.emucore import EmulationCore

        class MemWatch:
            needs_memory = True

            def __init__(self):
                self.reads = []
                self.writes = []

            def on_retire(self, inst, reads, writes):
                self.reads.extend(reads)
                self.writes.extend(writes)

        prog = assemble("""
    .text
_start:
    la t0, buf
    li t1, 5
    sd t1, 0(t0)
    ld t2, 0(t0)
    li a7, 93
    li a0, 0
    ecall
    .data
buf:
    .dword 0
""", rv64)
        image = program_to_image(prog)
        memory = Memory()
        load_program(image, memory)
        machine = Machine("rv64", memory)
        machine.reset_stack()
        machine.pc = image.entry
        probe = MemWatch()
        EmulationCore(rv64, machine, [probe]).run()
        buf = image.symbol("buf")
        assert (buf, 8) in probe.writes
        assert (buf, 8) in probe.reads

    def test_isa_machine_mismatch(self, rv64):
        from repro.sim import Machine
        from repro.sim.emucore import EmulationCore
        with pytest.raises(SimulationError):
            EmulationCore(rv64, Machine("aarch64"))

    def test_undecodable_word_reports_pc(self, rv64):
        from repro.common import DecodeError
        with pytest.raises(DecodeError):
            run_asm("""
    .text
_start:
    .word 0xffffffff
""", rv64)
