"""Code-generation shape tests: the ISA/profile idioms the paper analyses.

These assert on the *assembly text*, checking that the compiled kernels
match the structures §3.3 of the paper documents (Listings 1 and 2, the
GCC 9.2 ``sub``/``subs`` bound idiom, register-offset vs pointer-bump
addressing, fused vs two-instruction conditional branches).
"""

import re

import pytest

from repro.compiler import compile_to_asm

COPY_SRC = """
global double a[6000];
global double c[6000];
func void copy() {
  region "copy" {
    for (long j = 0; j < 6000; j = j + 1) {
      c[j] = a[j];
    }
  }
}
func long main() { copy(); return 0; }
"""


def kernel_lines(asm_text: str, label_prefix: str = ".loop") -> list[str]:
    """Instructions between the innermost loop label and its backward branch."""
    lines = asm_text.splitlines()
    starts = [i for i, l in enumerate(lines)
              if re.fullmatch(r"\.loop\d+:", l.strip())]
    assert starts, "no loop label found"
    start = starts[-1]
    body = []
    for line in lines[start + 1:]:
        stripped = line.strip()
        if stripped.startswith(".loopend"):
            break
        if stripped and not stripped.endswith(":") and not stripped.startswith("."):
            body.append(stripped)
    return body


class TestStreamCopyShapes:
    def test_riscv_matches_listing2(self):
        """Listing 2: fld / fsd / add / add / bne — five instructions."""
        body = kernel_lines(compile_to_asm(COPY_SRC, "rv64", "gcc12"))
        mnemonics = [l.split()[0] for l in body]
        assert mnemonics == ["fld", "fsd", "addi", "addi", "bne"]

    def test_aarch64_gcc12_matches_listing1(self):
        """Listing 1: ldr / str / add / cmp / b.ne — five instructions."""
        body = kernel_lines(compile_to_asm(COPY_SRC, "aarch64", "gcc12"))
        mnemonics = [l.split()[0] for l in body]
        assert mnemonics == ["ldr", "str", "add", "cmp", "b.ne"]
        assert "lsl #3" in body[0] and "lsl #3" in body[1]

    def test_aarch64_gcc9_sub_subs_idiom(self):
        """§3.3: GCC 9.2 re-materializes a large constant bound with a
        sub/subs immediate pair — one extra instruction per iteration."""
        body = kernel_lines(compile_to_asm(COPY_SRC, "aarch64", "gcc9"))
        mnemonics = [l.split()[0] for l in body]
        assert mnemonics == ["ldr", "str", "add", "sub", "subs", "b.ne"]
        assert "lsl #12" in body[3]

    def test_riscv_profiles_identical_kernels(self):
        """'the main kernels remain the same for both RISC-V binaries'."""
        gcc9 = kernel_lines(compile_to_asm(COPY_SRC, "rv64", "gcc9"))
        gcc12 = kernel_lines(compile_to_asm(COPY_SRC, "rv64", "gcc12"))
        assert gcc9 == gcc12

    def test_small_bound_uses_cmp_imm_in_both_profiles(self):
        src = COPY_SRC.replace("6000", "100")
        for profile in ("gcc9", "gcc12"):
            body = kernel_lines(compile_to_asm(src, "aarch64", profile))
            assert any(l.startswith("cmp") and "#100" in l for l in body)


class TestAddressingStyles:
    AOS_SRC = """
global double rec[600];
global double out;
func long main() {
  double total = 0.0;
  for (long i = 0; i < 100; i = i + 1) {
    total = total + rec[i * 6 + 0] * rec[i * 6 + 5];
  }
  out = total;
  return 0;
}
"""

    def test_riscv_pointer_bump_for_records(self):
        body = kernel_lines(compile_to_asm(self.AOS_SRC, "rv64", "gcc12"))
        # one pointer bumped by the record stride (6*8 = 48 bytes)
        assert any(re.match(r"addi \S+, \S+, 48", l) for l in body)
        assert any(l.startswith("fld") and "40(" in l for l in body)

    def test_aarch64_pointer_bump_for_records(self):
        """Strided records use immediate-offset + bump on AArch64 too (the
        register-offset form cannot fold the field displacement)."""
        body = kernel_lines(compile_to_asm(self.AOS_SRC, "aarch64", "gcc12"))
        assert any(re.match(r"add \S+, \S+, #48", l) for l in body)
        assert any(l.startswith("ldr") and "#40]" in l for l in body)

    def test_unit_stride_differs_by_isa(self):
        rv_body = kernel_lines(compile_to_asm(COPY_SRC, "rv64", "gcc12"))
        arm_body = kernel_lines(compile_to_asm(COPY_SRC, "aarch64", "gcc12"))
        # RISC-V: two pointer bumps; AArch64: one index increment
        assert sum(1 for l in rv_body if l.startswith("addi")) == 2
        assert sum(1 for l in arm_body if l.startswith("add ")) == 1


class TestBranchLowering:
    BRANCHY = """
global long flags[100];
global long out;
func long main() {
  long hits = 0;
  for (long j = 0; j < 100; j = j + 1) {
    if (flags[j] == 3) { hits = hits + 1; }
  }
  out = hits;
  return 0;
}
"""

    def test_riscv_fused_compare_branch(self):
        body = kernel_lines(compile_to_asm(self.BRANCHY, "rv64", "gcc12"))
        text = "\n".join(body)
        assert "cmp" not in text            # no flags register on RISC-V
        assert any(l.startswith(("bne", "beq")) for l in body)

    def test_aarch64_needs_nzcv_setter(self):
        body = kernel_lines(compile_to_asm(self.BRANCHY, "aarch64", "gcc12"))
        cmps = [l for l in body if l.startswith("cmp")]
        conds = [l for l in body if l.startswith("b.")]
        # one cmp for the if, one for the loop exit; matching b.cond count
        assert len(cmps) == 2
        assert len(conds) == 2

    def test_riscv_body_shorter_for_branchy_code(self):
        rv = kernel_lines(compile_to_asm(self.BRANCHY, "rv64", "gcc12"))
        arm = kernel_lines(compile_to_asm(self.BRANCHY, "aarch64", "gcc12"))
        assert len(rv) < len(arm)


class TestPointerExitElimination:
    def test_iv_eliminated_when_unused(self):
        """Listing 2 has no induction counter at all: the exit test runs on
        a pointer against a precomputed end pointer."""
        asm = compile_to_asm(COPY_SRC, "rv64", "gcc12")
        body = kernel_lines(asm)
        # exactly 2 addis (two array pointers), none adding 1 (a counter)
        addis = [l for l in body if l.startswith("addi")]
        assert all(l.rstrip().endswith("8") for l in addis)

    def test_iv_kept_when_used_in_body(self):
        src = """
global double a[100];
func long main() {
  for (long j = 0; j < 100; j = j + 1) {
    a[j] = (double)(j);
  }
  return 0;
}
"""
        body = kernel_lines(compile_to_asm(src, "rv64", "gcc12"))
        assert any(re.match(r"addi (\S+), \1, 1$", l) for l in body)


class TestLoopInvariantHoisting:
    def test_global_scalar_hoisted(self):
        src = """
global double scalar = 3.0;
global double b[100];
global double c[100];
func long main() {
  for (long j = 0; j < 100; j = j + 1) {
    b[j] = scalar * c[j];
  }
  return 0;
}
"""
        body = kernel_lines(compile_to_asm(src, "rv64", "gcc12"))
        # the scalar load must not be inside the loop
        assert not any("scalar" in l for l in body)
        # fld, fmul, fsd, two pointer bumps, fused exit branch
        assert len(body) == 6
        assert not any(l.startswith("ld") for l in body)

    def test_fp_constant_hoisted(self):
        src = """
global double b[100];
func long main() {
  for (long j = 0; j < 100; j = j + 1) {
    b[j] = b[j] * 1.2345;
  }
  return 0;
}
"""
        body = kernel_lines(compile_to_asm(src, "rv64", "gcc12"))
        assert not any(".LC" in l for l in body)

    def test_invariant_index_arith_hoisted(self):
        src = """
global double g[100];
global long row = 3;
global double out;
func long main() {
  double total = 0.0;
  for (long j = 0; j < 10; j = j + 1) {
    total = total + g[row * 10 + j];
  }
  out = total;
  return 0;
}
"""
        body = kernel_lines(compile_to_asm(src, "rv64", "gcc12"))
        assert not any(l.startswith("mul") for l in body)


class TestLocalCse:
    CSE_SRC = """
global double s0[100];
global double s1[100];
global double s2[100];
global long idxs[100];
global double out;
func long main() {
  double total = 0.0;
  for (long j = 0; j < 10; j = j + 1) {
    long k = idxs[j];
    total = total + s0[k * 7 + 1] + s1[k * 7 + 1] + s2[k * 7 + 1];
  }
  out = total;
  return 0;
}
"""

    def count_index_muls(self, isa, profile):
        body = kernel_lines(compile_to_asm(self.CSE_SRC, isa, profile))
        return sum(1 for l in body if l.split()[0] in ("mul", "madd"))

    @pytest.mark.parametrize("isa", ["rv64", "aarch64"])
    def test_gcc12_shares_index_computation(self, isa):
        assert self.count_index_muls(isa, "gcc12") < self.count_index_muls(isa, "gcc9")

    def test_results_identical_between_profiles(self):
        from tests.conftest import compile_and_run
        values = set()
        for isa in ("rv64", "aarch64"):
            for profile in ("gcc9", "gcc12"):
                _r, machine, compiled = compile_and_run(self.CSE_SRC, isa, profile)
                values.add(machine.memory.load_f64(compiled.image.symbol("out")))
        assert len(values) == 1


class TestRegisterPressure:
    def test_many_locals_spill_correctly(self):
        """More locals than registers: results must still be exact."""
        decls = "\n".join(f"  long v{i} = {i + 1};" for i in range(40))
        total = " + ".join(f"v{i}" for i in range(40))
        src = f"""
global long out;
func long main() {{
{decls}
  out = {total};
  return 0;
}}
"""
        from tests.conftest import compile_and_run
        for isa in ("rv64", "aarch64"):
            _r, machine, compiled = compile_and_run(src, isa, "gcc12")
            got = machine.memory.load(compiled.image.symbol("out"), 8)
            assert got == sum(range(1, 41))

    def test_deep_expression(self):
        expr = "1"
        for i in range(2, 9):
            expr = f"({expr} + {i})"
        src = f"global long out; func long main() {{ out = {expr}; return 0; }}"
        from tests.conftest import compile_and_run
        for isa in ("rv64", "aarch64"):
            _r, machine, compiled = compile_and_run(src, isa, "gcc9")
            assert machine.memory.load(compiled.image.symbol("out"), 8) == 36
