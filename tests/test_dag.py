"""Tests for the explicit dependence DAG, cross-validating the CP probe."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import CriticalPathProbe
from repro.analysis.dag import DependenceDAGProbe
from repro.sim.config import load_core_model
from repro.workloads import run_workload
from repro.workloads.stream import Stream, StreamParams
from tests.test_analysis import fake_inst


class TestHandBuilt:
    def test_serial_chain(self):
        probe = DependenceDAGProbe()
        for _ in range(4):
            probe.on_retire(fake_inst(srcs=(1,), dsts=(1,)), (), ())
        assert probe.critical_path_length() == 4
        assert probe.critical_path_nodes() == [0, 1, 2, 3]

    def test_diamond(self):
        probe = DependenceDAGProbe()
        probe.on_retire(fake_inst(dsts=(1,)), (), ())
        probe.on_retire(fake_inst(srcs=(1,), dsts=(2,)), (), ())
        probe.on_retire(fake_inst(srcs=(1,), dsts=(3,)), (), ())
        probe.on_retire(fake_inst(srcs=(2, 3), dsts=(4,)), (), ())
        assert probe.critical_path_length() == 3
        graph = probe.to_networkx()
        assert graph.number_of_edges() == 4
        assert nx.is_directed_acyclic_graph(graph)

    def test_memory_edges(self):
        probe = DependenceDAGProbe()
        probe.on_retire(fake_inst(dsts=(1,)), (), ())
        probe.on_retire(fake_inst(srcs=(1,), is_store=True), (), [(64, 8)])
        probe.on_retire(fake_inst(dsts=(2,), is_load=True), [(64, 8)], ())
        assert probe.to_networkx().has_edge(1, 2)
        assert probe.critical_path_length() == 3

    def test_limit_stops_recording(self):
        probe = DependenceDAGProbe(limit=5)
        for _ in range(20):
            probe.on_retire(fake_inst(srcs=(1,), dsts=(1,)), (), ())
        assert probe.count == 5
        assert probe.critical_path_length() == 5

    def test_stats(self):
        probe = DependenceDAGProbe()
        for reg in (1, 2, 3):
            probe.on_retire(fake_inst(dsts=(reg,)), (), ())
        probe.on_retire(fake_inst(srcs=(1, 2, 3), dsts=(4,)), (), ())
        stats = probe.stats()
        assert stats.nodes == 4
        assert stats.critical_path == 2
        assert stats.width_histogram == {1: 3, 2: 1}
        assert stats.ilp == 2.0


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(
        st.lists(st.integers(min_value=1, max_value=6), max_size=3),
        st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=2),
    ),
    min_size=1, max_size=60,
))
def test_dag_matches_streaming_probe(trace):
    """The DAG's longest path must equal the streaming CP on any trace."""
    dag = DependenceDAGProbe()
    streaming = CriticalPathProbe()
    for srcs, dsts in trace:
        inst = fake_inst(srcs=srcs, dsts=dsts)
        dag.on_retire(inst, (), ())
        streaming.on_retire(inst, (), ())
    assert dag.critical_path_length() == streaming.result().critical_path


class TestOnRealProgram:
    def test_cross_validation_stream(self):
        dag = DependenceDAGProbe(limit=100_000)
        streaming = CriticalPathProbe()
        run_workload(Stream(StreamParams(n=64, ntimes=1)), "rv64", "gcc12",
                     [dag, streaming])
        assert dag.count == streaming.instructions
        assert dag.critical_path_length() == streaming.result().critical_path

    def test_weighted_cross_validation(self):
        model = load_core_model("tx2-riscv")
        dag = DependenceDAGProbe(limit=100_000, model=model)
        streaming = CriticalPathProbe(model)
        run_workload(Stream(StreamParams(n=64, ntimes=1)), "rv64", "gcc12",
                     [dag, streaming])
        assert dag.critical_path_length() == streaming.result().critical_path

    def test_critical_nodes_form_a_chain(self):
        dag = DependenceDAGProbe(limit=100_000)
        run_workload(Stream(StreamParams(n=32, ntimes=1)), "aarch64", "gcc12",
                     [dag])
        chain = dag.critical_path_nodes()
        graph = dag.to_networkx()
        weights = sum(graph.nodes[n]["weight"] for n in chain)
        assert weights == dag.critical_path_length()
        for a, b in zip(chain, chain[1:]):
            assert graph.has_edge(a, b)

    def test_dag_is_acyclic_and_forward(self):
        dag = DependenceDAGProbe(limit=100_000)
        run_workload(Stream(StreamParams(n=16, ntimes=1)), "rv64", "gcc9",
                     [dag])
        graph = dag.to_networkx()
        assert nx.is_directed_acyclic_graph(graph)
        assert all(a < b for a, b in graph.edges)
