"""Decoder robustness: arbitrary 32-bit words must either decode cleanly or
raise DecodeError — never crash, never produce malformed metadata."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import DecodeError
from repro.isa.base import DEP_NZCV, InstructionGroup

words = st.integers(min_value=0, max_value=0xFFFFFFFF)


def check_decoded(inst, isa_name):
    assert isinstance(inst.mnemonic, str) and inst.mnemonic
    assert isinstance(inst.text, str) and inst.text
    assert isinstance(inst.group, InstructionGroup)
    for dep in inst.srcs + inst.dsts:
        assert 0 <= dep <= DEP_NZCV
        if isa_name == "rv64":
            assert dep != 0 or True  # x0 never appears
            assert dep != DEP_NZCV   # no flags register on RISC-V
    assert callable(inst.execute)
    if inst.is_load or inst.is_store:
        assert inst.group in (
            InstructionGroup.LOAD, InstructionGroup.STORE,
            InstructionGroup.ATOMIC,
        )


@settings(max_examples=3000, deadline=None)
@given(words)
def test_rv64_decode_never_crashes(rv64, word):
    try:
        inst = rv64.decode(word, 0x10000)
    except DecodeError:
        return
    check_decoded(inst, "rv64")


@settings(max_examples=3000, deadline=None)
@given(words)
def test_aarch64_decode_never_crashes(aarch64, word):
    try:
        inst = aarch64.decode(word, 0x10000)
    except DecodeError:
        return
    check_decoded(inst, "aarch64")


@settings(max_examples=500, deadline=None)
@given(words)
def test_decode_is_deterministic(rv64, aarch64, word):
    for isa in (rv64, aarch64):
        try:
            first = isa.decode(word, 0x2000)
        except DecodeError:
            with pytest.raises(DecodeError):
                isa.decode(word, 0x2000)
            continue
        second = isa.decode(word, 0x2000)
        assert first.text == second.text
        assert first.srcs == second.srcs
        assert first.dsts == second.dsts
        assert first.group == second.group


def test_riscv_never_reports_nzcv(rv64):
    """Spot-check dense opcode space: RISC-V has no flags register."""
    from repro.common import DecodeError
    hits = 0
    for word in range(0, 1 << 16):
        try:
            inst = rv64.decode((word << 16) | 0x00B3, 0)  # add-family ops
        except DecodeError:
            continue
        hits += 1
        assert DEP_NZCV not in inst.srcs
        assert DEP_NZCV not in inst.dsts
    assert hits > 0
