"""Serve daemon tests: admission control, coalescing, quotas, deadline
shedding, SSE slow-client protection, journal-backed crash recovery,
graceful drain, and the SIGKILL chaos flow (kill mid-suite, restart,
byte-identical artifacts, zero re-execution of journaled plans).

Most tests drive :class:`ServeApp` in-process (``submit()`` +
dispatcher thread, no sockets) so admission races are deterministic;
the HTTP/SSE/chaos tests run the real front end.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.common.errors import ExperimentError
from repro.harness import faults
from repro.harness.cache import ResultCache
from repro.harness.experiments import run_suite
from repro.harness.faults import FaultPlan, FaultSpec
from repro.serve.app import (
    ServeApp,
    canonical_params,
    render_suite_artifacts,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.journal import JobJournal, unfinished_jobs
from repro.serve.queue import Job, JobQueue, QueueFullError, \
    params_fingerprint
from repro.serve.quotas import QuotaExceededError, Quotas

#: The tiny real suite the integration tests execute: 4 configs,
#: no windowed analysis, deterministic artifacts.
PARAMS = {"scale": 0.02, "workloads": ["stream"], "windowed": False}


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    """One result cache for the whole module: the first test to execute
    the 4-plan suite pays for the simulation, every later test hits."""
    return tmp_path_factory.mktemp("serve-cache")


@pytest.fixture
def make_app(shared_cache):
    """ServeApp factory (shared cache unless ``cache_dir`` is given),
    with teardown that stops dispatchers and retires worker pools."""
    apps = []

    def _make(cache_dir=None, **kw):
        kw.setdefault("jobs", 1)
        app = ServeApp(cache_dir if cache_dir is not None
                       else shared_cache, **kw)
        apps.append(app)
        return app

    yield _make
    for app in apps:
        app._stop.set()
        if app._dispatcher is not None:
            app._dispatcher.join(30)
        app.executor.close()


def wait_done(job, timeout=180.0):
    assert job.done_event.wait(timeout), f"job {job.id} never finished"
    return job


def submitted_job(app, status_body):
    status, body, _headers = status_body
    assert status in (200, 202), body
    return app.jobs[body["job"]]


# -------------------------------------------------------- params / queue

class TestCanonicalParams:
    def test_defaults_applied_and_stable(self):
        a = canonical_params({"scale": 0.5})
        b = canonical_params({"scale": 0.5, "windowed": True})
        assert a == b
        assert params_fingerprint(a) == params_fingerprint(b)
        assert a["window_sizes"]  # paper defaults filled in

    def test_unknown_key_rejected(self):
        with pytest.raises(ExperimentError, match="unknown params key"):
            canonical_params({"scale": 1, "wrkloads": ["stream"]})

    def test_unknown_workload_rejected(self):
        with pytest.raises(ExperimentError, match="unknown workload"):
            canonical_params({"workloads": ["mcb"]})

    def test_bad_values_rejected(self):
        with pytest.raises(ExperimentError):
            canonical_params({"scale": 0})
        with pytest.raises(ExperimentError):
            canonical_params({"scale": "not-a-number"})
        with pytest.raises(ExperimentError):
            canonical_params({"shards": -1})
        with pytest.raises(ExperimentError):
            canonical_params([1, 2])

    def test_workloads_case_folded(self):
        params = canonical_params({"workloads": ["Stream", "LBM"]})
        assert tuple(params["workloads"]) == ("stream", "lbm")


class TestJobQueue:
    def _job(self, ident, priority=5, scale=0.5):
        return Job(id=ident, priority=priority,
                   params=canonical_params({"scale": scale}))

    def test_priority_then_fifo(self):
        q = JobQueue(8)
        q.push(self._job("a", priority=5, scale=0.1))
        q.push(self._job("b", priority=1, scale=0.2))
        q.push(self._job("c", priority=5, scale=0.3))
        assert [q.pop(0.1).id for _ in range(3)] == ["b", "a", "c"]
        assert q.pop(0.01) is None

    def test_bounded_with_retry_after(self):
        q = JobQueue(2)
        q.push(self._job("a", scale=0.1))
        q.push(self._job("b", scale=0.2))
        with pytest.raises(QueueFullError) as exc:
            q.push(self._job("c", scale=0.3))
        assert exc.value.retry_after >= 1

    def test_coalesce_until_finished(self):
        q = JobQueue(8)
        job = self._job("a", scale=0.1)
        q.push(job)
        assert q.coalesce(canonical_params({"scale": 0.1})) is job
        popped = q.pop(0.1)          # running: still coalescable
        assert q.coalesce(job.params) is popped
        q.job_finished(job, 1.0)
        assert q.coalesce(job.params) is None

    def test_retry_after_tracks_job_seconds(self):
        q = JobQueue(2)
        for _ in range(12):
            q.job_finished(self._job("x", scale=0.9), 200.0)
        assert q.retry_after() >= 50


class TestQuotas:
    def test_limit_enforced_and_released(self):
        quotas = Quotas(2)
        quotas.acquire("t")
        quotas.acquire("t")
        with pytest.raises(QuotaExceededError):
            quotas.acquire("t")
        quotas.acquire("other")  # independent per client
        quotas.release("t")
        quotas.acquire("t")
        assert quotas.snapshot() == {"t": 2, "other": 1}

    def test_forced_acquire_exceeds_limit(self):
        quotas = Quotas(1)
        quotas.acquire("t")
        quotas.acquire_forced("t")  # recovery path
        assert quotas.outstanding("t") == 2
        quotas.release("t")
        quotas.release("t")
        quotas.release("t")  # idempotent at the floor
        assert quotas.outstanding("t") == 0

    def test_zero_limit_disables(self):
        quotas = Quotas(0)
        for _ in range(50):
            quotas.acquire("t")
        assert quotas.outstanding("t") == 50


# ---------------------------------------------------- in-process daemon

class TestAdmission:
    """Admission-control paths, with no dispatcher draining the queue
    (``_running`` forced on) so queue occupancy is deterministic."""

    def test_quota_429_with_retry_after(self, make_app):
        app = make_app(client_quota=1, queue_limit=8)
        app._running = True
        status, _body, _h = app.submit(
            {"params": {"scale": 0.1}, "client": "t"})
        assert status == 202
        status, body, headers = app.submit(
            {"params": {"scale": 0.2}, "client": "t"})
        assert status == 429
        assert "outstanding" in body["error"]
        assert int(headers["Retry-After"]) >= 1

    def test_queue_full_429_while_inflight_completes(self, make_app):
        app = make_app(queue_limit=1, client_quota=0)
        app._running = True
        first = submitted_job(app, app.submit({"params": PARAMS}))
        status, body, headers = app.submit({"params": {"scale": 0.2}})
        assert status == 429
        assert "queue is full" in body["error"]
        assert int(headers["Retry-After"]) >= 1
        # shedding did not hurt the admitted job: it runs to completion
        app.start_dispatcher()
        assert wait_done(first).state == "done"
        assert sorted(first.artifacts) == [
            "basicCPResult.txt", "kernelCounts.txt", "scaledCPResult.txt"]

    def test_identical_submissions_coalesce(self, make_app):
        app = make_app(queue_limit=8)
        app._running = True
        status, body, _h = app.submit({"params": PARAMS, "client": "a"})
        assert status == 202
        # same canonical params (defaults spelled out) from another
        # client ride the same job — no second execution, no quota charge
        spelled = dict(PARAMS, translate=True)
        status, dup, _h = app.submit({"params": spelled, "client": "b"})
        assert status == 200
        assert dup["coalesced"] is True
        assert dup["job"] == body["job"]
        assert app.quotas.outstanding("b") == 0

    def test_bad_submissions_400(self, make_app):
        app = make_app()
        app._running = True
        assert app.submit({"params": {"bogus": 1}})[0] == 400
        assert app.submit({"params": PARAMS, "priority": "x"})[0] == 400
        assert app.submit({"params": PARAMS, "timeout": -5})[0] == 400

    def test_draining_rejects_503(self, make_app):
        app = make_app()
        app._running = True
        app.request_drain()
        status, body, _h = app.submit({"params": PARAMS})
        assert status == 503
        assert "draining" in body["error"]

    def test_injected_admission_race_sheds_429(self, make_app):
        faults.install(FaultPlan([FaultSpec(site="serve",
                                            kind="transient", at=(1,))]))
        app = make_app(queue_limit=8)
        app._running = True
        status, body, headers = app.submit({"params": PARAMS})
        assert status == 429
        assert "admission race" in body["error"]
        assert int(headers["Retry-After"]) >= 1
        assert app.quotas.outstanding("") == 0  # charge rolled back
        # the race was transient: the retry is admitted and runs
        job = submitted_job(app, app.submit({"params": PARAMS}))
        app.start_dispatcher()
        assert wait_done(job).state == "done"


class TestExecution:
    def test_artifacts_byte_identical_to_run_suite(self, make_app,
                                                   shared_cache):
        app = make_app()
        app._running = True
        job = submitted_job(app, app.submit({"params": PARAMS}))
        app.start_dispatcher()
        assert wait_done(job).state == "done"
        assert job.summary["plans"] == 4
        assert job.summary["journaled_done"] == 4

        suite = run_suite(0.02, workloads=("stream",), windowed=False,
                          jobs=1, cache=ResultCache(shared_cache))
        expected = render_suite_artifacts(suite, windowed=False)
        assert sorted(job.artifacts) == sorted(expected)
        for name, path in job.artifacts.items():
            with open(path, "rb") as fh:
                assert fh.read() == expected[name].encode("utf-8"), name
        # the job's journal is finished: nothing to recover
        assert unfinished_jobs(shared_cache) == []

    def test_expired_deadline_shed_before_dispatch(self, make_app):
        app = make_app()
        app._running = True
        job = submitted_job(
            app, app.submit({"params": PARAMS, "timeout": 0.05}))
        time.sleep(0.2)
        app.start_dispatcher()
        assert wait_done(job).state == "shed"
        assert "deadline expired" in job.error

    def test_deadline_propagates_to_executor_timeout(self, make_app,
                                                     monkeypatch,
                                                     tmp_path):
        # own cache: the failed job's journal stays unfinished by design
        app = make_app(cache_dir=tmp_path / "cache")
        app._running = True
        seen = {}

        def fake_run(plans):
            seen["timeout"] = app.executor.timeout
            raise ExperimentError("stop here")

        monkeypatch.setattr(app.executor, "run", fake_run)
        job = submitted_job(
            app, app.submit({"params": PARAMS, "timeout": 120.0}))
        app.start_dispatcher()
        assert wait_done(job).state == "failed"
        assert 100.0 < seen["timeout"] <= 120.0


class TestRecovery:
    def test_crash_after_journal_recovers_and_matches(self, make_app,
                                                      tmp_path):
        cache_dir = tmp_path / "cache"
        # the chaos window: the fault fires between the journal append
        # and executor dispatch — exactly where a crash loses the most
        faults.install(FaultPlan([FaultSpec(site="serve", kind="error",
                                            at=(1,))]))
        app = make_app(cache_dir=cache_dir, queue_limit=8)
        app._running = True
        job = submitted_job(
            app, app.submit({"params": PARAMS, "client": "chaos",
                             "priority": 2}))
        app.start_dispatcher()
        assert wait_done(job).state == "failed"
        assert "injected" in job.error
        faults.uninstall()
        assert unfinished_jobs(cache_dir) == [job.id]

        # stop the first daemon's machinery before starting the second
        app._stop.set()
        app._dispatcher.join(30)
        app.executor.close()

        second = make_app(cache_dir=cache_dir, queue_limit=8)
        second._running = True
        assert second.recover() == [job.id]
        revived = second.jobs[job.id]
        assert revived.recovered
        assert revived.client == "chaos"
        assert revived.priority == 2
        assert second.quotas.outstanding("chaos") == 1
        second.start_dispatcher()
        assert wait_done(revived).state == "done"
        assert unfinished_jobs(cache_dir) == []

        suite = run_suite(0.02, workloads=("stream",), windowed=False,
                          jobs=1, cache=ResultCache(cache_dir))
        expected = render_suite_artifacts(suite, windowed=False)
        for name, path in revived.artifacts.items():
            with open(path, "rb") as fh:
                assert fh.read() == expected[name].encode("utf-8"), name

    def test_drain_with_queued_jobs_recovers_on_restart(self, make_app,
                                                        tmp_path):
        """A drain with jobs still queued loses nothing: the 202 was
        already durable (journal written at admission), so the queued —
        never dispatched — jobs survive as unfinished journals and the
        next start recovers and runs them."""
        cache_dir = tmp_path / "cache"
        app = make_app(cache_dir=cache_dir, queue_limit=8)
        app._running = True   # admitting; the dispatcher never starts
        queued = [
            submitted_job(app, app.submit(
                {"params": dict(PARAMS, scale=scale),
                 "client": "drainee"}))
            for scale in (0.02, 0.04)
        ]
        # admission-time durability: journal headers exist while the
        # jobs are still queued, before any dispatch
        assert sorted(unfinished_jobs(cache_dir)) == sorted(
            job.id for job in queued)

        app.request_drain()   # the POST /drain / SIGTERM path
        status, body, headers = app.submit({"params": PARAMS})
        assert status == 503, body
        assert int(headers["Retry-After"]) >= 1   # backoff hint surfaced

        second = make_app(cache_dir=cache_dir, queue_limit=8)
        second._running = True
        assert sorted(second.recover()) == sorted(j.id for j in queued)
        second.start_dispatcher()
        for job in queued:
            revived = second.jobs[job.id]
            assert revived.recovered
            assert wait_done(revived).state == "done"
        assert unfinished_jobs(cache_dir) == []

    def test_recovery_stops_at_full_queue(self, make_app, tmp_path):
        cache_dir = tmp_path / "cache"
        for scale in (0.11, 0.12, 0.13):
            JobJournal.create(
                cache_dir, canonical_params({"scale": scale}), total=4,
                run_id=f"j-crashed-{scale}",
                extra={"client": "c", "priority": 5}).close()
        app = make_app(cache_dir=cache_dir, queue_limit=2, client_quota=1)
        recovered = app.recover()
        assert len(recovered) == 2  # queue_limit bounds the re-enqueue
        # forced acquire ignores the quota: admitted-once jobs re-enter
        assert app.quotas.outstanding("c") == 2
        # the rest stays journaled for a later start
        assert len(unfinished_jobs(cache_dir)) == 3

    def test_torn_job_journal_line_tolerated(self, tmp_path):
        # occurrence 3 = the final record_done: the crash tears the last
        # append mid-write, exactly what a power cut leaves behind
        faults.install(FaultPlan([FaultSpec(site="serve",
                                            kind="truncate", at=(3,))]))
        journal = JobJournal.create(
            tmp_path, canonical_params({"scale": 0.1}), total=2,
            run_id="j-torn", extra={"client": "c", "priority": 5})
        journal.record_done("a" * 64)
        journal.record_done("b" * 64)   # this append is torn
        journal.close()
        faults.uninstall()
        loaded = JobJournal.load(tmp_path, "j-torn")
        assert loaded.done == {"a" * 64}   # torn line skipped, not fatal
        assert loaded.header["client"] == "c"
        assert unfinished_jobs(tmp_path) == ["j-torn"]


# ------------------------------------------------------------ HTTP + SSE

class TestHttp:
    @pytest.fixture
    def served(self, make_app):
        app = make_app(queue_limit=8, client_quota=0, drain_grace=5.0)
        host, port = app.start_background()
        yield app, ServeClient(host, port)
        app.stop_background()

    def test_round_trip(self, served, shared_cache):
        app, client = served
        assert client.healthz()["ok"] is True
        assert client.ready() is True

        doc = client.submit(PARAMS, client="http-test")
        job = client.wait(doc["job"])
        assert job["state"] == "done"

        names = client.artifacts(doc["job"])
        assert "kernelCounts.txt" in names
        suite = run_suite(0.02, workloads=("stream",), windowed=False,
                          jobs=1, cache=ResultCache(shared_cache))
        expected = render_suite_artifacts(suite, windowed=False)
        for name in names:
            assert client.artifact(doc["job"], name) == expected[name]

        stats = client.stats()
        assert stats["jobs"].get("done") == 1
        assert (stats["timing"]["executed"]
                + stats["timing"]["cache_hits"]) == 4

    def test_errors_and_unknowns(self, served):
        _app, client = served
        with pytest.raises(ServeError) as exc:
            client.submit({"scale": -1})
        assert exc.value.status == 400
        with pytest.raises(ServeError) as exc:
            client.job("j-nope")
        assert exc.value.status == 404
        with pytest.raises(ServeError) as exc:
            client.artifact("j-nope", "kernelCounts.txt")
        assert exc.value.status == 404
        status, _headers, _payload = client._request("GET", "/no-such")
        assert status == 404

    def test_sse_stream_delivers_job_events(self, served):
        app, client = served
        events = []
        done = threading.Event()

        def consume():
            for doc in client.events(time_budget=60.0):
                events.append(doc)
                if (doc.get("event") == "JobUpdate"
                        and doc.get("state") == "done"):
                    break
            done.set()

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        time.sleep(0.2)  # let the stream attach before events flow
        doc = client.submit(PARAMS, client="sse")
        client.wait(doc["job"])
        assert done.wait(60.0), "SSE consumer never saw the job finish"
        kinds = {e.get("event") for e in events}
        assert "JobUpdate" in kinds
        assert any(e.get("job") == doc["job"] for e in events)

    def test_slow_sse_client_disconnected_not_blocking(self, make_app):
        app = make_app(queue_limit=8, client_quota=0, sse_queue=2,
                       drain_grace=5.0)
        host, port = app.start_background()
        try:
            # the injected stalled client: its writer sleeps instead of
            # draining, so its 2-slot queue must overflow
            faults.install(FaultPlan([FaultSpec(site="serve",
                                                kind="hang",
                                                seconds=8.0)]))
            client = ServeClient(host, port)
            stalled = threading.Thread(
                target=lambda: list(client.events(time_budget=30.0)),
                daemon=True)
            stalled.start()
            time.sleep(0.2)
            faults.uninstall()  # only the one stream stalls

            doc = client.submit(PARAMS, client="fast")
            job = client.wait(doc["job"])
            assert job["state"] == "done"  # executor never blocked
            deadline = time.monotonic() + 30.0
            while (app.broker.disconnected_slow == 0
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert app.broker.disconnected_slow >= 1
            assert client.stats()["sse_disconnected_slow"] >= 1
            stalled.join(30.0)
            assert not stalled.is_alive()
        finally:
            app.stop_background()

    def test_drain_via_http(self, served):
        app, client = served
        doc = client.submit(PARAMS, client="drain-test")
        assert client.drain()["draining"] is True
        assert client.ready() is False
        with pytest.raises(ServeError) as exc:
            client.submit({"scale": 0.9})
        assert exc.value.status == 503
        # the in-flight job still completes within the grace period
        app._bg.join(60.0)
        assert not app._bg.is_alive()
        job = app.jobs[doc["job"]]
        assert job.state == "done"
        assert unfinished_jobs(app.cache.root) == []


# ------------------------------------------------------------ chaos kill

class TestChaosKill:
    """The headline acceptance test: SIGKILL the real daemon process
    mid-suite, restart it on the same cache, and the recovered job must
    produce byte-identical artifacts with zero re-execution of plans
    already journaled as finished."""

    def _start(self, cache_dir, ready_file):
        import repro
        from pathlib import Path

        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ, REPRO_ISA_CACHE_DIR=str(cache_dir))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.harness.cli", "serve",
             "--port", "0", "--jobs", "1", "--queue-limit", "8",
             "--ready-file", str(ready_file), "--quiet"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        deadline = time.monotonic() + 60.0
        while not ready_file.exists():
            if proc.poll() is not None:
                raise AssertionError(
                    "daemon died at startup: "
                    + proc.stderr.read().decode("utf-8", "replace"))
            if time.monotonic() > deadline:
                proc.kill()
                raise AssertionError("daemon never wrote the ready file")
            time.sleep(0.05)
        info = json.loads(ready_file.read_text())
        return proc, info

    def test_sigkill_restart_byte_identical_no_rerun(self, tmp_path):
        cache_dir = tmp_path / "cache"
        proc, info = self._start(cache_dir, tmp_path / "ready1.json")
        client = ServeClient(info["host"], info["port"])
        try:
            doc = client.submit(PARAMS, client="chaos")
            job_id = doc["job"]
            # wait for at least one plan to be journaled done, then
            # SIGKILL with the suite still in flight
            deadline = time.monotonic() + 120.0
            journaled = 0
            while time.monotonic() < deadline:
                try:
                    journal = JobJournal.load(cache_dir, job_id)
                except ExperimentError:
                    time.sleep(0.02)
                    continue
                journaled = len(journal.done)
                if journal.finished or journaled >= 1:
                    break
                time.sleep(0.02)
            assert journaled >= 1, "no plan finished within 120s"
        finally:
            proc.kill()
            proc.wait(30)
        assert not JobJournal.load(cache_dir, job_id).finished, \
            "suite finished before the kill; nothing was tested"
        assert unfinished_jobs(cache_dir) == [job_id]

        proc, info = self._start(cache_dir, tmp_path / "ready2.json")
        try:
            assert info["recovered"] == [job_id]
            client = ServeClient(info["host"], info["port"])
            job = client.wait(job_id, timeout=180.0)
            assert job["state"] == "done"
            assert job["recovered"] is True

            # zero re-execution: every plan journaled before the kill is
            # a cache hit on the restarted daemon
            stats = client.stats()
            assert stats["timing"]["cache_hits"] >= journaled
            assert (stats["timing"]["executed"]
                    + stats["timing"]["cache_hits"]) == 4

            suite = run_suite(0.02, workloads=("stream",), windowed=False,
                              jobs=1, cache=ResultCache(cache_dir))
            expected = render_suite_artifacts(suite, windowed=False)
            for name in client.artifacts(job_id):
                assert client.artifact(job_id, name) == expected[name], name

            client.drain()
        finally:
            if proc.poll() is None:
                try:
                    proc.wait(60)
                except subprocess.TimeoutExpired:
                    proc.send_signal(signal.SIGKILL)
                    proc.wait(30)
        assert unfinished_jobs(cache_dir) == []
