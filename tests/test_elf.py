"""Tests for the static-ELF64 writer/reader round trip."""

import pytest

from repro.asm import assemble
from repro.common import LoaderError
from repro.loader import (
    EM_AARCH64,
    EM_RISCV,
    build_elf,
    load_elf,
    program_to_image,
)

SRC = """
    .text
    .global _start
_start:
    nop
    .region kern
    nop
    .endregion
    .data
value:
    .dword 0x1122334455667788
"""


@pytest.fixture(scope="module")
def rv_prog(rv64=None):
    from repro.isa import get_isa
    return assemble(SRC, get_isa("rv64"))


class TestWriter:
    def test_magic_and_class(self, rv_prog):
        blob = build_elf(rv_prog)
        assert blob[:4] == b"\x7fELF"
        assert blob[4] == 2       # ELFCLASS64
        assert blob[5] == 1       # little-endian

    def test_machine_ids(self, rv64, aarch64):
        rv = assemble(SRC, rv64)
        assert load_elf(build_elf(rv)).isa_name == "rv64"
        arm_src = SRC.replace("nop", "nop")
        arm = assemble(arm_src, aarch64)
        assert load_elf(build_elf(arm)).isa_name == "aarch64"

    def test_machine_field_values(self, rv_prog):
        import struct
        blob = build_elf(rv_prog)
        machine = struct.unpack_from("<H", blob, 18)[0]
        assert machine == EM_RISCV
        assert EM_AARCH64 == 183


class TestRoundTrip:
    def test_entry_preserved(self, rv_prog):
        image = load_elf(build_elf(rv_prog))
        assert image.entry == rv_prog.entry

    def test_symbols_preserved(self, rv_prog):
        image = load_elf(build_elf(rv_prog))
        for name, addr in rv_prog.symbols.items():
            assert image.symbols[name] == addr

    def test_regions_preserved(self, rv_prog):
        image = load_elf(build_elf(rv_prog))
        assert len(image.regions) == 1
        assert image.regions[0].name == "kern"
        assert image.regions[0] == rv_prog.regions[0]

    def test_segment_contents(self, rv_prog):
        image = load_elf(build_elf(rv_prog))
        segs = {vaddr: data for vaddr, data, _fl in image.segments}
        text = rv_prog.sections[".text"]
        data = rv_prog.sections[".data"]
        assert segs[text.addr] == bytes(text.data)
        assert segs[data.addr] == bytes(data.data)

    def test_loads_into_memory(self, rv_prog):
        from repro.loader import load_program
        from repro.sim import Memory
        image = program_to_image(rv_prog)
        memory = Memory()
        load_program(image, memory)
        assert memory.load(image.symbol("value"), 8) == 0x1122334455667788

    def test_double_roundtrip_stable(self, rv_prog):
        blob = build_elf(rv_prog)
        image1 = load_elf(blob)
        image2 = load_elf(blob)
        assert image1.symbols == image2.symbols
        assert image1.segments == image2.segments


class TestReaderErrors:
    def test_not_elf(self):
        with pytest.raises(LoaderError):
            load_elf(b"not an elf at all, nope")

    def test_truncated(self, rv_prog):
        with pytest.raises(LoaderError):
            load_elf(build_elf(rv_prog)[:10])

    def test_wrong_endianness_rejected(self, rv_prog):
        blob = bytearray(build_elf(rv_prog))
        blob[5] = 2  # big-endian
        with pytest.raises(LoaderError):
            load_elf(bytes(blob))

    def test_unknown_machine_rejected(self, rv_prog):
        blob = bytearray(build_elf(rv_prog))
        blob[18] = 0x03  # EM_386
        with pytest.raises(LoaderError):
            load_elf(bytes(blob))

    def test_missing_symbol_lookup(self, rv_prog):
        image = load_elf(build_elf(rv_prog))
        with pytest.raises(LoaderError):
            image.symbol("does_not_exist")


class TestReaderHardening:
    """Malformed input must always surface as LoaderError: the reader is
    fed fuzzer reproducers and cache artifacts, so no struct.error,
    IndexError, or UnicodeDecodeError may escape, and no crafted header
    may trigger a huge allocation."""

    def test_every_truncation_is_loader_error(self, rv_prog):
        blob = build_elf(rv_prog)
        for cut in range(len(blob)):
            try:
                load_elf(blob[:cut])
            except LoaderError:
                pass

    def test_seeded_mutations_never_leak_exceptions(self, rv_prog):
        import random

        blob = build_elf(rv_prog)
        rng = random.Random(1234)
        for _ in range(400):
            mutant = bytearray(blob)
            for _ in range(rng.randint(1, 8)):
                mutant[rng.randrange(len(mutant))] ^= 1 << rng.randrange(8)
            try:
                load_elf(bytes(mutant))
            except LoaderError:
                pass

    def test_huge_memsz_rejected_without_allocating(self, rv_prog):
        import struct as _struct

        blob = bytearray(build_elf(rv_prog))
        # patch p_memsz of the first program header to 1 TiB
        phoff = 64
        memsz_off = phoff + 4 + 4 + 8 + 8 + 8 + 8
        _struct.pack_into("<Q", blob, memsz_off, 1 << 40)
        with pytest.raises(LoaderError, match="implausibly large"):
            load_elf(bytes(blob))

    def test_out_of_range_symtab_link_rejected(self, rv_prog):
        import struct as _struct

        blob = bytearray(build_elf(rv_prog))
        (shoff,) = _struct.unpack_from("<Q", blob, 40)
        (shnum,) = _struct.unpack_from("<H", blob, 60)
        shentsize = 64
        for i in range(shnum):
            base = shoff + i * shentsize
            (stype,) = _struct.unpack_from("<I", blob, base + 4)
            if stype == 2:  # SHT_SYMTAB
                _struct.pack_into("<I", blob, base + 40, 0xFFFF)  # sh_link
                break
        with pytest.raises(LoaderError):
            load_elf(bytes(blob))
