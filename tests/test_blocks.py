"""Tests for the basic-block translation engine (:mod:`repro.sim.blocks`).

The translated fast path must be observationally identical to the
per-instruction interpreter (its differential oracle): same retirement
counts, exit codes, I/O, and final machine state. These tests cover the
block-cache corner cases — branches into the middle of an
already-translated block, single-instruction self-loops, syscalls and
exits mid-block — plus the budget-boundary semantics and the harness
plumbing (plan field, events, CLI flag).
"""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.common import SimulationError
from repro.loader import load_program, program_to_image
from repro.sim import EmulationCore, Machine, Memory, run_image
from tests.conftest import RV_EXIT


def _image(source, isa):
    return program_to_image(assemble(source, isa))


def _run_both(source, isa, max_instructions=2_000_000):
    """Run translated and interpreted; assert identical observables.

    Returns the translated (result, machine) pair for extra assertions.
    """
    image = _image(source, isa)
    t_res, t_m = run_image(image, isa, max_instructions=max_instructions,
                           translate=True)
    i_res, i_m = run_image(image, isa, max_instructions=max_instructions,
                           translate=False)
    assert t_res.instructions == i_res.instructions
    assert t_res.exit_code == i_res.exit_code
    assert t_res.stdout == i_res.stdout
    assert t_res.stderr == i_res.stderr
    assert list(t_m.r) == list(i_m.r)
    assert list(t_m.f) == list(i_m.f)
    assert t_m.instret == i_m.instret
    assert t_res.translation is not None
    assert i_res.translation is None
    return t_res, t_m


class _CountingProbe:
    needs_memory = False

    def __init__(self):
        self.count = 0

    def on_retire(self, inst, reads, writes):
        self.count += 1


class _CollectSink:
    """Batch sink flattening batches to a boundary-insensitive stream."""

    needs_memory = True

    def __init__(self):
        self.names = []
        self.reads = []
        self.writes = []

    def on_batch(self, table, count, indices, read_ends, write_ends,
                 reads, writes):
        r0 = w0 = 0
        for i in range(count):
            self.names.append(table[indices[i]].mnemonic)
            r1, w1 = read_ends[i], write_ends[i]
            self.reads.append(tuple(reads[r0:r1]))
            self.writes.append(tuple(writes[w0:w1]))
            r0, w0 = r1, w1


_EXIT3 = """
    .text
_start:
    li a0, 7
    li a7, 93
    ecall
"""


class TestBudgetBoundary:
    """A clean exit on exactly the last budgeted instruction is a normal
    completion, on every execution path; one instruction less raises."""

    def test_translated_exact_budget(self, rv64):
        result, _m = run_image(_image(_EXIT3, rv64), rv64,
                               max_instructions=3, translate=True)
        assert result.exit_code == 7
        assert result.instructions == 3

    def test_interpreter_exact_budget(self, rv64):
        result, _m = run_image(_image(_EXIT3, rv64), rv64,
                               max_instructions=3, translate=False)
        assert result.exit_code == 7
        assert result.instructions == 3

    def test_probe_path_exact_budget(self, rv64):
        probe = _CountingProbe()
        result, _m = run_image(_image(_EXIT3, rv64), rv64, [probe],
                               max_instructions=3)
        assert result.exit_code == 7
        assert probe.count == 3

    @pytest.mark.parametrize("translate", [True, False])
    def test_batched_exact_budget(self, rv64, translate):
        sink = _CollectSink()
        result, _m = run_image(_image(_EXIT3, rv64), rv64,
                               batch_sinks=[sink], max_instructions=3,
                               translate=translate)
        assert result.exit_code == 7
        assert len(sink.names) == 3

    @pytest.mark.parametrize("translate", [True, False])
    def test_exhaustion_still_raises(self, rv64, translate):
        with pytest.raises(SimulationError):
            run_image(_image(_EXIT3, rv64), rv64, max_instructions=2,
                      translate=translate)

    @pytest.mark.parametrize("translate", [True, False])
    def test_exhaustion_retires_exact_budget(self, rv64, translate):
        # an infinite single-instruction self-loop: the translator must
        # never overshoot the budget even inside an in-function loop
        image = _image("""
    .text
_start:
    li t0, 1
loop:
    bnez t0, loop
""", rv64)
        memory = Memory(1 << 20)
        load_program(image, memory)
        machine = Machine(rv64.name, memory)
        machine.reset_stack()
        machine.pc = image.entry
        core = EmulationCore(rv64, machine, translate=translate)
        with pytest.raises(SimulationError):
            core.run(max_instructions=1000)
        assert machine.instret == 1000


class TestBlockCacheCorners:
    def test_branch_into_middle_of_translated_block(self, rv64):
        # the block at `full` is translated and fully executed first;
        # the re-entry at `mid` lands inside it and must get its own
        # (overlapping) block entry, not a corrupted offset
        result, _m = _run_both("""
    .text
_start:
    li a0, 0
    li t0, 0
    j full
full:
    addi a0, a0, 1
mid:
    addi a0, a0, 10
    bnez t0, done
    li t0, 1
    j mid
done:
""" + RV_EXIT, rv64)
        assert result.exit_code == 21
        assert result.translation["blocks"] >= 2

    def test_self_loop_single_instruction_block(self, rv64):
        # not-taken self-loop: the length-1 block executes exactly once
        result, machine = _run_both("""
    .text
_start:
    li t0, 0
    li a0, 4
loop:
    bnez t0, loop
""" + RV_EXIT, rv64)
        assert result.exit_code == 4

    def test_looping_block_iterates_in_function(self, rv64):
        result, _m = _run_both("""
    .text
_start:
    li t0, 50
    li a0, 0
loop:
    addi a0, a0, 1
    addi t0, t0, -1
    bnez t0, loop
""" + RV_EXIT, rv64)
        assert result.exit_code == 50
        assert result.translation["looping_blocks"] >= 1

    def test_syscall_mid_block_chains_and_exits(self, rv64):
        # a write syscall inside a loop: the block ends at the ecall and
        # direct-chains to its fall-through; the final ecall (exit) must
        # stop execution mid straight-line code
        result, _m = _run_both("""
    .text
_start:
    li s0, 3
    la a1, msg
loop:
    li a7, 64
    li a0, 1
    li a2, 5
    ecall
    addi s0, s0, -1
    bnez s0, loop
    li a0, 6
    li a7, 93
    ecall
    li a0, 9
    .data
msg:
    .ascii "hello"
""", rv64)
        assert result.stdout == b"hello" * 3
        assert result.exit_code == 6  # the trailing li never runs
        assert result.translation["chained"] >= 1

    def test_aarch64_differential(self, aarch64):
        result, _m = _run_both("""
    .text
_start:
    mov x0, #0
    mov x1, #40
loop:
    add x0, x0, #2
    subs x1, x1, #1
    b.ne loop
    mov x8, #93
    svc #0
""", aarch64)
        assert result.exit_code == 80

    def test_batched_streams_identical(self, rv64):
        image = _image("""
    .text
_start:
    li t0, 8
    la t1, msg
    li a0, 0
loop:
    lbu t2, 0(t1)
    add a0, a0, t2
    addi t1, t1, 1
    addi t0, t0, -1
    bnez t0, loop
    sb a0, 0(t1)
""" + RV_EXIT + """
    .data
msg:
    .ascii "abcdefgh"
    .byte 0
""", rv64)
        streams = []
        for translate in (True, False):
            sink = _CollectSink()
            run_image(image, rv64, batch_sinks=[sink], translate=translate)
            streams.append((sink.names, sink.reads, sink.writes))
        assert streams[0] == streams[1]


class TestHarnessPlumbing:
    def _plan(self, **overrides):
        from repro.harness.plan import ExperimentPlan

        base = dict(workload="stream", isa="rv64", profile="gcc12",
                    scale=0.004, windowed=False)
        base.update(overrides)
        return ExperimentPlan(**base)

    def test_plan_roundtrip_translate(self):
        from repro.harness.plan import ExperimentPlan

        plan = self._plan(translate=False)
        doc = plan.to_dict()
        assert doc["translate"] is False
        assert ExperimentPlan.from_dict(doc) == plan

    def test_fingerprints_ignore_translate(self):
        a = self._plan(translate=True)
        b = a.with_overrides(translate=False)
        assert a.fingerprint() == b.fingerprint()
        assert a.trace_fingerprint() == b.trace_fingerprint()

    def test_plan_suite_translate_flag(self):
        from repro.harness.plan import plan_suite

        assert all(p.translate for p in plan_suite(0.01))
        assert not any(p.translate for p in plan_suite(0.01, translate=False))

    def test_run_config_differential(self):
        from repro.harness.experiments import run_config
        from repro.workloads import get_workload

        workload = get_workload("stream", 0.004)
        translated = run_config(workload, "rv64", "gcc12", translate=True)
        interpreted = run_config(workload, "rv64", "gcc12", translate=False)
        assert translated.to_dict() == interpreted.to_dict()
        assert translated.translation is not None
        assert translated.translation["blocks"] > 0
        assert interpreted.translation is None

    def test_executor_emits_translation_stats(self):
        from repro.harness.events import EventBus, PlanTranslationStats
        from repro.harness.executor import Executor

        captured = []
        bus = EventBus()
        bus.subscribe(captured.append)
        Executor(jobs=1, events=bus).run([self._plan()])
        stats = [e for e in captured if isinstance(e, PlanTranslationStats)]
        assert len(stats) == 1
        assert stats[0].stats["blocks"] > 0
        assert stats[0].stats["executions"] > 0

    def test_timing_collector_sums_translation(self):
        from repro.harness.events import PlanTranslationStats, TimingCollector

        collector = TimingCollector()
        collector(PlanTranslationStats(
            stats={"blocks": 2, "max_block": 7, "executions": 10}))
        collector(PlanTranslationStats(
            stats={"blocks": 3, "max_block": 5, "executions": 1}))
        summary = collector.summary()
        assert summary["translated_plans"] == 2
        assert summary["translation"] == {
            "blocks": 5, "max_block": 7, "executions": 11}

    def test_cli_no_translate_flag(self):
        from repro.harness.cli import build_parser

        args = build_parser().parse_args(["run", "--no-translate"])
        assert args.no_translate is True


@pytest.mark.slow
class TestFullDifferential:
    """The full 5 workloads x 2 ISAs matrix, translated vs interpreted,
    plus byte-identical artifact renders. Deselected by default (the
    default addopts carry ``-m 'not slow'``); run with ``-m slow``."""

    SCALE = 0.005

    @pytest.mark.parametrize("isa_name", ["rv64", "aarch64"])
    @pytest.mark.parametrize(
        "name", ["stream", "lbm", "cloverleaf", "minibude", "minisweep"])
    def test_machine_equality(self, name, isa_name):
        from repro.isa import get_isa
        from repro.workloads import get_workload

        workload = get_workload(name, self.SCALE)
        compiled = workload.compile(isa_name, "gcc12")
        isa = get_isa(isa_name)
        t_res, t_m = run_image(compiled.image, isa, translate=True)
        i_res, i_m = run_image(compiled.image, isa, translate=False)
        assert t_res.instructions == i_res.instructions
        assert t_res.exit_code == i_res.exit_code
        assert t_res.stdout == i_res.stdout
        assert list(t_m.r) == list(i_m.r)
        assert list(t_m.f) == list(i_m.f)
        assert t_m.instret == i_m.instret

    def test_artifacts_byte_identical(self):
        from repro.harness.experiments import (
            run_figure1,
            run_figure2,
            run_suite,
            run_table1,
            run_table2,
        )

        translated = run_suite(self.SCALE, windowed=True, jobs=1,
                               translate=True)
        interpreted = run_suite(self.SCALE, windowed=True, jobs=1,
                                translate=False)
        pairs = [
            (run_figure1(suite=translated), run_figure1(suite=interpreted)),
            (run_table1(suite=translated), run_table1(suite=interpreted)),
            (run_table2(suite=translated), run_table2(suite=interpreted)),
            (run_figure2(suite=translated), run_figure2(suite=interpreted)),
        ]
        for a, b in pairs:
            assert a.render() == b.render()
