"""Tests for guest-fault post-mortem capture (repro.sim.postmortem)."""

import pytest

from repro.asm import assemble
from repro.common import SimulationError
from repro.loader import program_to_image
from repro.sim import run_image
from repro.sim.postmortem import GuestFaultReport, annotate_pc, capture

from tests.conftest import RV_EXIT

# Faults with a memory access: loads from far outside the 16 MiB memory.
RV_BAD_LOAD = """
    .text
    .global _start
_start:
    li t0, 0x40000000
    ld a0, 0(t0)
""" + RV_EXIT

# Runs a few instructions, then walks off the text into zeroed memory
# (word 0 does not decode).
RV_WALK_OFF = """
    .text
    .global _start
_start:
    li a0, 1
    li a1, 2
    add a2, a0, a1
    j 0x20000
""" + RV_EXIT


def _fault_from(source, isa, **kwargs):
    program = assemble(source, isa)
    image = program_to_image(program)
    with pytest.raises(Exception) as excinfo:
        run_image(image, isa, max_instructions=1000, **kwargs)
    return excinfo.value


class TestAttachment:
    def test_memory_fault_report_attached(self, rv64):
        err = _fault_from(RV_BAD_LOAD, rv64)
        report = err.fault_report
        assert isinstance(report, GuestFaultReport)
        assert report.isa == "rv64"
        assert report.error_type == "SimulationError"

    def test_pc_backfilled_into_message_and_report(self, rv64):
        # the interpreter path knows the exact faulting pc
        err = _fault_from(RV_BAD_LOAD, rv64, translate=False)
        assert err.pc is not None
        assert f"pc={err.pc:#x}" in str(err)
        assert err.fault_report.pc == err.pc

    def test_access_and_hexdump_on_memory_fault(self, rv64):
        report = _fault_from(RV_BAD_LOAD, rv64).fault_report
        assert report.access is not None
        assert report.access["addr"] == 0x40000000
        # access is beyond memory, so the hexdump clamps to nothing
        assert isinstance(report.hexdump, list)

    def test_translated_path_records_block_pc(self, rv64):
        err = _fault_from(RV_BAD_LOAD, rv64, translate=True)
        assert getattr(err, "block_pc", None) is not None
        assert err.fault_report.block_pc == err.block_pc

    def test_register_file_snapshot(self, rv64):
        report = _fault_from(RV_BAD_LOAD, rv64).fault_report
        assert len(report.regs) >= 32
        assert 0x40000000 in report.regs  # t0 at the fault

    def test_attach_is_idempotent(self, rv64):
        from repro.loader import load_program
        from repro.sim import postmortem
        from repro.sim.emucore import EmulationCore
        from repro.sim.machine import Machine
        from repro.sim.memory import Memory

        err = _fault_from(RV_BAD_LOAD, rv64)
        first = err.fault_report
        # attaching again (e.g. an outer wrapper re-raising) keeps the
        # innermost report
        machine = Machine("rv64", Memory(1 << 20))
        core = EmulationCore(rv64, machine, translate=False)
        postmortem.attach(core, err)
        assert err.fault_report is first


class TestHistory:
    def test_interpreter_history_captures_retirements(self, rv64):
        err = _fault_from(RV_WALK_OFF, rv64, history=16,
                          translate=False)
        report = err.fault_report
        assert report.history_kind == "instruction"
        texts = [rec["text"] for rec in report.history]
        assert any("add" in t for t in texts)

    def test_translated_history_flattens_blocks(self, rv64):
        err = _fault_from(RV_WALK_OFF, rv64, translate=True, history=16)
        report = err.fault_report
        assert report.history_kind in ("block", "instruction")
        assert report.history  # something was retired before the fault

    def test_history_off_by_default(self, rv64):
        err = _fault_from(RV_WALK_OFF, rv64)
        assert err.fault_report.history == []
        assert err.fault_report.history_kind == "none"


class TestSerialization:
    def test_round_trip(self, rv64):
        report = _fault_from(RV_BAD_LOAD, rv64, history=8).fault_report
        clone = GuestFaultReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()

    def test_dict_is_json_safe(self, rv64):
        import json

        report = _fault_from(RV_BAD_LOAD, rv64).fault_report
        json.dumps(report.to_dict())


class TestRender:
    def test_render_mentions_pc_registers_and_error(self, rv64):
        report = _fault_from(RV_BAD_LOAD, rv64, history=8,
                             translate=False).fault_report
        text = report.render()
        assert "guest fault" in text
        assert f"pc: {report.pc:#x}" in text
        assert "registers:" in text
        assert "r0 " in text or "r0=" in text.replace(" ", "")

    def test_render_includes_disassembly_window(self, rv64):
        report = _fault_from(RV_WALK_OFF, rv64).fault_report
        if report.disassembly:
            assert "code around fault" in report.render()


class TestCaptureAPI:
    def test_capture_without_error_snapshots_reason(self, rv64):
        from repro.sim.emucore import EmulationCore
        from repro.sim.machine import Machine
        from repro.sim.memory import Memory
        from repro.loader import load_program

        program = assemble(RV_WALK_OFF, rv64)
        image = program_to_image(program)
        memory = Memory(1 << 20)
        machine = Machine("rv64", memory)
        machine.reset_stack()
        machine.pc = image.entry
        core = EmulationCore(rv64, machine, translate=False)
        report = capture(core, reason="value divergence in g0")
        assert report.error_type == "divergence"
        assert "divergence" in report.error
        assert report.pc == machine.pc

    def test_annotate_pc_noop_when_known(self):
        err = SimulationError("boom", pc=0x10)
        annotate_pc(err, 0x20)
        assert err.pc == 0x10
        assert "pc=0x20" not in str(err)
