"""Unit tests for RV64 arithmetic corner cases (repro.isa.riscv.semantics)."""

import math

from hypothesis import given, strategies as st

from repro.common import MASK64, u64
from repro.isa.riscv import semantics as sem
from repro.isa.riscv.encoding import RM_RNE, RM_RTZ

u64s = st.integers(min_value=0, max_value=MASK64)
INT64_MIN_BITS = 1 << 63


class TestDivision:
    def test_div_by_zero_returns_all_ones(self):
        assert sem.div_signed(42, 0) == MASK64
        assert sem.div_unsigned(42, 0) == MASK64
        assert sem.div_signed(42, 0, width=32) == MASK64

    def test_div_overflow(self):
        assert sem.div_signed(INT64_MIN_BITS, u64(-1)) == INT64_MIN_BITS
        assert sem.rem_signed(INT64_MIN_BITS, u64(-1)) == 0

    def test_div_truncates_toward_zero(self):
        assert sem.div_signed(u64(-7), 2) == u64(-3)
        assert sem.div_signed(7, u64(-2)) == u64(-3)
        assert sem.rem_signed(u64(-7), 2) == u64(-1)   # sign follows dividend
        assert sem.rem_signed(7, u64(-2)) == 1

    def test_rem_by_zero_returns_dividend(self):
        assert sem.rem_signed(u64(-5), 0) == u64(-5)
        assert sem.rem_unsigned(5, 0) == 5

    def test_w_forms_sign_extend(self):
        # -8 / 2 in 32-bit, result sign-extended to 64
        assert sem.div_signed(u64(-8) & 0xFFFFFFFF, 2, width=32) == u64(-4)

    @given(u64s, u64s)
    def test_div_rem_identity(self, a, b):
        if b == 0:
            return
        from repro.common import s64
        q = s64(sem.div_signed(a, b))
        r = s64(sem.rem_signed(a, b))
        if not (s64(a) == -(1 << 63) and s64(b) == -1):
            assert q * s64(b) + r == s64(a)


class TestHighMultiply:
    def test_mulhu_known(self):
        assert sem.mulhu(MASK64, MASK64) == MASK64 - 1

    def test_mulh_known(self):
        assert sem.mulh(u64(-1), u64(-1)) == 0          # (-1)*(-1) = 1, high 0
        assert sem.mulh(INT64_MIN_BITS, INT64_MIN_BITS) == 1 << 62

    @given(u64s, u64s)
    def test_mulh_matches_wide_product(self, a, b):
        from repro.common import s64
        wide = s64(a) * s64(b)
        assert sem.mulh(a, b) == u64(wide >> 64)

    @given(u64s, u64s)
    def test_mulhu_matches_wide_product(self, a, b):
        assert sem.mulhu(a, b) == (a * b) >> 64

    @given(u64s, u64s)
    def test_mulhsu_matches_wide_product(self, a, b):
        from repro.common import s64
        assert sem.mulhsu(a, b) == u64((s64(a) * b) >> 64)


class TestFpToInt:
    def test_rtz_truncates(self):
        assert sem.fp_to_int(2.9, RM_RTZ, -100, 100) == 2
        assert sem.fp_to_int(-2.9, RM_RTZ, -100, 100) == -2

    def test_rne_rounds_half_even(self):
        assert sem.fp_to_int(2.5, RM_RNE, -100, 100) == 2
        assert sem.fp_to_int(3.5, RM_RNE, -100, 100) == 4

    def test_saturation(self):
        assert sem.fp_to_int(1e30, RM_RTZ, -(1 << 31), (1 << 31) - 1) == (1 << 31) - 1
        assert sem.fp_to_int(-1e30, RM_RTZ, -(1 << 31), (1 << 31) - 1) == -(1 << 31)

    def test_nan_converts_to_max(self):
        assert sem.fp_to_int(math.nan, RM_RTZ, -100, 100) == 100

    def test_infinities(self):
        assert sem.fp_to_int(math.inf, RM_RTZ, -100, 100) == 100
        assert sem.fp_to_int(-math.inf, RM_RTZ, -100, 100) == -100


class TestSignInjection:
    def test_fsgnj_copies_sign(self):
        assert sem.fsgnj(1.5, -2.0, "j", False) == -1.5
        assert sem.fsgnj(-1.5, 2.0, "j", False) == 1.5

    def test_fsgnjn_negates_sign(self):
        assert sem.fsgnj(1.5, -2.0, "jn", False) == 1.5
        assert sem.fsgnj(1.5, 2.0, "jn", False) == -1.5

    def test_fsgnjx_xors_sign(self):
        assert sem.fsgnj(-1.5, -2.0, "jx", False) == 1.5
        assert sem.fsgnj(-1.5, 2.0, "jx", False) == -1.5

    def test_fsgnj_preserves_zero_sign(self):
        assert math.copysign(1.0, sem.fsgnj(0.0, -1.0, "j", False)) == -1.0


class TestMinMax:
    def test_fmin_nan_aware(self):
        assert sem.fmin(math.nan, 2.0) == 2.0
        assert sem.fmin(2.0, math.nan) == 2.0
        assert math.isnan(sem.fmin(math.nan, math.nan))

    def test_fmin_negative_zero(self):
        assert math.copysign(1.0, sem.fmin(0.0, -0.0)) == -1.0
        assert math.copysign(1.0, sem.fmax(0.0, -0.0)) == 1.0

    @given(st.floats(allow_nan=False), st.floats(allow_nan=False))
    def test_fmin_fmax_ordering(self, a, b):
        assert sem.fmin(a, b) <= sem.fmax(a, b)


class TestFclass:
    def test_classes(self):
        assert sem.fclass(-math.inf, False) == 1 << 0
        assert sem.fclass(-1.0, False) == 1 << 1
        assert sem.fclass(-0.0, False) == 1 << 3
        assert sem.fclass(0.0, False) == 1 << 4
        assert sem.fclass(1.0, False) == 1 << 6
        assert sem.fclass(math.inf, False) == 1 << 7
        assert sem.fclass(math.nan, False) == 1 << 9

    def test_subnormal(self):
        assert sem.fclass(1e-310, False) == 1 << 5
        assert sem.fclass(-1e-310, False) == 1 << 2


class TestRoundF32:
    def test_rounds_to_single(self):
        # 1 + 2^-30 is not representable in float32 and rounds to 1.0
        assert sem.round_f32(1.0 + 2.0 ** -30) == 1.0
        assert sem.round_f32(0.1) != 0.1  # 0.1 rounds to float32 0.1


class TestFsqrt:
    def test_negative_is_nan(self):
        assert math.isnan(sem.fsqrt(-1.0))

    def test_exact(self):
        assert sem.fsqrt(16.0) == 4.0
        assert sem.fsqrt(0.0) == 0.0
