"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.isa import get_isa
from repro.loader import program_to_image
from repro.sim import run_image


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the experiment result cache at a per-session temp dir so tests
    neither read stale entries from nor pollute the user's real cache."""
    import os

    root = tmp_path_factory.mktemp("repro-isa-cache")
    old = os.environ.get("REPRO_ISA_CACHE_DIR")
    os.environ["REPRO_ISA_CACHE_DIR"] = str(root)
    yield root
    if old is None:
        os.environ.pop("REPRO_ISA_CACHE_DIR", None)
    else:
        os.environ["REPRO_ISA_CACHE_DIR"] = old


@pytest.fixture(scope="session")
def rv64():
    return get_isa("rv64")


@pytest.fixture(scope="session")
def aarch64():
    return get_isa("aarch64")


def run_asm(source: str, isa, max_instructions: int = 2_000_000):
    """Assemble, link, load and run; returns (RunResult, Machine, image)."""
    program = assemble(source, isa)
    image = program_to_image(program)
    result, machine = run_image(image, isa, max_instructions=max_instructions)
    return result, machine, image


# exit stubs deliberately leave the result registers (a0/x0) untouched so
# tests can inspect them after the run; the exit code is whatever they hold
RV_EXIT = """
    li a7, 93
    ecall
"""

A64_EXIT = """
    mov x8, #93
    svc #0
"""


def run_rv(body: str, isa, data: str = "") -> tuple:
    """Run a RISC-V fragment: body + exit(0) (+ optional data section)."""
    source = "    .text\n_start:\n" + body + RV_EXIT
    if data:
        source += "\n    .data\n" + data
    return run_asm(source, isa)


def run_a64(body: str, isa, data: str = "") -> tuple:
    """Run an AArch64 fragment: body + exit(0) (+ optional data section)."""
    source = "    .text\n_start:\n" + body + A64_EXIT
    if data:
        source += "\n    .data\n" + data
    return run_asm(source, isa)


def compile_and_run(source: str, isa_name: str, profile: str = "gcc12",
                    max_instructions: int = 5_000_000):
    """Compile kernelc source, run it, return (result, machine, compiled)."""
    from repro.compiler import compile_source

    compiled = compile_source(source, isa_name, profile)
    isa = get_isa(compiled.isa_name)
    result, machine = run_image(
        compiled.image, isa, max_instructions=max_instructions
    )
    return result, machine, compiled
