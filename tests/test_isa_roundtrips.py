"""Encode/decode round-trip properties for both ISAs' codecs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import DecodeError, EncodingError
from repro.isa.riscv import encoding as rve
from repro.isa.aarch64 import encoding as a64e


class TestRiscvImmediateCodecs:
    @given(st.integers(min_value=-(1 << 11), max_value=(1 << 11) - 1))
    def test_i_type(self, imm):
        word = rve.encode_i(rve.OP_IMM, 1, 0, 2, imm)
        assert rve.decode_imm_i(word) == imm

    @given(st.integers(min_value=-(1 << 11), max_value=(1 << 11) - 1))
    def test_s_type(self, imm):
        word = rve.encode_s(rve.OP_STORE, 3, 4, 5, imm)
        assert rve.decode_imm_s(word) == imm

    @given(st.integers(min_value=-(1 << 11), max_value=(1 << 11) - 1))
    def test_b_type(self, half):
        offset = half * 2
        word = rve.encode_b(rve.OP_BRANCH, 0, 1, 2, offset)
        assert rve.decode_imm_b(word) == offset

    @given(st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1))
    def test_u_type(self, imm20):
        word = rve.encode_u(rve.OP_LUI, 7, imm20)
        assert rve.decode_imm_u(word) == imm20

    @given(st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1))
    def test_j_type(self, half):
        offset = half * 2
        word = rve.encode_j(rve.OP_JAL, 1, offset)
        assert rve.decode_imm_j(word) == offset

    def test_out_of_range_rejected(self):
        with pytest.raises(EncodingError):
            rve.encode_i(rve.OP_IMM, 1, 0, 2, 2048)
        with pytest.raises(EncodingError):
            rve.encode_b(rve.OP_BRANCH, 0, 1, 2, 3)  # odd offset
        with pytest.raises(EncodingError):
            rve.encode_j(rve.OP_JAL, 1, 1 << 21)


class TestRiscvFullDecode:
    """Every entry in the encoding tables decodes back to its mnemonic."""

    @pytest.mark.parametrize("name", sorted(rve.R_TYPE))
    def test_r_type_decodes(self, rv64, name):
        op, f3, f7 = rve.R_TYPE[name]
        word = rve.encode_r(op, 10, f3, 11, 12, f7)
        assert rv64.decode(word, 0).mnemonic == name

    @pytest.mark.parametrize("name", sorted(rve.LOADS))
    def test_loads_decode(self, rv64, name):
        f3, _size, _signed, fp = rve.LOADS[name]
        opcode = rve.OP_LOAD_FP if fp else rve.OP_LOAD
        word = rve.encode_i(opcode, 5, f3, 6, 16)
        inst = rv64.decode(word, 0)
        assert inst.mnemonic == name
        assert inst.is_load

    @pytest.mark.parametrize("name", sorted(rve.STORES))
    def test_stores_decode(self, rv64, name):
        f3, _size, fp = rve.STORES[name]
        opcode = rve.OP_STORE_FP if fp else rve.OP_STORE
        word = rve.encode_s(opcode, f3, 6, 7, -8)
        inst = rv64.decode(word, 0)
        assert inst.mnemonic == name
        assert inst.is_store

    @pytest.mark.parametrize("name", sorted(rve.BRANCHES))
    def test_branches_decode(self, rv64, name):
        word = rve.encode_b(rve.OP_BRANCH, rve.BRANCHES[name], 1, 2, 64)
        inst = rv64.decode(word, 0x1000)
        assert inst.mnemonic == name
        assert inst.is_branch

    @pytest.mark.parametrize("name", sorted(rve.FP_OPS))
    def test_fp_ops_decode(self, rv64, name):
        f7, f3 = rve.FP_OPS[name]
        rm = f3 if f3 is not None else rve.RM_DYN
        word = rve.encode_r(rve.OP_FP, 1, rm, 2, 3, f7)
        assert rv64.decode(word, 0).mnemonic == name

    @pytest.mark.parametrize("name", sorted(rve.AMO_OPS))
    def test_amos_decode(self, rv64, name):
        f5, f3 = rve.AMO_OPS[name]
        word = rve.encode_r(rve.OP_AMO, 10, f3, 11, 0 if "lr" in name else 12,
                            f5 << 2)
        assert rv64.decode(word, 0).mnemonic == name

    def test_garbage_raises(self, rv64):
        for word in (0x00000000, 0xFFFFFFFF, 0x0000007F):
            with pytest.raises(DecodeError):
                rv64.decode(word, 0)


class TestAArch64Codecs:
    @given(st.integers(min_value=0, max_value=255))
    def test_vfp_imm8_roundtrip(self, imm8):
        value = a64e.vfp_expand_imm8(imm8)
        assert a64e.vfp_encode_imm8(value) == imm8

    @pytest.mark.parametrize("value", [2.0, 1.0, 0.5, -1.0, 0.25, 31.0, -0.125])
    def test_vfp_common_constants(self, value):
        imm8 = a64e.vfp_encode_imm8(value)
        assert a64e.vfp_expand_imm8(imm8) == value

    @pytest.mark.parametrize("value", [0.0, 0.1, 1e10, 3.14159])
    def test_vfp_unencodable(self, value):
        with pytest.raises(EncodingError):
            a64e.vfp_encode_imm8(value)

    @given(st.integers(min_value=-(1 << 20), max_value=(1 << 20) - 1))
    def test_adr_offset_roundtrip(self, aarch64, imm21):
        word = a64e.adr(0, 3, imm21)
        inst = aarch64.decode(word, 0x100000)
        # adr computes pc + imm; recover the offset
        # (decoded value is absolute, baked into the executor text)
        assert f"{(0x100000 + imm21) & ((1 << 64) - 1):#x}" in inst.text

    @given(st.integers(min_value=-(1 << 25), max_value=(1 << 25) - 1))
    def test_branch_offset_roundtrip(self, aarch64, word_offset):
        offset = word_offset * 4
        word = a64e.branch_imm(0, offset)
        inst = aarch64.decode(word, 0x40000000)
        assert inst.is_branch
        assert f"{(0x40000000 + offset) & ((1 << 64) - 1):#x}" in inst.text

    def test_range_checks(self):
        with pytest.raises(EncodingError):
            a64e.add_sub_imm(1, 0, 0, 0, 1, 4096, False)
        with pytest.raises(EncodingError):
            a64e.branch_imm(0, 2)  # unaligned
        with pytest.raises(EncodingError):
            a64e.move_wide(0, 2, 1, 0xFFFF, 2)  # hw=2 invalid for 32-bit
        with pytest.raises(EncodingError):
            a64e.test_branch(0, 1, 64, 4)  # bit position out of range

    def test_reserved_encodings_raise(self, aarch64):
        with pytest.raises(DecodeError):
            aarch64.decode(0x00000000, 0)
        with pytest.raises(DecodeError):
            aarch64.decode(0xFFFFFFFF, 0)


class TestAArch64TextRoundtrip:
    """assemble(text) then disassemble gives back equivalent text."""

    @pytest.mark.parametrize("text,expect", [
        ("add x0, x1, x2", "add x0,x1,x2"),
        ("add x0, x1, #42", "add x0,x1,#42"),
        ("sub w3, w4, w5", "sub w3,w4,w5"),
        ("madd x0, x1, x2, x3", "madd x0,x1,x2,x3"),
        ("sdiv x0, x1, x2", "sdiv x0,x1,x2"),
        ("and x0, x1, x2, lsl #3", "and x0,x1,x2,lsl #3"),
        ("cmp x0, x20", "cmp x0,x20"),
        ("csel x0, x1, x2, eq", "csel x0,x1,x2,eq"),
        ("ldr d1, [x22, x0, lsl #3]", "ldr d1,[x22,x0,lsl #3]"),
        ("str x1, [sp, #16]", "str x1,[sp,#16]"),
        ("ldp x19, x20, [sp, #32]", "ldp x19,x20,[sp,#32]"),
        ("fadd d0, d1, d2", "fadd d0,d1,d2"),
        ("fmadd d0, d1, d2, d3", "fmadd d0,d1,d2,d3"),
        ("fcvtzs x0, d1", "fcvtzs x0,d1"),
        ("scvtf d0, x1", "scvtf d0,x1"),
        ("fcmp d0, d1", "fcmp d0,d1"),
        ("movi d3, #0", "movi d3,#0"),
        ("clz x0, x1", "clz x0,x1"),
        ("ret", "ret"),
        ("nop", "nop"),
    ])
    def test_roundtrip(self, aarch64, text, expect):
        class Ctx:
            pc = 0x1000

            def lookup(self, sym):
                return 0x1000

        mnemonic, _, rest = text.partition(" ")
        from repro.asm.assembler import split_operands
        operands = split_operands(rest) if rest else []
        words = aarch64.encode_instruction(mnemonic, operands, Ctx())
        assert len(words) == 1
        assert aarch64.disassemble(words[0], 0x1000) == expect
