"""Property tests for the translate-time block-summary layer.

The tentpole invariants, stated as tests:

* the translated event stream (pre-aggregated per-block deltas) drives
  the fused engine to *exactly* the legacy per-retire probes' results,
  on every workload and both ISAs — and the event path actually ran
  (``event_batches > 0``), so this is not the SoA fallback vouching for
  itself;
* ``AnalysisState.merge`` is exact and associative: splitting the event
  stream at *any* block boundary, analyzing the pieces independently
  (suffixes in relative mode), and merging reproduces the serial result
  byte-for-byte, over seeded-random kernelc programs (hypothesis-style)
  and a real workload;
* the typed :class:`AnalysisConfig` surface replaces the loose kwargs —
  legacy kwargs still work one release behind a ``DeprecationWarning``,
  mixing both surfaces is an error — and the versioned result/cache
  formats keep reading their previous layouts.
"""

from __future__ import annotations

import json
import random
import warnings

import pytest

from repro.analysis import (
    AnalysisConfig,
    AnalysisResult,
    AnalysisState,
    CriticalPathProbe,
    FusedAnalysisEngine,
    InstructionMixProbe,
    PathLengthProbe,
    WindowedCPProbe,
)
from repro.common.errors import ExperimentError
from repro.compiler import compile_source
from repro.harness.cache import ResultCache
from repro.harness.experiments import ConfigResult, run_config
from repro.harness.plan import ExperimentPlan
from repro.isa import get_isa
from repro.sim import run_image
from repro.sim.config import load_core_model
from repro.workloads import ALL_WORKLOADS, get_workload

SCALE = 0.02
WINDOWS = (4, 16)

MODELS = {"aarch64": "tx2", "rv64": "tx2-riscv"}


def _model(isa_name: str):
    return load_core_model(MODELS[isa_name])


def _engine(compiled, *, windowed=True, relative=False):
    return FusedAnalysisEngine(
        regions=compiled.image.regions, model=_model(compiled.isa_name),
        windowed=windowed, window_sizes=WINDOWS, relative=relative,
    )


def _probe_result(compiled) -> dict:
    """The five legacy probes on the interpreter: the oracle."""
    isa = get_isa(compiled.isa_name)
    path = PathLengthProbe(compiled.image.regions)
    cp = CriticalPathProbe()
    scaled = CriticalPathProbe(_model(compiled.isa_name))
    mix = InstructionMixProbe()
    window = WindowedCPProbe(WINDOWS, 0.5)
    run_image(compiled.image, isa, [path, cp, scaled, mix, window],
              translate=False)
    return AnalysisResult(
        path=path.result(), cp=cp.result(), scaled_cp=scaled.result(),
        mix=mix.result(), windowed=window.results(),
    ).to_dict()


class _EventRecorder:
    """Capture the translated run's event stream so tests can re-feed it
    to engines in arbitrary splits (every batch ends on a block
    boundary, so batch indices *are* block-boundary split points)."""

    needs_memory = True
    accepts_events = True

    def __init__(self):
        self.table = None
        self.summaries = None
        self.batches: list[tuple] = []

    def on_events(self, table, summaries, events, count, indices,
                  read_ends, write_ends, reads, writes):
        self.table = table
        self.summaries = summaries
        self.batches.append((list(events), count, list(indices),
                             list(read_ends), list(write_ends),
                             list(reads), list(writes)))


def _record(compiled) -> _EventRecorder:
    recorder = _EventRecorder()
    run_image(compiled.image, get_isa(compiled.isa_name),
              batch_sinks=[recorder])
    assert recorder.batches, "translated run produced no event batches"
    return recorder


def _feed(engine, recorder, lo, hi) -> AnalysisState:
    for i in range(lo, hi):
        engine.on_events(recorder.table, recorder.summaries,
                         *recorder.batches[i])
    return engine.state()


def _serial_result(compiled) -> dict:
    engine = _engine(compiled)
    run_image(compiled.image, get_isa(compiled.isa_name),
              batch_sinks=[engine])
    assert engine.event_batches > 0, "event fast path did not run"
    return engine.results().to_dict()


# ----------------------------------------------- summary == probes, exact

@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_summary_events_match_probes_on_workload(name):
    workload = get_workload(name, SCALE)
    for isa in ("aarch64", "rv64"):
        compiled = workload.compile(isa, "gcc12")
        assert _serial_result(compiled) == _probe_result(compiled)


def test_translation_registers_summaries():
    compiled = get_workload("stream", SCALE).compile("rv64", "gcc12")
    engine = _engine(compiled, windowed=False)
    run, _machine = run_image(compiled.image, get_isa(compiled.isa_name),
                              batch_sinks=[engine])
    stats = run.translation
    assert stats is not None and stats["summary_blocks"] > 0
    assert engine.event_batches > 0


# ------------------------------------------------- split/merge properties

def _random_kernelc(seed: int) -> str:
    rng = random.Random(seed)
    n = rng.randrange(24, 80)
    lines = [
        f"global long ia[{n}];",
        f"global double da[{n}];",
        "global double out_d;",
        "global long out_l;",
        "func long main() {",
        "  long acc = 1;",
        "  double facc = 0.5;",
        f"  for (long i = 0; i < {n}; i = i + 1) {{",
        f"    ia[i] = i * {rng.randrange(1, 9)} + {rng.randrange(0, 5)};",
        f"    da[i] = 1.0 + i * {rng.choice(['0.25', '0.5', '1.5'])};",
        "  }",
    ]
    for _ in range(rng.randrange(2, 5)):
        stride = rng.choice([1, 2, 3])
        body = rng.choice([
            "acc = acc + ia[i] * {k};",
            "ia[i] = ia[i] + acc / (i + 1);",
            "facc = facc + da[i] * {f};",
            "da[i] = da[i] / (facc + 1.0) + {f};",
            "if (ia[i] > {k}) { acc = acc + 1; } else { facc = facc + da[i]; }",
        ])
        body = body.replace("{k}", str(rng.randrange(1, 7)))
        body = body.replace("{f}", rng.choice(["0.125", "2.0", "3.5"]))
        lines.append(
            f"  for (long i = 0; i < {n}; i = i + {stride}) {{ {body} }}"
        )
    lines += [
        "  out_l = acc;",
        "  out_d = facc;",
        "  return 0;",
        "}",
    ]
    return "\n".join(lines)


@pytest.mark.parametrize("seed", range(6))
def test_split_at_any_boundary_matches_serial(seed):
    # hypothesis-style: seeded random programs, every (sampled) split
    # point; an absolute prefix merged with a relative suffix must equal
    # the serial analysis exactly.
    isa = ("aarch64", "rv64")[seed % 2]
    compiled = compile_source(_random_kernelc(seed), isa, "gcc12")
    serial = _serial_result(compiled)
    recorder = _record(compiled)
    n = len(recorder.batches)
    splits = range(n + 1) if n <= 12 else (
        sorted({0, 1, n // 3, n // 2, 2 * n // 3, n - 1, n})
    )
    for split in splits:
        prefix = _feed(_engine(compiled), recorder, 0, split)
        suffix = _feed(_engine(compiled, relative=True), recorder, split, n)
        merged = prefix.merge(suffix)
        assert merged.results().to_dict() == serial, f"split {split}/{n}"


@pytest.mark.parametrize("seed", range(4))
def test_merge_is_associative(seed):
    isa = ("rv64", "aarch64")[seed % 2]
    compiled = compile_source(_random_kernelc(seed + 100), isa, "gcc12")
    serial = _serial_result(compiled)
    recorder = _record(compiled)
    n = len(recorder.batches)
    rng = random.Random(seed)
    cuts = sorted(rng.sample(range(n + 1), k=min(2, n + 1)))
    i = cuts[0]
    j = cuts[-1]
    state_a = _feed(_engine(compiled), recorder, 0, i)
    def state_b():
        return _feed(_engine(compiled, relative=True), recorder, i, j)
    def state_c():
        return _feed(_engine(compiled, relative=True), recorder, j, n)
    left = state_a.merge(state_b()).merge(state_c())
    right = state_a.merge(state_b().merge(state_c()))
    assert left.results().to_dict() == serial
    assert right.results().to_dict() == serial


def test_split_merge_on_real_workload():
    compiled = get_workload("stream", SCALE).compile("rv64", "gcc12")
    serial = _serial_result(compiled)
    recorder = _record(compiled)
    n = len(recorder.batches)
    for split in (n // 4, n // 2, (3 * n) // 4):
        prefix = _feed(_engine(compiled), recorder, 0, split)
        suffix = _feed(_engine(compiled, relative=True), recorder, split, n)
        assert prefix.merge(suffix).results().to_dict() == serial


def test_relative_state_has_no_absolute_results():
    compiled = compile_source(_random_kernelc(3), "rv64", "gcc12")
    recorder = _record(compiled)
    state = _feed(_engine(compiled, relative=True), recorder, 0,
                  len(recorder.batches))
    assert state.relative
    with pytest.raises(RuntimeError, match="relative"):
        state.results()


# ------------------------------------------------ typed config surface

def test_legacy_kwargs_warn():
    workload = get_workload("stream", SCALE)
    with pytest.warns(DeprecationWarning, match="AnalysisConfig"):
        run_config(workload, "rv64", "gcc12", windowed=True,
                   window_sizes=WINDOWS)


def test_analysis_config_does_not_warn():
    workload = get_workload("stream", SCALE)
    cfg = AnalysisConfig(windowed=True, window_sizes=WINDOWS)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        result = run_config(workload, "rv64", "gcc12", analysis=cfg)
    assert result.windowed is not None and set(result.windowed) == set(WINDOWS)


def test_mixing_surfaces_is_an_error():
    workload = get_workload("stream", SCALE)
    with pytest.raises(ExperimentError, match="not both"):
        run_config(workload, "rv64", "gcc12",
                   analysis=AnalysisConfig(), windowed=True)


def test_analysis_config_validates():
    with pytest.raises(ValueError, match="unknown analysis engine"):
        AnalysisConfig(engine="simd")
    with pytest.raises(ValueError, match="slide_fraction"):
        AnalysisConfig(slide_fraction=0.0)
    with pytest.raises(ValueError, match="fused"):
        AnalysisConfig(engine="probes", capture_trace=True)
    roundtrip = AnalysisConfig.from_dict(
        AnalysisConfig(windowed=True, keep_cps=True).to_dict())
    assert roundtrip == AnalysisConfig(windowed=True, keep_cps=True)


def test_check_invariants_runs_the_oracle():
    workload = get_workload("stream", SCALE)
    cfg = AnalysisConfig(windowed=True, window_sizes=WINDOWS,
                         check_invariants=True)
    result = run_config(workload, "rv64", "gcc12", analysis=cfg)
    assert result.path.total > 0


def test_probe_engine_honors_break_on_zero():
    workload = get_workload("stream", SCALE)
    a1 = run_config(workload, "rv64", "gcc12",
                    analysis=AnalysisConfig(engine="probes",
                                            break_on_zero=False))
    base = run_config(workload, "rv64", "gcc12",
                      analysis=AnalysisConfig(engine="probes"))
    assert a1.cp.critical_path >= base.cp.critical_path


# -------------------------------------------- versioned result formats

def test_config_result_roundtrip_and_v1_compat():
    workload = get_workload("stream", SCALE)
    result = run_config(workload, "rv64", "gcc12",
                        analysis=AnalysisConfig(windowed=True,
                                                window_sizes=WINDOWS))
    doc = result.to_dict()
    assert doc["v"] == 2 and doc["analysis"]["v"] == 1
    assert ConfigResult.from_dict(doc) == result

    # the pre-block-summary flat layout must keep parsing (old caches)
    analysis = doc["analysis"]
    v1 = {
        "v": 1,
        "workload": doc["workload"],
        "isa": doc["isa"],
        "profile": doc["profile"],
        "path": analysis["path"],
        "cp": analysis["cp"],
        "scaled_cp": analysis["scaled_cp"],
        "mix": analysis["mix"],
        "windowed": analysis["windowed"],
    }
    assert ConfigResult.from_dict(v1) == result


def test_cache_reads_previous_format(tmp_path):
    workload = get_workload("stream", SCALE)
    result = run_config(workload, "rv64", "gcc12",
                        analysis=AnalysisConfig())
    cache = ResultCache(tmp_path / "cache")
    plan = ExperimentPlan(workload="stream", isa="rv64", profile="gcc12",
                          scale=SCALE, windowed=False)
    path = cache.put(plan, result)
    doc = json.loads(path.read_text())
    assert doc["format"] == 3

    # rewrite the envelope as the previous on-disk format: still a
    # valid entry, must load (not quarantine) on read
    doc["format"] = 2
    path.write_text(json.dumps(doc, separators=(",", ":")))
    loaded = cache.get(plan)
    assert loaded == result
    assert cache.stats.quarantined == 0
