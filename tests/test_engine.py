"""Plan/execute engine tests: plan identity, cache round-trips, executor
parallelism, figure-entry-point suite sharing, and CLI subcommands."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ExperimentError
from repro.harness import (
    ConfigResult,
    EventBus,
    Executor,
    ExperimentPlan,
    ResultCache,
    TimingCollector,
    plan_suite,
)
from repro.harness import executor as executor_mod
from repro.harness import experiments
from repro.analysis.critpath import CriticalPathResult
from repro.analysis.mix import InstructionMixResult
from repro.analysis.pathlength import PathLengthResult
from repro.analysis.windowed import WindowedCPResult
from repro.isa.base import InstructionGroup


def make_plan(**overrides) -> ExperimentPlan:
    base = dict(workload="stream", isa="rv64", profile="gcc12", scale=0.02,
                windowed=True, window_sizes=(4, 16))
    base.update(overrides)
    return ExperimentPlan(**base)


def make_result(plan: ExperimentPlan, seed: int = 7) -> ConfigResult:
    """A synthetic but structurally complete ConfigResult."""
    windowed = None
    if plan.windowed:
        windowed = {w: WindowedCPResult(window_size=w, count=3,
                                        total_cp=6 * seed, max_cp=3 * seed,
                                        min_cp=seed, cps=[seed, 2 * seed])
                    for w in plan.window_sizes}
    return ConfigResult(
        workload=plan.workload,
        isa=plan.isa,
        profile=plan.profile,
        path=PathLengthResult(total=100 * seed,
                              per_region={"copy": 60 * seed,
                                          "other": 40 * seed}),
        cp=CriticalPathResult(critical_path=10 * seed,
                              instructions=100 * seed),
        scaled_cp=CriticalPathResult(critical_path=60 * seed,
                                     instructions=100 * seed),
        mix=InstructionMixResult(
            total=100 * seed,
            by_mnemonic={"add": 50 * seed, "beq": 10 * seed},
            by_group={InstructionGroup.INT_SIMPLE: 90 * seed,
                      InstructionGroup.BRANCH: 10 * seed},
            branches=10 * seed, conditional_branches=9 * seed,
            flag_setters=0, loads=20 * seed, stores=10 * seed),
        windowed=windowed,
    )


class TestPlan:
    def test_hash_stability_across_instances(self):
        assert make_plan().fingerprint() == make_plan().fingerprint()
        assert len(make_plan().fingerprint()) == 64

    def test_hash_sensitivity(self):
        base = make_plan().fingerprint()
        assert make_plan(scale=0.03).fingerprint() != base
        assert make_plan(isa="aarch64").fingerprint() != base
        assert make_plan(window_sizes=(4, 64)).fingerprint() != base
        assert make_plan(windowed=False).fingerprint() != base
        assert make_plan(model="ideal").fingerprint() != base

    def test_roundtrip(self):
        plan = make_plan()
        again = ExperimentPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert again == plan
        assert again.fingerprint() == plan.fingerprint()
        assert hash(again) == hash(plan)

    def test_default_model_resolved(self):
        assert make_plan(model="").model == "tx2-riscv"
        assert make_plan(isa="aarch64", model="").model == "tx2"

    def test_invalid_plan_raises_experiment_error(self):
        with pytest.raises(ExperimentError):
            make_plan(workload="spec2017")
        with pytest.raises(ExperimentError):
            make_plan(isa="x86")
        with pytest.raises(ExperimentError):
            make_plan(profile="clang")

    def test_plan_suite_matrix(self):
        plans = plan_suite(0.5, workloads=("stream", "lbm"), windowed=True)
        assert len(plans) == 8
        # windowed only on gcc12 (§6.1)
        assert all(p.windowed == (p.profile == "gcc12") for p in plans)
        assert len({p.fingerprint() for p in plans}) == 8


class TestResultSerialization:
    def test_config_result_roundtrip_equality(self):
        result = make_result(make_plan())
        doc = json.loads(json.dumps(result.to_dict()))
        assert ConfigResult.from_dict(doc) == result

    def test_non_windowed_roundtrip(self):
        result = make_result(make_plan(windowed=False, profile="gcc9"))
        assert result.windowed is None
        assert ConfigResult.from_dict(result.to_dict()) == result

    def test_schema_version_checked(self):
        doc = make_result(make_plan()).to_dict()
        doc["v"] = 999
        with pytest.raises(ValueError):
            ConfigResult.from_dict(doc)

    def test_simulated_roundtrip_equality(self):
        """End-to-end: a real simulated result survives the JSON trip."""
        from repro.harness.experiments import run_config
        from repro.workloads.stream import Stream, StreamParams

        wl = Stream(StreamParams(n=32, ntimes=1))
        result = run_config(wl, "rv64", "gcc12", windowed=True,
                            window_sizes=(8,))
        doc = json.loads(json.dumps(result.to_dict()))
        assert ConfigResult.from_dict(doc) == result


class TestCache:
    def test_put_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = make_plan()
        result = make_result(plan)
        cache.put(plan, result, seconds=1.5)
        assert cache.get(plan) == result
        assert cache.stats.hits == 1 and cache.stats.puts == 1

    def test_miss_on_different_plan(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = make_plan()
        cache.put(plan, make_result(plan))
        assert cache.get(make_plan(scale=0.5)) is None
        assert cache.stats.misses == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = make_plan()
        path = cache.put(plan, make_result(plan))
        path.write_text("{ truncated")
        assert cache.get(plan) is None
        assert cache.stats.errors == 1

    def test_entries_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for scale in (0.1, 0.2, 0.3):
            plan = make_plan(scale=scale)
            cache.put(plan, make_result(plan))
        entries = cache.entries()
        assert len(entries) == 3
        assert all(e.plan is not None and e.bytes > 0 for e in entries)
        assert cache.disk_stats()["entries"] == 3
        assert cache.clear() == 3
        assert cache.disk_stats()["entries"] == 0


class TestExecutor:
    def test_cache_hit_skips_simulation(self, tmp_path, monkeypatch):
        calls = []

        def fake_execute(plan, trace_store=None, warm_cache=None):
            calls.append(plan)
            return make_result(plan)

        monkeypatch.setattr(executor_mod, "execute_plan", fake_execute)
        plans = plan_suite(0.02, workloads=("stream",), windowed=True,
                          window_sizes=(4,))
        cache = ResultCache(tmp_path)
        first = Executor(cache=cache).run(plans)
        assert len(calls) == 4

        second = Executor(cache=ResultCache(tmp_path)).run(plans)
        assert len(calls) == 4  # zero new simulations
        assert second == first

    def test_events_sequence(self, monkeypatch):
        monkeypatch.setattr(
            executor_mod, "execute_plan",
            lambda plan, trace_store=None, warm_cache=None: make_result(plan))
        plans = plan_suite(0.02, workloads=("stream",), windowed=False)
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        timing = TimingCollector()
        bus.subscribe(timing)
        Executor(events=bus).run(plans)
        kinds = [type(e).__name__ for e in seen]
        assert kinds[0] == "SuiteStarted"
        assert kinds[-1] == "SuiteFinished"
        assert kinds.count("PlanStarted") == 4
        assert kinds.count("PlanFinished") == 4
        assert timing.summary()["executed"] == 4

    def test_retry_then_fail_is_experiment_error(self, monkeypatch):
        attempts = []

        def flaky(plan, trace_store=None, warm_cache=None):
            attempts.append(plan)
            raise OSError("transient-looking failure")

        monkeypatch.setattr(executor_mod, "execute_plan", flaky)
        plans = plan_suite(0.02, workloads=("stream",),
                          windowed=False)[:1]
        with pytest.raises(ExperimentError):
            Executor(retries=1).run(plans)
        assert len(attempts) == 2  # original + one retry

    def test_retry_recovers(self, monkeypatch):
        state = {"failed": False}

        def once_flaky(plan, trace_store=None, warm_cache=None):
            if not state["failed"]:
                state["failed"] = True
                raise OSError("first attempt dies")
            return make_result(plan)

        monkeypatch.setattr(executor_mod, "execute_plan", once_flaky)
        plans = plan_suite(0.02, workloads=("stream",), windowed=False)[:1]
        results = Executor(retries=1).run(plans)
        assert results[plans[0]] == make_result(plans[0])

    def test_parallel_matches_serial_byte_identical(self):
        from repro.harness import run_figure1, run_figure2, run_table1, run_table2

        kwargs = dict(workloads=("stream",), windowed=True,
                      window_sizes=(4, 16))
        serial = Executor(jobs=1).run_suite(0.02, **kwargs)
        parallel = Executor(jobs=2).run_suite(0.02, **kwargs)

        def render(suite):
            return "\n".join([
                run_figure1(suite=suite).render(),
                run_table1(suite=suite).render(),
                run_table2(suite=suite).render(),
                run_figure2(suite=suite).render(),
            ])

        assert render(serial) == render(parallel)
        assert serial.configs == parallel.configs

    def test_bad_args(self):
        with pytest.raises(ExperimentError):
            Executor(jobs=0)
        with pytest.raises(ExperimentError):
            Executor(timeout=-1)


class TestSharedSuite:
    def test_figures_share_one_suite(self, monkeypatch):
        runs = []
        real_run_suite = experiments.run_suite

        def counting_run_suite(*args, **kwargs):
            runs.append(args)
            return real_run_suite(*args, **kwargs)

        monkeypatch.setattr(experiments, "run_suite", counting_run_suite)
        monkeypatch.setattr(
            executor_mod, "execute_plan",
            lambda plan, trace_store=None, warm_cache=None: make_result(plan))
        experiments.clear_suite_memo()
        try:
            experiments.run_figure1(0.02)
            experiments.run_table1(0.02)
            experiments.run_table2(0.02)
            assert len(runs) == 1  # one shared suite, not three
            experiments.run_figure2(0.02, window_sizes=(4, 16))
            assert len(runs) == 2  # windowed suite is a second (shared) one
            experiments.run_figure2(0.02, window_sizes=(4, 16))
            assert len(runs) == 2
        finally:
            experiments.clear_suite_memo()

    def test_figure2_without_windowed_raises_experiment_error(self, monkeypatch):
        monkeypatch.setattr(
            executor_mod, "execute_plan",
            lambda plan, trace_store=None, warm_cache=None: make_result(plan))
        suite = Executor().run_suite(0.02, workloads=("stream",),
                                     windowed=False)
        with pytest.raises(ExperimentError):
            experiments.run_figure2(suite=suite)


class TestCliSubcommands:
    def _run(self, argv, capsys):
        from repro.harness.cli import main
        rc = main(argv)
        captured = capsys.readouterr()
        return rc, captured.out, captured.err

    def test_run_then_report_from_cache(self, tmp_path, capsys, monkeypatch):
        calls = []
        real = executor_mod.execute_plan

        def counting(plan, trace_store=None, warm_cache=None):
            calls.append(plan)
            return real(plan, trace_store, warm_cache=warm_cache)

        monkeypatch.setattr(executor_mod, "execute_plan", counting)
        cache_dir = tmp_path / "cache"
        common = ["--scale", "0.02", "--workloads", "stream",
                  "--windows", "4,16", "--cache-dir", str(cache_dir)]
        rc, out, _err = self._run(["run", *common, "--quiet"], capsys)
        assert rc == 0
        assert "Figure 1" in out and "Table 2" in out
        assert len(calls) == 4

        # second run: all cache hits, zero simulations
        rc, out, err = self._run(["run", *common], capsys)
        assert rc == 0
        assert len(calls) == 4
        assert "4 cache hits" in err and "0 simulated" in err

        # report renders from cache without simulating
        out_dir = tmp_path / "artifacts"
        rc, out, err = self._run(
            ["report", *common, "--out", str(out_dir)], capsys)
        assert rc == 0
        assert len(calls) == 4
        assert "zero simulations" in err
        for fname in ("kernelCounts.txt", "basicCPResult.txt",
                      "scaledCPResult.txt", "windowAverages.txt"):
            assert (out_dir / fname).read_text().strip(), fname

    def test_report_on_empty_cache_errors(self, tmp_path, capsys):
        rc, _out, err = self._run(
            ["report", "--scale", "0.02", "--workloads", "stream",
             "--cache-dir", str(tmp_path / "empty"), "--quiet"], capsys)
        assert rc == 2
        assert "not in the cache" in err

    def test_cache_subcommands(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        plan = make_plan()
        cache.put(plan, make_result(plan), seconds=2.0)

        rc, out, _ = self._run(["cache", "ls", "--cache-dir",
                                str(cache_dir)], capsys)
        assert rc == 0 and "stream/rv64/gcc12" in out

        rc, out, _ = self._run(["cache", "stats", "--cache-dir",
                                str(cache_dir)], capsys)
        assert rc == 0 and "entries    : 1" in out

        rc, out, _ = self._run(["cache", "clear", "--cache-dir",
                                str(cache_dir)], capsys)
        assert rc == 0 and "removed 1" in out
        assert ResultCache(cache_dir).disk_stats()["entries"] == 0

    def test_implicit_run_removed(self, tmp_path, capsys, monkeypatch):
        # The PR-1 flag-only invocation is gone: no silent run, just a
        # clear pointer at the subcommands.
        monkeypatch.setattr(
            executor_mod, "execute_plan",
            lambda plan, trace_store=None, warm_cache=None: make_result(plan))
        rc, out, err = self._run(
            ["--scale", "0.02", "--workloads", "stream", "--skip-windowed",
             "--cache-dir", str(tmp_path / "c")], capsys)
        assert rc == 2
        assert "run|report|cache|fuzz" in err
        assert "Table 1" not in out

        rc, _out, err = self._run([], capsys)
        assert rc == 2
        assert "run|report|cache|fuzz" in err
