"""Tests for the generic two-pass assembler (directives, labels, layout)."""

import pytest

from repro.asm import assemble
from repro.asm.assembler import split_operands
from repro.common import AssemblerError


def asm(src, isa, **kw):
    return assemble("    .text\n_start:\n    nop\n" + src, isa, **kw)


class TestSplitOperands:
    def test_simple(self):
        assert split_operands("a0, a1, 42") == ["a0", "a1", "42"]

    def test_brackets_protect_commas(self):
        assert split_operands("d1, [x22, x0, lsl #3]") == [
            "d1", "[x22, x0, lsl #3]"
        ]
        assert split_operands("a0, 0(a1)") == ["a0", "0(a1)"]

    def test_strings_protected(self):
        assert split_operands('"a, b", c') == ['"a, b"', "c"]

    def test_unbalanced_raises(self):
        with pytest.raises(AssemblerError):
            split_operands("a, [x0, b")


class TestLabelsAndSymbols:
    def test_labels_get_addresses(self, rv64):
        prog = assemble("""
    .text
_start:
    nop
second:
    nop
""", rv64)
        assert prog.symbols["second"] == prog.symbols["_start"] + 4
        assert prog.entry == prog.symbols["_start"]

    def test_duplicate_label_rejected(self, rv64):
        with pytest.raises(AssemblerError):
            assemble("    .text\n_start:\nx:\nx:\n    nop\n", rv64)

    def test_label_on_same_line(self, rv64):
        prog = assemble("    .text\n_start: nop\nfoo: nop\n", rv64)
        assert prog.symbols["foo"] == prog.symbols["_start"] + 4

    def test_missing_entry_rejected(self, rv64):
        with pytest.raises(AssemblerError):
            assemble("    .text\nfoo:\n    nop\n", rv64)

    def test_main_accepted_as_entry(self, rv64):
        prog = assemble("    .text\nmain:\n    nop\n", rv64)
        assert prog.entry == prog.symbols["main"]

    def test_numeric_labels_repeat(self, rv64):
        prog = assemble("""
    .text
_start:
1:
    j 1f
    nop
1:
    j 1b
""", rv64)
        assert prog is not None  # both references resolved


class TestDataDirectives:
    def test_dword_word_half_byte(self, rv64):
        prog = assemble("""
    .text
_start:
    nop
    .data
vals:
    .byte 1, 2
    .half 0x1234
    .word 0xdeadbeef
    .dword 0x1122334455667788
""", rv64)
        data = prog.sections[".data"].data
        assert data[0] == 1 and data[1] == 2
        assert data[2:4] == (0x1234).to_bytes(2, "little")
        assert data[4:8] == (0xDEADBEEF).to_bytes(4, "little")
        assert data[8:16] == (0x1122334455667788).to_bytes(8, "little")

    def test_double_float(self, rv64):
        import struct
        prog = assemble("""
    .text
_start:
    nop
    .data
vals:
    .double 1.5
    .float 0.25
""", rv64)
        data = prog.sections[".data"].data
        assert struct.unpack_from("<d", data, 0)[0] == 1.5
        assert struct.unpack_from("<f", data, 8)[0] == 0.25

    def test_zero_and_align(self, rv64):
        prog = assemble("""
    .text
_start:
    nop
    .data
a:
    .byte 1
    .align 3
b:
    .dword 2
c:
    .zero 24
d:
    .byte 3
""", rv64)
        assert prog.symbols["b"] - prog.symbols["a"] == 8
        assert prog.symbols["d"] - prog.symbols["c"] == 24

    def test_strings(self, rv64):
        prog = assemble("""
    .text
_start:
    nop
    .data
s:
    .asciz "hi\\n"
""", rv64)
        assert bytes(prog.sections[".data"].data[:4]) == b"hi\n\x00"

    def test_negative_values_wrap(self, rv64):
        prog = assemble("""
    .text
_start:
    nop
    .data
v:
    .dword -1
""", rv64)
        assert prog.sections[".data"].data[:8] == b"\xff" * 8

    def test_symbol_as_data_value(self, rv64):
        prog = assemble("""
    .text
_start:
    nop
    .data
v:
    .dword v
""", rv64)
        addr = prog.symbols["v"]
        assert prog.sections[".data"].data[:8] == addr.to_bytes(8, "little")


class TestRegions:
    def test_region_ranges(self, rv64):
        prog = assemble("""
    .text
_start:
    nop
    .region alpha
    nop
    nop
    .endregion
    nop
""", rv64)
        assert len(prog.regions) == 1
        region = prog.regions[0]
        assert region.name == "alpha"
        assert region.end - region.start == 8
        assert region.contains(region.start)
        assert not region.contains(region.end)

    def test_nested_regions(self, rv64):
        prog = assemble("""
    .text
_start:
    .region outer
    nop
    .region inner
    nop
    .endregion
    nop
    .endregion
""", rv64)
        names = {r.name for r in prog.regions}
        assert names == {"outer", "inner"}

    def test_unterminated_region(self, rv64):
        with pytest.raises(AssemblerError):
            assemble("    .text\n_start:\n    .region x\n    nop\n", rv64)

    def test_endregion_without_region(self, rv64):
        with pytest.raises(AssemblerError):
            assemble("    .text\n_start:\n    .endregion\n", rv64)


class TestEquates:
    def test_equ_substitution(self, rv64):
        prog = assemble("""
    .text
    .equ N, 64
_start:
    li a0, N
""", rv64)
        assert prog is not None

    def test_equ_in_data(self, rv64):
        prog = assemble("""
    .text
    .equ MAGIC, 99
_start:
    nop
    .data
v:
    .dword MAGIC
""", rv64)
        assert prog.sections[".data"].data[:8] == (99).to_bytes(8, "little")


class TestErrors:
    def test_unknown_directive(self, rv64):
        with pytest.raises(AssemblerError):
            assemble("    .text\n_start:\n    .bogus 1\n", rv64)

    def test_unknown_instruction(self, rv64):
        with pytest.raises(AssemblerError) as err:
            assemble("    .text\n_start:\n    frobnicate a0\n", rv64)
        assert "frobnicate" in str(err.value)

    def test_undefined_symbol(self, rv64):
        with pytest.raises(AssemblerError) as err:
            assemble("    .text\n_start:\n    j nowhere\n", rv64)
        assert "nowhere" in str(err.value)

    def test_instructions_in_data_section(self, rv64):
        with pytest.raises(AssemblerError):
            assemble("    .text\n_start:\n    nop\n    .data\n    nop\n", rv64)

    def test_error_carries_line_number(self, rv64):
        with pytest.raises(AssemblerError) as err:
            assemble("    .text\n_start:\n    nop\n    badinsn\n", rv64)
        assert "line 4" in str(err.value)


class TestLayout:
    def test_custom_bases(self, rv64):
        prog = assemble(
            "    .text\n_start:\n    nop\n    .data\nv:\n    .dword 1\n",
            rv64, text_base=0x20000, data_base=0x300000,
        )
        assert prog.symbols["_start"] == 0x20000
        assert prog.symbols["v"] == 0x300000

    def test_comments_stripped(self, rv64):
        prog = assemble("""
    .text
# full-line hash comment
_start:
    nop          // inline slash comment
    nop
""", rv64)
        assert len(prog.sections[".text"].data) == 8
