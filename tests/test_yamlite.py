"""Tests for the yamlite YAML-subset parser and dumper."""

import pytest
from hypothesis import given, strategies as st

from repro import yamlite
from repro.yamlite import YamlError


class TestScalars:
    def test_integers(self):
        assert yamlite.loads("a: 42") == {"a": 42}
        assert yamlite.loads("a: -7") == {"a": -7}
        assert yamlite.loads("a: 0x1F") == {"a": 31}

    def test_floats(self):
        assert yamlite.loads("a: 2.5") == {"a": 2.5}
        assert yamlite.loads("a: 1e-3") == {"a": 1e-3}

    def test_booleans_and_null(self):
        assert yamlite.loads("a: true\nb: false\nc: null\nd: ~") == {
            "a": True, "b": False, "c": None, "d": None,
        }

    def test_strings(self):
        assert yamlite.loads('a: hello') == {"a": "hello"}
        assert yamlite.loads('a: "quoted: str"') == {"a": "quoted: str"}
        assert yamlite.loads("a: 'single'") == {"a": "single"}

    def test_empty_value_is_null(self):
        assert yamlite.loads("a:") == {"a": None}


class TestStructure:
    def test_nested_mapping(self):
        doc = yamlite.loads(
            "core:\n  name: tx2\n  latencies:\n    fp_mul: 6\n    load: 4\n"
        )
        assert doc == {"core": {"name": "tx2",
                                "latencies": {"fp_mul": 6, "load": 4}}}

    def test_block_sequence(self):
        assert yamlite.loads("- 1\n- 2\n- three\n") == [1, 2, "three"]

    def test_sequence_under_key(self):
        assert yamlite.loads("sizes:\n  - 4\n  - 16\n") == {"sizes": [4, 16]}

    def test_flow_sequence(self):
        assert yamlite.loads("sizes: [4, 16, 64]") == {"sizes": [4, 16, 64]}
        assert yamlite.loads("empty: []") == {"empty": []}

    def test_nested_flow_sequence(self):
        assert yamlite.loads("m: [[1, 2], [3, 4]]") == {"m": [[1, 2], [3, 4]]}

    def test_sequence_of_mappings(self):
        doc = yamlite.loads("- name: a\n  value: 1\n- name: b\n  value: 2\n")
        assert doc == [{"name": "a", "value": 1}, {"name": "b", "value": 2}]

    def test_comments_ignored(self):
        doc = yamlite.loads("# header\na: 1  # trailing\nb: 2\n")
        assert doc == {"a": 1, "b": 2}

    def test_hash_inside_quotes_kept(self):
        assert yamlite.loads('a: "x # y"') == {"a": "x # y"}


class TestErrors:
    def test_duplicate_key(self):
        with pytest.raises(YamlError):
            yamlite.loads("a: 1\na: 2")

    def test_tab_indentation(self):
        with pytest.raises(YamlError):
            yamlite.loads("a:\n\tb: 1")

    def test_bad_line(self):
        with pytest.raises(YamlError):
            yamlite.loads("a: 1\njust words with spaces no colon\n")

    def test_unbalanced_flow(self):
        with pytest.raises(YamlError):
            yamlite.loads("a: [1, 2")

    def test_empty_document(self):
        assert yamlite.loads("") is None
        assert yamlite.loads("# only a comment\n") is None


# strategy for round-trippable documents
_scalars = st.one_of(
    st.integers(min_value=-(10 ** 12), max_value=10 ** 12),
    st.booleans(),
    st.none(),
    st.text(
        alphabet=st.sampled_from("abcdefghijklmnop qz_-."), min_size=1, max_size=12
    ).map(str.strip).filter(bool),
)
_keys = st.text(alphabet=st.sampled_from("abcdefgh_"), min_size=1, max_size=8)
_documents = st.recursive(
    st.dictionaries(_keys, _scalars, min_size=1, max_size=4),
    lambda children: st.one_of(
        st.dictionaries(_keys, children, min_size=1, max_size=3),
        st.dictionaries(_keys, st.lists(_scalars, min_size=1, max_size=4),
                        min_size=1, max_size=3),
    ),
    max_leaves=8,
)


class TestDumper:
    def test_dump_simple(self):
        text = yamlite.dumps({"a": 1, "b": [1, 2], "c": {"d": True}})
        assert yamlite.loads(text) == {"a": 1, "b": [1, 2], "c": {"d": True}}

    def test_dump_quotes_tricky_strings(self):
        doc = {"a": "true", "b": "123", "c": "has: colon"}
        assert yamlite.loads(yamlite.dumps(doc)) == doc

    @given(_documents)
    def test_roundtrip(self, doc):
        assert yamlite.loads(yamlite.dumps(doc)) == doc


class TestBundledModels:
    def test_parse_every_bundled_model_file(self):
        from repro.sim.config import available_models, load_core_model

        names = available_models()
        assert {"tx2", "tx2-riscv", "a64fx", "m1-firestorm", "ideal"} <= set(names)
        for name in names:
            model = load_core_model(name)
            assert model.clock_ghz > 0
