"""Property-based compiler correctness: random programs vs Python semantics.

Hypothesis generates random integer expression trees; the same expression is
evaluated by Python (with C-style semantics for division and shifts) and by
the compiled binary on both ISAs under both profiles. Any divergence —
parser, code generation, register allocation, ISA semantics, simulator —
fails the property.
"""

from hypothesis import given, settings, strategies as st

from repro.common import u64, s64
from tests.conftest import compile_and_run

# variables available to generated expressions, with fixed values
VARS = {"va": 13, "vb": -7, "vc": 1000003, "vd": -2}


class Node:
    """Expression tree that can render to kernelc and evaluate in Python."""

    def __init__(self, op, left=None, right=None, value=None):
        self.op = op
        self.left = left
        self.right = right
        self.value = value

    def render(self) -> str:
        if self.op == "lit":
            return str(self.value)
        if self.op == "var":
            return self.value
        if self.op == "neg":
            return f"(-{self.left.render()})"
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def evaluate(self) -> int:
        if self.op == "lit":
            return self.value
        if self.op == "var":
            return VARS[self.value]
        if self.op == "neg":
            return s64(u64(-self.left.evaluate()))
        a = self.left.evaluate()
        b = self.right.evaluate()
        if self.op == "+":
            return s64(u64(a + b))
        if self.op == "-":
            return s64(u64(a - b))
        if self.op == "*":
            return s64(u64(a * b))
        if self.op == "&":
            return s64(u64(a) & u64(b))
        if self.op == "|":
            return s64(u64(a) | u64(b))
        if self.op == "^":
            return s64(u64(a) ^ u64(b))
        if self.op == "<<":
            return s64(u64(a << (b & 7)))
        if self.op == ">>":
            return a >> (b & 7)  # arithmetic shift on signed a
        if self.op == "/":
            if b == 0:
                return 0  # avoided by construction
            q = abs(a) // abs(b)
            return -q if (a < 0) != (b < 0) else q
        if self.op == "%":
            if b == 0:
                return 0
            q = abs(a) // abs(b)
            q = -q if (a < 0) != (b < 0) else q
            return s64(u64(a - q * b))
        raise AssertionError(self.op)


def _shift_safe(node: Node) -> Node:
    """Mask shift amounts to 0..7 so Python and hardware agree."""
    masked = Node("&", node, Node("lit", value=7))
    return masked


_leaf = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(lambda v: Node("lit", value=v)),
    st.sampled_from(sorted(VARS)).map(lambda n: Node("var", value=n)),
)


def _combine(children):
    safe_ops = st.sampled_from(["+", "-", "*", "&", "|", "^"])
    shift_ops = st.sampled_from(["<<", ">>"])
    div_ops = st.sampled_from(["/", "%"])
    return st.one_of(
        st.tuples(safe_ops, children, children).map(
            lambda t: Node(t[0], t[1], t[2])
        ),
        st.tuples(shift_ops, children, children).map(
            lambda t: Node(t[0], t[1], _shift_safe(t[2]))
        ),
        # divisor made non-zero: (d | 1) after masking to a small range
        st.tuples(div_ops, children, children).map(
            lambda t: Node(
                t[0], t[1],
                Node("|", Node("&", t[2], Node("lit", value=255)),
                     Node("lit", value=1)),
            )
        ),
        children.map(lambda c: Node("neg", c)),
    )


_exprs = st.recursive(_leaf, _combine, max_leaves=12)


@settings(max_examples=30, deadline=None)
@given(_exprs)
def test_random_integer_expressions(expr):
    decls = "\n".join(f"  long {name} = {value};" for name, value in VARS.items())
    src = f"""
global long out;
func long main() {{
{decls}
  out = {expr.render()};
  return 0;
}}
"""
    expected = expr.evaluate()
    for isa in ("rv64", "aarch64"):
        for profile in ("gcc9", "gcc12"):
            _r, machine, compiled = compile_and_run(src, isa, profile)
            got = machine.memory.load(compiled.image.symbol("out"), 8, signed=True)
            assert got == expected, (
                f"{isa}/{profile}: {expr.render()} = {got}, expected {expected}"
            )


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=12),
    st.integers(min_value=1, max_value=3),
)
def test_random_array_reduction(values, step):
    """Sum every `step`-th element of a random array, both ISAs."""
    literals = ", ".join(str(v) for v in values)
    n = len(values)
    src = f"""
global long data[{n}] = {{ {literals} }};
global long out;
func long main() {{
  long total = 0;
  for (long j = 0; j < {n}; j = j + {step}) {{
    total = total + data[j];
  }}
  out = total;
  return 0;
}}
"""
    expected = sum(values[::step])
    for isa in ("rv64", "aarch64"):
        _r, machine, compiled = compile_and_run(src, isa, "gcc12")
        got = machine.memory.load(compiled.image.symbol("out"), 8, signed=True)
        assert got == expected


@settings(max_examples=15, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=10))
def test_random_double_reduction_exact(values):
    """FP serial sums must match Python's exactly (same IEEE-754 ops)."""
    literals = ", ".join(repr(v) for v in values)
    n = len(values)
    src = f"""
global double data[{n}] = {{ {literals} }};
global double out;
func long main() {{
  double total = 0.0;
  for (long j = 0; j < {n}; j = j + 1) {{
    total = total + data[j];
  }}
  out = total;
  return 0;
}}
"""
    expected = 0.0
    for v in values:
        expected = expected + v
    for isa in ("rv64", "aarch64"):
        _r, machine, compiled = compile_and_run(src, isa, "gcc9")
        got = machine.memory.load_f64(compiled.image.symbol("out"))
        assert got == expected


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=60),
       st.integers(min_value=1, max_value=60))
def test_loop_trip_counts(start, extent):
    """Loop bounds: every (start, bound) combination iterates exactly
    max(0, bound-start) times on both ISAs and both profiles."""
    bound = start + extent - 30  # sometimes negative extent -> zero trips
    src = f"""
global long out;
func long main() {{
  long n = 0;
  for (long j = {start}; j < {bound}; j = j + 1) {{ n = n + 1; }}
  out = n;
  return 0;
}}
"""
    expected = max(0, bound - start)
    for isa in ("rv64", "aarch64"):
        for profile in ("gcc9", "gcc12"):
            _r, machine, compiled = compile_and_run(src, isa, profile)
            got = machine.memory.load(compiled.image.symbol("out"), 8)
            assert got == expected
