"""Distributed tier tests: protocol framing, lease-based scatter,
fault windows (connect refused, registration race, mid-plan socket cut,
torn result frame, duplicate replay, heartbeat hang vs dead), graceful
node drain, degrade-to-local, and the chaos headline — ``kill -9`` one
of two real worker subprocesses mid-suite and require byte-identical
artifacts with zero plans lost and zero double-counted, asserted
against the lease journal.

In-process tests share module-scoped *node* caches (execution is
idempotent, so remote nodes answering from their own caches is the
production behavior) but give every dispatcher a fresh daemon-side
cache, so plans always actually go remote.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.harness import faults
from repro.harness.cache import ResultCache
from repro.harness.events import (DistStats, EventBus, NodeJoined, NodeLost,
                                  PlanRedispatched)
from repro.harness.executor import Executor
from repro.harness.experiments import run_suite
from repro.harness.faults import FaultPlan, FaultSpec
from repro.harness.plan import plan_suite
from repro.dist.dispatcher import Dispatcher
from repro.dist.protocol import Framed, ProtocolError
from repro.dist.worker import WorkerNode
from repro.serve.app import assemble_suite, render_suite_artifacts
from repro.serve.journal import (JobJournal, lease_records,
                                 unfinished_jobs)

SCALE = 0.02
PARAMS = {"scale": SCALE, "workloads": ["stream"], "windowed": False,
          "window_sizes": ()}


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def plans():
    return plan_suite(SCALE, workloads=("stream",), windowed=False)


@pytest.fixture(scope="module")
def expected_artifacts(tmp_path_factory):
    """The byte-identity baseline: a direct serial run_suite rendering."""
    cache = ResultCache(tmp_path_factory.mktemp("direct-cache"))
    suite = run_suite(SCALE, workloads=("stream",), windowed=False,
                      jobs=1, cache=cache, verbose=False)
    return render_suite_artifacts(suite, windowed=False)


@pytest.fixture(scope="module")
def node_caches(tmp_path_factory):
    """Each in-process node's own cache, shared across tests: the first
    test pays the simulations, later ones are remote cache hits."""
    return [tmp_path_factory.mktemp("node1"), tmp_path_factory.mktemp("node2")]


@pytest.fixture
def tier(tmp_path, node_caches):
    """Factory for (dispatcher, nodes): fresh daemon cache per test,
    module-shared node caches, full teardown."""
    made = []

    def _make(n_nodes=2, dispatcher_kw=None, node_kw=None, events=None):
        executor = Executor(jobs=1, cache=ResultCache(tmp_path / "daemon"),
                            persistent=True, events=events)
        dispatcher = Dispatcher(
            executor=executor,
            **dict({"lease_timeout": 30.0, "node_heartbeat": 3.0},
                   **(dispatcher_kw or {})))
        host, port = dispatcher.start_listener()
        nodes = [
            WorkerNode(host, port, name=f"t{os.getpid()}-{len(made)}-{i}",
                       cache_root=node_caches[i % len(node_caches)],
                       **dict({"heartbeat": 0.5}, **(node_kw or {})))
            for i in range(n_nodes)
        ]
        for node in nodes:
            node.start_background()
        if n_nodes:
            assert dispatcher.wait_for_nodes(n_nodes, timeout=15.0), \
                "worker nodes never registered"
        made.append((dispatcher, executor, nodes))
        return dispatcher, nodes

    yield _make
    for dispatcher, executor, nodes in made:
        for node in nodes:
            node.stop(timeout=5.0)
        dispatcher.close()
        executor.close()


def rendered(results):
    return render_suite_artifacts(assemble_suite(PARAMS, results),
                                  windowed=False)


def assert_leases_consistent(cache_root, job_id, *, plans):
    """The exactly-once-accounting proof, read back from the journal.

    Every granted lease settles at least once and no lease is granted
    twice. A lease *may* settle more than once — a requeued lease whose
    late replica still lands settles again as ``duplicate``/``stale`` —
    but it is never accounted ``ok`` twice, and no plan fingerprint is
    accounted ``ok`` through two different leases (zero double-counted).
    """
    grants, settlements = lease_records(cache_root, job_id)
    granted = [doc["lease"] for doc in grants]
    assert len(granted) == len(set(granted)), "a lease id was granted twice"
    statuses: dict = {}
    for doc in settlements:
        statuses.setdefault(doc["lease_done"], []).append(doc["status"])
    unsettled = [lease for lease in granted if lease not in statuses]
    assert not unsettled, f"granted leases never settled: {unsettled}"
    unknown = sorted(set(statuses) - set(granted))
    assert not unknown, f"settlements for unknown leases: {unknown}"
    fp_by_lease = {doc["lease"]: doc["fp"] for doc in grants}
    for lease, outcomes in statuses.items():
        assert outcomes.count("ok") <= 1, \
            f"lease {lease} accounted ok twice: {outcomes}"
    ok_fps = [fp_by_lease[lease] for lease, outcomes in statuses.items()
              if "ok" in outcomes]
    assert len(ok_fps) == len(set(ok_fps)), \
        "a plan was accounted ok twice (double count)"
    want = {plan.fingerprint() for plan in plans}
    assert set(fp_by_lease.values()) <= want, \
        "a lease names a fingerprint outside the suite"
    return grants, settlements


# ------------------------------------------------------------- protocol

class TestProtocol:
    def _pair(self):
        a, b = socket.socketpair()
        return Framed(a), Framed(b)

    def test_roundtrip_and_interleaving(self):
        a, b = self._pair()
        a.send({"type": "x", "n": 1})
        a.send({"type": "y", "n": 2})
        assert b.recv(timeout=5.0) == {"type": "x", "n": 1}
        assert b.recv(timeout=5.0) == {"type": "y", "n": 2}
        a.close()
        with pytest.raises(EOFError):
            b.recv(timeout=5.0)
        b.close()

    def test_torn_frame_is_protocol_error(self):
        a, b = self._pair()
        a.send_raw(b'{"type": "result", "ok": tr')  # torn mid-token
        with pytest.raises(ProtocolError):
            b.recv(timeout=5.0)
        a.close()
        b.close()

    def test_timeout_preserves_partial_frame(self):
        a, b = self._pair()
        a.sock.sendall(b'{"half": ')  # no newline yet
        with pytest.raises(TimeoutError):
            b.recv(timeout=0.1)
        a.sock.sendall(b'1}\n')
        assert b.recv(timeout=5.0) == {"half": 1}
        a.close()
        b.close()


# -------------------------------------------------------- happy scatter

class TestScatter:
    def test_zero_nodes_is_exactly_local(self, tmp_path, plans,
                                         expected_artifacts):
        executor = Executor(jobs=1, cache=ResultCache(tmp_path / "c"),
                            persistent=True)
        dispatcher = Dispatcher(executor=executor)
        try:
            results = dispatcher.run(plans)
            assert rendered(results) == expected_artifacts
            assert dispatcher.counters["dispatched"] == 0
        finally:
            executor.close()

    def test_two_nodes_byte_identical(self, tier, plans,
                                      expected_artifacts):
        dispatcher, _nodes = tier()
        results = dispatcher.run(plans)
        assert list(results) == list(plans)  # input order preserved
        assert rendered(results) == expected_artifacts
        assert dispatcher.counters["completed"] == len(plans)
        assert dispatcher.counters["local_fallback"] == 0

    def test_lease_journaled_before_dispatch(self, tier, tmp_path, plans,
                                             expected_artifacts):
        dispatcher, _nodes = tier()
        journal = JobJournal.create(tmp_path / "daemon", PARAMS,
                                    total=len(plans), run_id="job-lease")
        results = dispatcher.run(plans, journal=journal)
        journal.finish()
        assert rendered(results) == expected_artifacts
        grants, _settlements = assert_leases_consistent(
            tmp_path / "daemon", "job-lease", plans=plans)
        assert len(grants) == dispatcher.counters["dispatched"]

    def test_dist_stats_event_emitted(self, tier, plans):
        bus = EventBus()
        stats = []
        bus.subscribe(lambda e: stats.append(e)
                      if isinstance(e, DistStats) else None)
        dispatcher, _nodes = tier(events=bus)
        dispatcher.run(plans)
        assert len(stats) == 1
        assert stats[0].stats["completed"] == len(plans)


# ------------------------------------------------------- fault windows

class TestFaultWindows:
    def test_daemon_side_socket_cut_redispatches(self, tier, tmp_path,
                                                 plans,
                                                 expected_artifacts):
        """The frame left the daemon; the connection dies before any
        result comes back. The lease must be redispatched and the
        artifacts must not notice."""
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e)
                      if isinstance(e, (NodeLost, PlanRedispatched))
                      else None)
        dispatcher, _nodes = tier(events=bus)
        journal = JobJournal.create(tmp_path / "daemon", PARAMS,
                                    total=len(plans), run_id="job-cut")
        faults.install(FaultPlan([FaultSpec(
            site="dist", kind="transient",
            plan=f"dispatch:{plans[0].describe()}", at=(1,))]))
        try:
            results = dispatcher.run(plans, journal=journal)
        finally:
            faults.uninstall()
        journal.finish()
        assert rendered(results) == expected_artifacts
        assert dispatcher.counters["nodes_lost"] >= 1
        assert any(isinstance(e, NodeLost) and e.reason == "cut"
                   for e in seen)
        assert any(isinstance(e, PlanRedispatched) for e in seen)
        assert_leases_consistent(tmp_path / "daemon", "job-cut",
                                 plans=plans)

    def test_duplicate_result_replay_deduped(self, tier, tmp_path, plans,
                                             expected_artifacts):
        dispatcher, _nodes = tier()
        journal = JobJournal.create(tmp_path / "daemon", PARAMS,
                                    total=len(plans), run_id="job-dup")
        faults.install(FaultPlan([FaultSpec(
            site="dist", kind="duplicate",
            plan=f"result:{plans[0].describe()}", at=(1,))]))
        try:
            results = dispatcher.run(plans, journal=journal)
        finally:
            faults.uninstall()
        journal.finish()
        assert rendered(results) == expected_artifacts
        assert dispatcher.counters["duplicates_dropped"] >= 1
        assert dispatcher.counters["completed"] == len(plans)
        assert_leases_consistent(tmp_path / "daemon", "job-dup",
                                 plans=plans)

    def test_torn_result_frame_recovers(self, tier, plans,
                                        expected_artifacts):
        """A result frame torn on the wire faults the stream; the
        worker's buffered intact copy reconciles on reconnect (or the
        lease redispatches) — either way, bytes identical."""
        dispatcher, _nodes = tier()
        faults.install(FaultPlan([FaultSpec(
            site="dist", kind="truncate",
            plan=f"result:{plans[0].describe()}", at=(1,))]))
        try:
            results = dispatcher.run(plans)
        finally:
            faults.uninstall()
        assert rendered(results) == expected_artifacts
        assert dispatcher.counters["nodes_lost"] >= 1
        assert dispatcher.counters["completed"] == len(plans)

    def test_hang_vs_dead_discrimination(self, tier, plans,
                                         expected_artifacts):
        """A wedged node keeps its socket open but stops beating: the
        dispatcher must call it *hung* (not dead) and redispatch."""
        bus = EventBus()
        lost = []
        bus.subscribe(lambda e: lost.append(e)
                      if isinstance(e, NodeLost) else None)
        dispatcher, _nodes = tier(
            events=bus, dispatcher_kw={"node_heartbeat": 2.0},
            node_kw={"reconnect": False})
        faults.install(FaultPlan([FaultSpec(
            site="dist", kind="hang",
            plan=f"task:{plans[0].describe()}", at=(1,), seconds=60.0)]))
        try:
            results = dispatcher.run(plans)
        finally:
            faults.uninstall()
        assert rendered(results) == expected_artifacts
        assert [e.reason for e in lost].count("hung") == 1

    def test_dead_node_detected_immediately(self, tier, plans):
        """EOF/reset is *dead* — no heartbeat budget burned."""
        bus = EventBus()
        lost = []
        bus.subscribe(lambda e: lost.append(e)
                      if isinstance(e, NodeLost) else None)
        dispatcher, nodes = tier(events=bus)
        nodes[0].stop(timeout=5.0)  # closes the socket under the daemon
        deadline = time.monotonic() + 5.0
        while not lost and time.monotonic() < deadline:
            time.sleep(0.02)
        assert [e.reason for e in lost] == ["dead"]

    def test_registration_race_retries_and_joins(self, tier):
        dispatcher, nodes = tier(n_nodes=0)
        name = "racer"
        faults.install(FaultPlan([FaultSpec(
            site="dist", kind="transient", plan=f"register:{name}",
            at=(1,))]))
        try:
            node = WorkerNode(*dispatcher._listener.getsockname()[:2],
                              name=name, heartbeat=0.5)
            nodes.append(node)  # fixture teardown
            node.start_background()
            assert dispatcher.wait_for_nodes(1, timeout=15.0)
        finally:
            faults.uninstall()
        node.stop(timeout=5.0)

    def test_connect_refused_backs_off_and_retries(self, tier):
        dispatcher, nodes = tier(n_nodes=0)
        name = "dialer"
        faults.install(FaultPlan([FaultSpec(
            site="dist", kind="transient", plan=f"connect:{name}",
            at=(1,))]))
        try:
            node = WorkerNode(*dispatcher._listener.getsockname()[:2],
                              name=name, heartbeat=0.5)
            nodes.append(node)
            node.start_background()
            assert dispatcher.wait_for_nodes(1, timeout=15.0)
        finally:
            faults.uninstall()
        node.stop(timeout=5.0)


# ---------------------------------------------- drain / degrade / serve

class TestDrainAndDegrade:
    def test_graceful_node_drain(self, tier, plans, expected_artifacts):
        bus = EventBus()
        lost = []
        bus.subscribe(lambda e: lost.append(e)
                      if isinstance(e, NodeLost) else None)
        dispatcher, nodes = tier(events=bus)
        assert dispatcher.drain_node(nodes[0].name) is True
        # wait for both ends: the worker's farewell AND the daemon
        # processing it (the worker flags `drained` before the daemon
        # reads the frame)
        deadline = time.monotonic() + 10.0
        while ((not nodes[0].drained or not lost)
               and time.monotonic() < deadline):
            time.sleep(0.02)
        assert nodes[0].drained
        assert [e.reason for e in lost] == ["drained"]
        assert dispatcher.drain_node("nonexistent") is False
        # the suite still completes on the remaining node
        results = dispatcher.run(plans)
        assert rendered(results) == expected_artifacts

    def test_last_node_dies_degrades_to_local(self, tier, plans,
                                              expected_artifacts):
        """Degrade, never fail: both nodes cut mid-suite, no reconnect
        — the daemon's local pool finishes the suite byte-identically."""
        dispatcher, _nodes = tier(node_kw={"reconnect": False})
        faults.install(FaultPlan([FaultSpec(
            site="dist", kind="transient", plan="dispatch:",
            at=(1, 2))]))
        try:
            results = dispatcher.run(plans)
        finally:
            faults.uninstall()
        assert rendered(results) == expected_artifacts
        assert dispatcher.counters["nodes_lost"] == 2
        assert dispatcher.counters["local_fallback"] >= 1

    def test_node_joined_rejoined_flags(self, tier, plans):
        bus = EventBus()
        joined = []
        bus.subscribe(lambda e: joined.append(e)
                      if isinstance(e, NodeJoined) else None)
        dispatcher, _nodes = tier(events=bus)
        deadline = time.monotonic() + 10.0
        while len(joined) < 2 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert sorted(e.rejoined for e in joined) == [False, False]
        faults.install(FaultPlan([FaultSpec(
            site="dist", kind="transient",
            plan=f"dispatch:{plans[0].describe()}", at=(1,))]))
        try:
            dispatcher.run(plans)
        finally:
            faults.uninstall()
        deadline = time.monotonic() + 10.0
        while len(joined) < 3 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert any(e.rejoined for e in joined[2:]), \
            "the cut node never re-registered as a rejoin"


# ------------------------------------------------------- chaos headline

class TestChaosKillWorker:
    """The acceptance headline: two real worker subprocesses, one
    ``kill -9``ed mid-suite. The suite must complete byte-identical to
    a serial run with zero plans lost and zero double-counted —
    asserted against the lease journal, not just the artifacts."""

    def _spawn(self, args, cache_dir):
        import repro
        from pathlib import Path

        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ, REPRO_ISA_CACHE_DIR=str(cache_dir))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro.harness.cli"] + args,
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)

    def test_sigkill_worker_mid_suite(self, tmp_path, plans,
                                      expected_artifacts):
        from repro.serve.client import ServeClient

        cache_dir = tmp_path / "cache"
        ready = tmp_path / "ready.json"
        daemon = self._spawn(
            ["serve", "--port", "0", "--jobs", "1", "--dist-port", "0",
             "--lease-timeout", "30", "--node-heartbeat", "3",
             "--ready-file", str(ready), "--quiet"], cache_dir)
        workers = []
        try:
            deadline = time.monotonic() + 60.0
            while not ready.exists():
                if daemon.poll() is not None:
                    raise AssertionError(
                        "daemon died at startup: "
                        + daemon.stderr.read().decode("utf-8", "replace"))
                assert time.monotonic() < deadline, "daemon never ready"
                time.sleep(0.05)
            info = json.loads(ready.read_text())
            assert info["dist_port"], "daemon did not open a dist port"
            for i in (1, 2):
                workers.append(self._spawn(
                    ["worker", "--connect",
                     f"{info['host']}:{info['dist_port']}",
                     "--name", f"chaos-{i}",
                     "--cache-dir", str(tmp_path / f"node{i}"),
                     "--quiet"], cache_dir))
            client = ServeClient(info["host"], info["port"])
            deadline = time.monotonic() + 60.0
            while client.nodes()["live"] < 2:
                assert time.monotonic() < deadline, "workers never joined"
                time.sleep(0.05)

            job_id = client.submit(PARAMS, client="chaos")["job"]
            # kill -9 one worker once at least one plan has settled and
            # the suite is still in flight
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                _grants, settlements = lease_records(cache_dir, job_id)
                if any(doc["status"] == "ok" for doc in settlements):
                    break
                time.sleep(0.02)
            else:
                raise AssertionError("no lease settled ok within 300s")
            workers[0].send_signal(signal.SIGKILL)
            workers[0].wait(30)

            job = client.wait(job_id, timeout=600.0)
            assert job["state"] == "done", job
            nodes_doc = client.nodes()
            assert nodes_doc["counters"]["nodes_lost"] >= 1, \
                "the dispatcher never observed the killed node"

            # zero lost, zero double-counted: every granted lease
            # settled, every plan was actually dispatched, no plan
            # accounted ok twice (the helper asserts dedup)
            grants, _settlements = assert_leases_consistent(
                cache_dir, job_id, plans=plans)
            want = {plan.fingerprint() for plan in plans}
            assert {doc["fp"] for doc in grants} == want, \
                "some plan never appeared in the lease ledger"

            # byte-identical to the direct serial rendering
            for name, text in expected_artifacts.items():
                assert client.artifact(job_id, name) == text, name

            workers[1].send_signal(signal.SIGTERM)
            assert workers[1].wait(30) == 0, \
                "surviving worker did not drain cleanly on SIGTERM"
            client.drain()
            assert daemon.wait(60) == 0
            assert job_id not in unfinished_jobs(cache_dir), \
                "a done job's journal was left unfinished"
        finally:
            for proc in [daemon] + workers:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(30)
