"""Tests for the objdump / runelf binary utilities."""

import pytest

from repro.compiler import compile_source
from repro.loader import build_elf
from repro.tools.objdump import disassemble_image, main as objdump_main
from repro.tools.runelf import main as runelf_main

SRC = """
global double a[50];
global double out;
func long main() {
  region "fill" {
    for (long j = 0; j < 50; j = j + 1) { a[j] = (double)(j); }
  }
  double s = 0.0;
  for (long j = 0; j < 50; j = j + 1) { s = s + a[j]; }
  out = s;
  return 3;
}
"""


@pytest.fixture(scope="module", params=["rv64", "aarch64"])
def elf_path(request, tmp_path_factory):
    compiled = compile_source(SRC, request.param, "gcc12")
    path = tmp_path_factory.mktemp("elfs") / f"prog-{request.param}.elf"
    path.write_bytes(compiled.elf_bytes)
    return path


class TestObjdump:
    def test_disassembles_whole_text(self, elf_path):
        from repro.loader import load_elf
        image = load_elf(elf_path.read_bytes())
        text = disassemble_image(image)
        # symbol labels present
        assert "<main>:" in text and "<_start>:" in text
        # region markers present
        assert "region fill" in text
        # every executable word decoded (no .word fallbacks in our output)
        assert ".word" not in text

    def test_cli(self, elf_path, capsys):
        assert objdump_main([str(elf_path)]) == 0
        out = capsys.readouterr().out
        assert "entry" in out
        assert "<main>:" in out

    def test_data_segments_mentioned(self, elf_path, capsys):
        objdump_main([str(elf_path), "--show-data"])
        out = capsys.readouterr().out
        assert "data" in out


class TestRunElf:
    def test_exit_code_propagates(self, elf_path):
        assert runelf_main([str(elf_path)]) == 3

    def test_analyze_report(self, elf_path, capsys):
        runelf_main([str(elf_path), "--analyze", "--model", "tx2"])
        out = capsys.readouterr().out
        assert "path length by region" in out
        assert "fill" in out
        assert "critical path:" in out
        assert "scaled CP (tx2):" in out
        assert "branches:" in out

    def test_instruction_cap(self, elf_path):
        from repro.common import SimulationError
        with pytest.raises(SimulationError):
            runelf_main([str(elf_path), "--max-instructions", "10"])
