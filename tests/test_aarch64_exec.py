"""Execution tests for scalar AArch64: assembler → ELF → decoder → executor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import MASK64, u64
from tests.conftest import run_a64


def a64_regs(body: str, isa, data: str = ""):
    _result, machine, _image = run_a64(body, isa, data)
    return machine


class TestMovesAndImmediates:
    def test_mov_imm_forms(self, aarch64):
        m = a64_regs("""
    mov x0, #42
    mov x1, #0xffff
    mov w2, #7
    mov x3, #-1
    mov x4, #-17
""", aarch64)
        assert m.r[0] == 42
        assert m.r[1] == 0xFFFF
        assert m.r[2] == 7
        assert m.r[3] == MASK64
        assert m.r[4] == u64(-17)

    def test_movz_movk_compose(self, aarch64):
        m = a64_regs("""
    movz x0, #0x1234, lsl #16
    movk x0, #0x5678
""", aarch64)
        assert m.r[0] == 0x12345678

    def test_movn(self, aarch64):
        m = a64_regs("    movn x0, #0\n    movn w1, #5\n", aarch64)
        assert m.r[0] == MASK64
        assert m.r[1] == u64(~5) & 0xFFFFFFFF

    @pytest.mark.parametrize("value", [
        0, 1, -1, 0xFFFF, 0x10000, 0x12345678, -(1 << 31),
        0xDEADBEEFCAFEBABE, (1 << 63) - 1, -(1 << 63),
    ])
    def test_movl_pseudo(self, aarch64, value):
        m = a64_regs(f"    movl x0, #{value}\n", aarch64)
        assert m.r[0] == u64(value)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_movl_random(self, aarch64, value):
        m = a64_regs(f"    movl x0, #{value}\n", aarch64)
        assert m.r[0] == u64(value)

    def test_mov_reg_and_sp(self, aarch64):
        m = a64_regs("""
    mov x0, #64
    mov x1, x0
    mov x2, sp
""", aarch64)
        assert m.r[1] == 64
        assert m.r[2] == m.stack_top


class TestArithmetic:
    def test_add_sub_imm(self, aarch64):
        m = a64_regs("""
    mov x0, #100
    add x1, x0, #23
    sub x2, x0, #1
    add x3, x0, #1, lsl #12
""", aarch64)
        assert m.r[1] == 123
        assert m.r[2] == 99
        assert m.r[3] == 100 + 4096

    def test_add_shifted_register(self, aarch64):
        m = a64_regs("""
    mov x0, #3
    mov x1, #16
    add x2, x1, x0, lsl #2
    sub x3, x1, x0, lsl #1
""", aarch64)
        assert m.r[2] == 16 + 12
        assert m.r[3] == 16 - 6

    def test_add_extended_register(self, aarch64):
        m = a64_regs("""
    movl x0, #0x1ffffffff
    mov x1, #0
    add x2, x1, w0, uxtw
    add x3, x1, w0, sxtw #2
""", aarch64)
        assert m.r[2] == 0xFFFFFFFF
        assert m.r[3] == u64(-4)  # sxtw(0xFFFFFFFF) = -1, << 2

    def test_32bit_ops_zero_upper(self, aarch64):
        m = a64_regs("""
    movl x0, #0xffffffffffffffff
    add w1, w0, #1
""", aarch64)
        assert m.r[1] == 0

    def test_madd_msub_mul(self, aarch64):
        m = a64_regs("""
    mov x0, #6
    mov x1, #7
    mov x2, #100
    madd x3, x0, x1, x2
    msub x4, x0, x1, x2
    mul x5, x0, x1
    mneg x6, x0, x1
""", aarch64)
        assert m.r[3] == 142
        assert m.r[4] == 58
        assert m.r[5] == 42
        assert m.r[6] == u64(-42)

    def test_division(self, aarch64):
        m = a64_regs("""
    mov x0, #-7
    mov x1, #2
    sdiv x2, x0, x1
    udiv x3, x1, x0
    mov x4, #0
    sdiv x5, x1, x4
""", aarch64)
        assert m.r[2] == u64(-3)   # truncate toward zero
        assert m.r[3] == 0
        assert m.r[5] == 0         # divide by zero yields 0 on AArch64

    def test_smulh_umulh(self, aarch64):
        m = a64_regs("""
    mov x0, #-1
    mov x1, #-1
    smulh x2, x0, x1
    umulh x3, x0, x1
""", aarch64)
        assert m.r[2] == 0
        assert m.r[3] == MASK64 - 1

    def test_negative_imm_flips_op(self, aarch64):
        m = a64_regs("    mov x0, #10\n    add x1, x0, #-3\n", aarch64)
        assert m.r[1] == 7


class TestLogicalAndShifts:
    def test_logical_reg(self, aarch64):
        m = a64_regs("""
    mov x0, #0xff00
    mov x1, #0x0ff0
    and x2, x0, x1
    orr x3, x0, x1
    eor x4, x0, x1
    bic x5, x0, x1
    orn x6, x0, x1
    mvn x7, x0
""", aarch64)
        assert m.r[2] == 0x0F00
        assert m.r[3] == 0xFFF0
        assert m.r[4] == 0xF0F0
        assert m.r[5] == 0xF000
        assert m.r[6] == u64(~0x0FF0) | 0xFF00
        assert m.r[7] == u64(~0xFF00)

    def test_logical_imm(self, aarch64):
        m = a64_regs("""
    movl x0, #0x123456789abcdef0
    and x1, x0, #0xff
    orr x2, x0, #0xf
    eor x3, x0, #0xff00
""", aarch64)
        assert m.r[1] == 0xF0
        assert m.r[2] == 0x123456789ABCDEFF
        assert m.r[3] == 0x123456789ABC21F0

    def test_shift_aliases(self, aarch64):
        m = a64_regs("""
    mov x0, #-16
    lsl x1, x0, #2
    lsr x2, x0, #60
    asr x3, x0, #2
    mov x4, #3
    lsl x5, x0, x4
    asr x6, x0, x4
""", aarch64)
        assert m.r[1] == u64(-64)
        assert m.r[2] == 0xF
        assert m.r[3] == u64(-4)
        assert m.r[5] == u64(-128)
        assert m.r[6] == u64(-2)

    def test_bitfield_extracts(self, aarch64):
        m = a64_regs("""
    movl x0, #0x123456789abcdef0
    ubfx x1, x0, #8, #16
    sbfx x2, x0, #4, #4
    uxtb w3, w0
    uxth w4, w0
    sxtb x5, w0
    sxtw x6, w0
""", aarch64)
        assert m.r[1] == 0xBCDE
        assert m.r[2] == u64(-1)   # field 0xF sign-extended
        assert m.r[3] == 0xF0
        assert m.r[4] == 0xDEF0
        assert m.r[5] == u64(-16)  # 0xF0 as signed byte
        assert m.r[6] == u64(0x9ABCDEF0 - (1 << 32))

    def test_clz_rbit_rev(self, aarch64):
        m = a64_regs("""
    mov x0, #0x10
    clz x1, x0
    rbit x2, x0
    movl x0, #0x0102030405060708
    rev x3, x0
""", aarch64)
        assert m.r[1] == 59
        assert m.r[2] == 0x10 << 56 >> 1  # bit 4 reversed to bit 59
        assert m.r[3] == 0x0807060504030201


class TestFlagsAndConditions:
    def test_cmp_sets_flags_for_beq(self, aarch64):
        m = a64_regs("""
    mov x0, #5
    cmp x0, #5
    mov x1, #0
    b.eq 1f
    mov x1, #99
1:
""", aarch64)
        assert m.r[1] == 0

    @pytest.mark.parametrize("a,b,cond,taken", [
        (5, 5, "eq", True), (5, 6, "eq", False),
        (5, 6, "ne", True),
        (-1, 1, "lt", True), (1, -1, "lt", False),
        (1, -1, "gt", True), (-1, -1, "gt", False),
        (-1, -1, "ge", True), (-2, -1, "le", True),
        (1, -1, "lo", True),    # unsigned: 1 < 0xFF..FF
        (-1, 1, "hi", True),    # unsigned: 0xFF..FF > 1
        (-1, 1, "hs", True),
    ])
    def test_all_conditions(self, aarch64, a, b, cond, taken):
        m = a64_regs(f"""
    movl x0, #{a}
    movl x1, #{b}
    cmp x0, x1
    mov x2, #0
    b.{cond} 1f
    mov x2, #99
1:
""", aarch64)
        assert m.r[2] == (0 if taken else 99)

    def test_subs_overflow_flag(self, aarch64):
        # INT64_MIN - 1 overflows: N=0 V=1 -> lt holds
        m = a64_regs("""
    mov x0, #-9223372036854775808
    subs x1, x0, #1
    cset x2, vs
    cset x3, lt
""", aarch64)
        assert m.r[2] == 1
        assert m.r[3] == 1

    def test_adds_carry(self, aarch64):
        m = a64_regs("""
    mov x0, #-1
    adds x1, x0, #1
    cset x2, cs
    cset x3, eq
""", aarch64)
        assert m.r[1] == 0
        assert m.r[2] == 1
        assert m.r[3] == 1

    def test_tst_and_ands(self, aarch64):
        m = a64_regs("""
    mov x0, #6
    tst x0, #1
    cset x1, eq
    ands x2, x0, #2
    cset x3, ne
""", aarch64)
        assert m.r[1] == 1
        assert m.r[2] == 2
        assert m.r[3] == 1

    def test_csel_family(self, aarch64):
        m = a64_regs("""
    mov x0, #1
    mov x1, #10
    mov x2, #20
    cmp x0, #1
    csel x3, x1, x2, eq
    csel x4, x1, x2, ne
    csinc x5, x1, x2, ne
    csinv x6, x1, x2, ne
    csneg x7, x1, x2, ne
    cset w9, eq
    cinc x10, x1, eq
""", aarch64)
        assert m.r[3] == 10
        assert m.r[4] == 20
        assert m.r[5] == 21
        assert m.r[6] == u64(~20)
        assert m.r[7] == u64(-20)
        assert m.r[9] == 1
        assert m.r[10] == 11

    def test_cbz_cbnz_tbz(self, aarch64):
        m = a64_regs("""
    mov x0, #0
    mov x1, #0
    cbz x0, 1f
    mov x1, #99
1:
    mov x2, #8
    mov x3, #0
    tbnz x2, #3, 2f
    mov x3, #99
2:
    tbz x2, #0, 3f
    mov x3, #98
3:
""", aarch64)
        assert m.r[1] == 0
        assert m.r[3] == 0


class TestLoadsStores:
    def test_unsigned_offset(self, aarch64):
        m = a64_regs("""
    adrl x0, buf
    mov x1, #-2
    str x1, [x0, #8]
    ldr x2, [x0, #8]
    ldrb w3, [x0, #8]
    ldrh w4, [x0, #8]
    ldrsb x5, [x0, #8]
    ldrsw x6, [x0, #8]
""", aarch64, data="buf:\n    .zero 32\n")
        assert m.r[2] == u64(-2)
        assert m.r[3] == 0xFE
        assert m.r[4] == 0xFFFE
        assert m.r[5] == u64(-2)
        assert m.r[6] == u64(-2)

    def test_register_offset_scaled(self, aarch64):
        m = a64_regs("""
    adrl x0, buf
    mov x1, #2
    mov x2, #777
    str x2, [x0, x1, lsl #3]
    ldr x3, [x0, x1, lsl #3]
""", aarch64, data="buf:\n    .zero 64\n")
        assert m.r[3] == 777
        assert m.memory.load(m.r[0] + 16, 8) == 777

    def test_register_offset_sxtw(self, aarch64):
        m = a64_regs("""
    adrl x0, buf
    add x0, x0, #32
    movl x1, #0xffffffff
    mov x2, #55
    str x2, [x0, w1, sxtw #3]
    ldr x3, [x0, #-8]
""", aarch64, data="buf:\n    .zero 64\n")
        assert m.r[3] == 55

    def test_pre_post_index(self, aarch64):
        m = a64_regs("""
    adrl x0, buf
    mov x1, #11
    str x1, [x0], #8
    mov x2, #22
    str x2, [x0, #8]!
    adrl x3, buf
    ldr x4, [x3]
    ldr x5, [x3, #16]
""", aarch64, data="buf:\n    .zero 64\n")
        assert m.r[4] == 11
        assert m.r[5] == 22
        # writeback: x0 advanced by 8 then by another 8
        assert m.r[0] == m.r[3] + 16

    def test_ldp_stp(self, aarch64):
        m = a64_regs("""
    adrl x0, buf
    mov x1, #1
    mov x2, #2
    stp x1, x2, [x0, #16]
    ldp x3, x4, [x0, #16]
""", aarch64, data="buf:\n    .zero 64\n")
        assert m.r[3] == 1
        assert m.r[4] == 2

    def test_ldp_stp_writeback(self, aarch64):
        m = a64_regs("""
    adrl x0, buf
    mov x1, #5
    mov x2, #6
    stp x1, x2, [x0, #-16]!
    mov x9, x0
    ldp x3, x4, [x0], #16
""", aarch64, data="    .zero 64\nbuf:\n    .zero 64\n")
        assert m.r[3] == 5 and m.r[4] == 6
        assert m.r[0] == m.r[9] + 16

    def test_ldur_stur(self, aarch64):
        m = a64_regs("""
    adrl x0, buf
    add x0, x0, #16
    mov x1, #9
    stur x1, [x0, #-8]
    ldur x2, [x0, #-8]
""", aarch64, data="buf:\n    .zero 32\n")
        assert m.r[2] == 9


class TestFloatingPoint:
    def test_arith(self, aarch64):
        m = a64_regs("""
    adrl x0, vals
    ldr d0, [x0]
    ldr d1, [x0, #8]
    fadd d2, d0, d1
    fsub d3, d0, d1
    fmul d4, d0, d1
    fdiv d5, d0, d1
    fneg d6, d0
    fabs d7, d6
    fsqrt d8, d4
""", aarch64, data="vals:\n    .double 6.0, 1.5\n")
        assert m.f[2] == 7.5
        assert m.f[3] == 4.5
        assert m.f[4] == 9.0
        assert m.f[5] == 4.0
        assert m.f[6] == -6.0
        assert m.f[7] == 6.0
        assert m.f[8] == 3.0

    def test_fma_family(self, aarch64):
        m = a64_regs("""
    adrl x0, vals
    ldr d0, [x0]
    ldr d1, [x0, #8]
    ldr d2, [x0, #16]
    fmadd d3, d0, d1, d2
    fmsub d4, d0, d1, d2
    fnmadd d5, d0, d1, d2
    fnmsub d6, d0, d1, d2
""", aarch64, data="vals:\n    .double 2.0, 3.0, 10.0\n")
        assert m.f[3] == 16.0
        assert m.f[4] == 4.0      # c - a*b = 10 - 6
        assert m.f[5] == -16.0
        assert m.f[6] == -4.0

    def test_fcmp_branches(self, aarch64):
        m = a64_regs("""
    adrl x0, vals
    ldr d0, [x0]
    ldr d1, [x0, #8]
    fcmp d0, d1
    mov x1, #0
    b.mi 1f
    mov x1, #99
1:
    fcmp d1, #0.0
    cset x2, gt
""", aarch64, data="vals:\n    .double 1.0, 2.0\n")
        assert m.r[1] == 0
        assert m.r[2] == 1

    def test_fcsel(self, aarch64):
        m = a64_regs("""
    adrl x0, vals
    ldr d0, [x0]
    ldr d1, [x0, #8]
    fcmp d0, d1
    fcsel d2, d0, d1, mi
    fcsel d3, d0, d1, gt
""", aarch64, data="vals:\n    .double 1.0, 2.0\n")
        assert m.f[2] == 1.0
        assert m.f[3] == 2.0

    def test_conversions(self, aarch64):
        m = a64_regs("""
    mov x0, #-3
    scvtf d0, x0
    mov x1, #7
    ucvtf d1, x1
    adrl x2, vals
    ldr d2, [x2]
    fcvtzs x3, d2
    fcvtzu x4, d2
""", aarch64, data="vals:\n    .double 2.75\n")
        assert m.f[0] == -3.0
        assert m.f[1] == 7.0
        assert m.r[3] == 2
        assert m.r[4] == 2

    def test_fmov_forms(self, aarch64):
        m = a64_regs("""
    fmov d0, #2.0
    fmov d1, d0
    fmov x0, d0
    movl x1, #0x3ff0000000000000
    fmov d2, x1
""", aarch64)
        assert m.f[0] == 2.0
        assert m.f[1] == 2.0
        assert m.r[0] == 0x4000000000000000
        assert m.f[2] == 1.0

    def test_movi_zeroes(self, aarch64):
        m = a64_regs("""
    fmov d3, #1.0
    movi d3, #0
""", aarch64)
        assert m.f[3] == 0.0

    def test_fminnm_fmaxnm(self, aarch64):
        m = a64_regs("""
    adrl x0, vals
    ldr d0, [x0]
    ldr d1, [x0, #8]
    fminnm d2, d0, d1
    fmaxnm d3, d0, d1
""", aarch64, data="vals:\n    .double -1.0, 3.0\n")
        assert m.f[2] == -1.0
        assert m.f[3] == 3.0

    def test_fp_register_offset_load(self, aarch64):
        m = a64_regs("""
    adrl x0, vals
    mov x1, #1
    ldr d0, [x0, x1, lsl #3]
    str d0, [x0, x1, lsl #3]
""", aarch64, data="vals:\n    .double 1.0, 42.5\n")
        assert m.f[0] == 42.5

    def test_fcvt_precisions(self, aarch64):
        m = a64_regs("""
    adrl x0, vals
    ldr d0, [x0]
    fcvt s1, d0
    fcvt d2, s1
    ldr s3, [x0, #8]
""", aarch64, data="vals:\n    .double 0.5\n    .float 0.25\n")
        assert m.f[1] == 0.5
        assert m.f[2] == 0.5
        assert m.f[3] == 0.25


class TestControlFlow:
    def test_bl_ret(self, aarch64):
        m = a64_regs("""
    bl func
    b done
func:
    mov x1, #123
    ret
done:
""", aarch64)
        assert m.r[1] == 123

    def test_br_indirect(self, aarch64):
        m = a64_regs("""
    adrl x0, target
    br x0
    mov x1, #99
target:
    mov x2, #7
""", aarch64)
        assert m.r.__getitem__(2) == 7
        assert m.r[1] == 0

    def test_countdown_loop(self, aarch64):
        m = a64_regs("""
    mov x0, #0
    mov x1, #10
loop:
    add x0, x0, #3
    subs x1, x1, #1
    b.ne loop
""", aarch64)
        assert m.r[0] == 30

    def test_stream_gcc9_idiom(self, aarch64):
        """The paper's §3.3 GCC 9.2 loop-bound idiom executes correctly."""
        m = a64_regs("""
    mov x0, #0
    mov x2, #0
loop:
    add x2, x2, #2
    add x0, x0, #1
    sub x1, x0, #2, lsl #12
    subs x1, x1, #152
    b.ne loop
""", aarch64)
        # bound = 2*4096 + 152 = 8344
        assert m.r[0] == 8344
        assert m.r[2] == 2 * 8344
