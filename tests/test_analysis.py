"""Tests for the path-length / critical-path / windowed / mix analyses.

These drive the probes two ways: with hand-constructed dependence traces
(where the critical path is known by inspection) and with real simulated
programs (where CP invariants must hold against the measured path length).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    CriticalPathProbe,
    InstructionMixProbe,
    PathLengthProbe,
    WindowedCPProbe,
    window_critical_path,
)
from repro.analysis.critpath import mem_cells
from repro.asm.program import Region
from repro.isa.base import DecodedInst, InstructionGroup
from repro.sim.config import load_core_model
from tests.conftest import run_asm


def fake_inst(srcs=(), dsts=(), group=InstructionGroup.INT_SIMPLE, pc=0,
              is_load=False, is_store=False, is_branch=False,
              mnemonic="fake"):
    return DecodedInst(
        pc, 0, mnemonic, mnemonic, group, tuple(srcs), tuple(dsts),
        lambda m: None, is_load=is_load, is_store=is_store,
        is_branch=is_branch,
    )


class TestCriticalPathHandBuilt:
    def test_serial_chain(self):
        probe = CriticalPathProbe()
        # r1 = ...; r1 = r1 + ...; r1 = r1 + ... -> chain of 3
        for _ in range(3):
            probe.on_retire(fake_inst(srcs=(1,), dsts=(1,)), (), ())
        assert probe.result().critical_path == 3

    def test_independent_instructions(self):
        probe = CriticalPathProbe()
        for reg in range(1, 6):
            probe.on_retire(fake_inst(srcs=(), dsts=(reg,)), (), ())
        result = probe.result()
        assert result.critical_path == 1
        assert result.ilp == 5.0

    def test_diamond(self):
        probe = CriticalPathProbe()
        probe.on_retire(fake_inst(dsts=(1,)), (), ())          # a
        probe.on_retire(fake_inst(srcs=(1,), dsts=(2,)), (), ())  # b = f(a)
        probe.on_retire(fake_inst(srcs=(1,), dsts=(3,)), (), ())  # c = g(a)
        probe.on_retire(fake_inst(srcs=(2, 3), dsts=(4,)), (), ())  # d = b+c
        assert probe.result().critical_path == 3

    def test_zero_register_breaks_chain(self):
        """§4.1: sources that are the zero register break the CP — decoders
        express this by omitting them, so an instruction with no sources
        starts a fresh chain."""
        probe = CriticalPathProbe()
        for _ in range(10):
            probe.on_retire(fake_inst(srcs=(1,), dsts=(1,)), (), ())
        probe.on_retire(fake_inst(srcs=(), dsts=(1,)), (), ())  # li r1, 0
        probe.on_retire(fake_inst(srcs=(1,), dsts=(1,)), (), ())
        assert probe.result().critical_path == 10

    def test_memory_carried_chain(self):
        probe = CriticalPathProbe()
        store = fake_inst(srcs=(1,), is_store=True)
        load = fake_inst(dsts=(1,), is_load=True)
        probe.on_retire(fake_inst(dsts=(1,)), (), ())       # depth 1
        probe.on_retire(store, (), [(0x100, 8)])            # depth 2 via mem
        probe.on_retire(fake_inst(dsts=(1,)), (), ())       # r1 reset, depth 1
        probe.on_retire(load, [(0x100, 8)], ())             # depth 3
        probe.on_retire(fake_inst(srcs=(1,), dsts=(2,)), (), ())  # depth 4
        assert probe.result().critical_path == 4

    def test_unaligned_access_merges_cells(self):
        probe = CriticalPathProbe()
        probe.on_retire(fake_inst(dsts=(1,)), (), ())
        probe.on_retire(fake_inst(srcs=(1,), is_store=True), (), [(0x104, 8)])
        # load overlapping the second cell
        probe.on_retire(fake_inst(dsts=(2,), is_load=True), [(0x108, 8)], ())
        assert probe.result().critical_path == 3

    def test_mem_cells(self):
        assert len(mem_cells(0x100, 8)) == 1
        assert len(mem_cells(0x104, 8)) == 2
        assert len(mem_cells(0x100, 1)) == 1


class TestScaledCriticalPath:
    def test_latency_weighting(self):
        model = load_core_model("tx2")
        probe = CriticalPathProbe(model)
        # chain of 3 FP multiplies at TX2 latency 6 -> 18
        for _ in range(3):
            probe.on_retire(
                fake_inst(srcs=(33,), dsts=(33,), group=InstructionGroup.FP_MUL),
                (), (),
            )
        assert probe.result().critical_path == 18

    def test_loads_stores_not_scaled(self):
        """§5.1: 'We do not scale for loads or stores'."""
        model = load_core_model("tx2")
        probe = CriticalPathProbe(model)
        probe.on_retire(
            fake_inst(dsts=(1,), group=InstructionGroup.LOAD, is_load=True),
            [(0x100, 8)], (),
        )
        probe.on_retire(
            fake_inst(srcs=(1,), group=InstructionGroup.STORE, is_store=True),
            (), [(0x108, 8)],
        )
        assert probe.result().critical_path == 2

    def test_ideal_model_equals_plain_cp(self, rv64):
        src = """
    .text
_start:
    li t0, 0
    li t1, 40
1:
    addi t0, t0, 1
    blt t0, t1, 1b
    li a7, 93
    li a0, 0
    ecall
"""
        from repro.asm import assemble
        from repro.loader import program_to_image
        from repro.sim import run_image

        plain = CriticalPathProbe()
        ideal = CriticalPathProbe(load_core_model("ideal"))
        image = program_to_image(assemble(src, rv64))
        run_image(image, rv64, [plain, ideal])
        assert plain.result().critical_path == ideal.result().critical_path

    def test_scaled_never_below_plain(self, rv64):
        from repro.workloads.stream import Stream, StreamParams
        from repro.workloads.base import run_workload

        plain = CriticalPathProbe()
        scaled = CriticalPathProbe(load_core_model("tx2-riscv"))
        run_workload(Stream(StreamParams(n=64, ntimes=1)), "rv64", "gcc12",
                     [plain, scaled])
        assert scaled.result().critical_path >= plain.result().critical_path


class TestCriticalPathInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(
            st.lists(st.integers(min_value=1, max_value=8), max_size=2),
            st.lists(st.integers(min_value=1, max_value=8), min_size=1,
                     max_size=2),
        ),
        min_size=1, max_size=40,
    ))
    def test_cp_bounds(self, trace):
        probe = CriticalPathProbe()
        for srcs, dsts in trace:
            probe.on_retire(fake_inst(srcs=srcs, dsts=dsts), (), ())
        result = probe.result()
        assert 1 <= result.critical_path <= len(trace)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(
            st.lists(st.integers(min_value=1, max_value=6), max_size=2),
            st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                     max_size=1),
        ),
        min_size=2, max_size=30,
    ))
    def test_prefix_monotone(self, trace):
        """CP of a longer prefix can never be shorter."""
        probe = CriticalPathProbe()
        previous = 0
        for srcs, dsts in trace:
            probe.on_retire(fake_inst(srcs=srcs, dsts=dsts), (), ())
            current = probe.result().critical_path
            assert current >= previous
            previous = current


class TestWindowCriticalPath:
    def test_window_function_matches_probe(self):
        items = [((1,), (1,), InstructionGroup.INT_SIMPLE)] * 5
        assert window_critical_path(items) == 5

    def test_independent_items(self):
        items = [((), (i,), InstructionGroup.INT_SIMPLE) for i in range(1, 9)]
        assert window_critical_path(items) == 1

    def test_windowed_probe_statistics(self):
        probe = WindowedCPProbe(window_sizes=(4,), slide_fraction=0.5)
        chain = fake_inst(srcs=(1,), dsts=(1,))
        for _ in range(8):
            probe.on_retire(chain, (), ())
        results = probe.results()[4]
        # windows: [0:4], [2:6], [4:8] (CP 4 each) + the final partial
        # buffer [6:8] (CP 2)
        assert results.count == 4
        assert results.mean_cp == 3.5
        assert results.mean_ilp == pytest.approx(4 / 3.5)
        assert results.max_cp == 4 and results.min_cp == 2

    def test_window_smaller_than_trace_tail(self):
        probe = WindowedCPProbe(window_sizes=(4,))
        for _ in range(5):
            probe.on_retire(fake_inst(srcs=(1,), dsts=(1,)), (), ())
        results = probe.results()[4]
        # [0:4] emitted at fill, then the remaining buffer [2:5] at finish
        assert results.count == 2

    def test_mean_ilp_nondecreasing_with_window_for_parallel_code(self):
        probe = WindowedCPProbe(window_sizes=(4, 16, 64))
        # fully parallel trace: every window's CP is 1
        for i in range(200):
            probe.on_retire(fake_inst(srcs=(), dsts=(1 + i % 8,)), (), ())
        results = probe.results()
        assert results[4].mean_ilp <= results[16].mean_ilp <= results[64].mean_ilp

    def test_window_cp_bounded_by_full_cp(self, rv64):
        src = """
    .text
_start:
    li t0, 0
    li t1, 30
1:
    addi t0, t0, 1
    blt t0, t1, 1b
    li a7, 93
    li a0, 0
    ecall
"""
        from repro.asm import assemble
        from repro.loader import program_to_image
        from repro.sim import run_image

        full = CriticalPathProbe()
        windowed = WindowedCPProbe(window_sizes=(8,), keep_cps=True)
        image = program_to_image(assemble(src, rv64))
        run_image(image, rv64, [full, windowed])
        full_cp = full.result().critical_path
        for cp in windowed.results()[8].cps:
            assert cp <= min(8, full_cp)

    def test_bad_slide_fraction(self):
        with pytest.raises(ValueError):
            WindowedCPProbe(slide_fraction=0.0)
        with pytest.raises(ValueError):
            WindowedCPProbe(slide_fraction=1.5)


class TestPathLength:
    def test_region_attribution(self):
        regions = [Region("kern", 0x100, 0x110)]
        probe = PathLengthProbe(regions)
        probe.on_retire(fake_inst(pc=0x0FC), (), ())
        probe.on_retire(fake_inst(pc=0x100), (), ())
        probe.on_retire(fake_inst(pc=0x10C), (), ())
        probe.on_retire(fake_inst(pc=0x110), (), ())
        result = probe.result()
        assert result.total == 4
        assert result.per_region == {"other": 2, "kern": 2}
        assert result.fraction("kern") == 0.5

    def test_real_program_regions(self, rv64):
        result, _machine, image = run_asm("""
    .text
_start:
    li t0, 0
    li t1, 8
    .region loop
1:
    addi t0, t0, 1
    blt t0, t1, 1b
    .endregion
    li a7, 93
    li a0, 0
    ecall
""", rv64)
        from repro.loader import program_to_image
        from repro.sim import run_image
        probe = PathLengthProbe(image.regions)
        run_image(image, rv64, [probe])
        counts = probe.result()
        assert counts.per_region["loop"] == 16
        assert counts.total == 16 + 5


class TestInstructionMix:
    def test_branch_accounting(self, rv64):
        from repro.asm import assemble
        from repro.loader import program_to_image
        from repro.sim import run_image

        probe = InstructionMixProbe()
        image = program_to_image(assemble("""
    .text
_start:
    li t0, 0
    li t1, 10
1:
    addi t0, t0, 1
    blt t0, t1, 1b
    li a7, 93
    li a0, 0
    ecall
""", rv64))
        run_image(image, rv64, [probe])
        mix = probe.result()
        assert mix.total == 2 + 20 + 3
        assert mix.branches == 10
        assert mix.conditional_branches == 10
        assert mix.flag_setters == 0         # no NZCV on RISC-V
        assert mix.by_mnemonic["blt"] == 10
        assert mix.top_mnemonics(1)[0][0] in ("addi", "blt")

    def test_aarch64_flag_setters(self, aarch64):
        from repro.asm import assemble
        from repro.loader import program_to_image
        from repro.sim import run_image

        probe = InstructionMixProbe()
        image = program_to_image(assemble("""
    .text
_start:
    mov x0, #0
    mov x1, #10
1:
    add x0, x0, #1
    cmp x0, x1
    b.ne 1b
    mov x8, #93
    mov x0, #0
    svc #0
""", aarch64))
        run_image(image, aarch64, [probe])
        mix = probe.result()
        assert mix.flag_setters == 10        # the cmp per iteration
        assert mix.conditional_branches == 10
        # the paper's §3.3 argument: flag-setter fraction ~ branch fraction
        assert mix.flag_setter_fraction == pytest.approx(
            mix.conditional_branch_fraction
        )
