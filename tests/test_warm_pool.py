"""Warm persistent worker pool tests.

The warm pool's contract is *invisibility*: plans executed on long-lived
workers with cross-plan warm caches must produce artifacts byte-identical
to fresh-process execution, in any order, through worker recycling, and
through injected warm-state corruption. These tests pin that contract:

* the full paper matrix renders byte-identically warm vs fresh;
* plan results are independent of which plans ran before them on the
  same worker (randomized orderings, fixed seeds);
* a garbled warm image is caught by the fingerprint re-check, the
  worker is recycled as poisoned, and the plan retries to success;
* retries of transient failures reuse the live worker (no re-fork);
* ``AttemptRecord.warm`` records whether a failed attempt ran warm;
* the on-disk block store round-trips and quarantines corruption.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.harness import faults
from repro.harness.cache import BlockStore
from repro.harness.events import (
    CacheCorruption,
    EventBus,
    PlanFailed,
    WarmCacheStats,
    WorkerRecycled,
)
from repro.harness.executor import Executor, SuiteExecutionError
from repro.harness.faults import FaultPlan, FaultSpec
from repro.harness.plan import ExperimentPlan


#: Small real plans (distinct binaries and one shared-image analysis
#: variant) — fast at scale 0.02, deterministic results.
PLAN_STREAM = ExperimentPlan(workload="stream", isa="rv64", profile="gcc12",
                             scale=0.02, windowed=False)
PLAN_STREAM_WIN = PLAN_STREAM.with_overrides(windowed=True, window_sizes=(4,))
PLAN_LBM = ExperimentPlan(workload="lbm", isa="rv64", profile="gcc12",
                          scale=0.02, windowed=False)
PLAN_STREAM_A64 = ExperimentPlan(workload="stream", isa="aarch64",
                                 profile="gcc12", scale=0.02, windowed=False)


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.uninstall()


def capture_bus():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    return bus, seen


def docs(results) -> dict:
    """Canonical JSON per plan — byte-level result identity."""
    return {plan.describe() + f"/w{plan.windowed}": json.dumps(
        result.to_dict(), sort_keys=True)
        for plan, result in results.items()}


def pool_executor(**kw) -> Executor:
    """A warm-pool Executor forced onto the pool path even on one core
    (an explicit heartbeat makes the run supervised)."""
    kw.setdefault("jobs", 1)
    kw.setdefault("heartbeat", 30.0)
    kw.setdefault("warm_pool", True)
    return Executor(**kw)


class TestByteIdentity:
    def test_full_matrix_warm_pool_matches_fresh_process(self):
        """The whole paper matrix (5 workloads x 2 ISAs x 2 profiles),
        rendered figure/table artifacts byte-identical warm vs fresh."""
        from repro.harness import (
            run_figure1, run_figure2, run_table1, run_table2)

        kwargs = dict(windowed=True, window_sizes=(4,))
        fresh = Executor(jobs=1, warm_pool=False).run_suite(0.02, **kwargs)
        warm = Executor(jobs=2, heartbeat=60.0,
                        warm_pool=True).run_suite(0.02, **kwargs)

        def render(suite):
            return "\n".join([
                run_figure1(suite=suite).render(),
                run_table1(suite=suite).render(),
                run_table2(suite=suite).render(),
                run_figure2(suite=suite).render(),
            ])

        assert render(fresh) == render(warm)
        assert fresh.configs == warm.configs

    def test_serial_warm_path_matches_fresh_process(self):
        """jobs=1 unsupervised routes through the in-process warm cache;
        results must still be byte-identical to fresh execution."""
        plans = [PLAN_STREAM, PLAN_STREAM_WIN, PLAN_STREAM_A64]
        fresh = Executor(jobs=1, warm_pool=False).run(plans)
        warm = Executor(jobs=1, warm_pool=True).run(plans)
        assert docs(fresh) == docs(warm)


class TestIsolation:
    def test_results_independent_of_plan_order_on_reused_worker(self):
        """Property: a plan's result does not depend on which plans ran
        before it on the same warm worker (fixed-seed random orders,
        one persistent worker so every ordering is a maximal reuse
        chain)."""
        plans = [PLAN_STREAM, PLAN_STREAM_WIN, PLAN_LBM, PLAN_STREAM_A64]
        baseline = docs(Executor(jobs=1, warm_pool=False).run(plans))
        for seed in (0, 1, 2):
            shuffled = list(plans)
            random.Random(seed).shuffle(shuffled)
            results = pool_executor().run(shuffled)
            assert docs(results) == baseline, f"order seed {seed} diverged"


class TestWarmFaultRecovery:
    def test_garbled_warm_image_recycles_worker_and_retries(self):
        """The ``warm`` data fault corrupts a reused worker's cached
        image; the fingerprint re-check catches it, the worker is
        recycled as poisoned, and the plan retries to success — plans
        never fail."""
        plans = [PLAN_STREAM, PLAN_STREAM_WIN]  # same image, reused
        baseline = docs(Executor(jobs=1, warm_pool=False).run(plans))
        faults.install(FaultPlan([FaultSpec(
            site="warm", kind="garble", at=(1,))]))
        bus, seen = capture_bus()
        results = pool_executor(retries=1, backoff=0.01, events=bus).run(plans)
        faults.uninstall()
        assert docs(results) == baseline
        terminal = [e for e in seen
                    if isinstance(e, PlanFailed) and not e.will_retry]
        assert terminal == []
        poisoned = [e for e in seen if isinstance(e, WorkerRecycled)
                    and e.reason == "poisoned"]
        assert len(poisoned) == 1

    def test_attempt_record_carries_warm_flag(self):
        """A failed attempt records whether it ran on a reused worker:
        the second task on a single persistent worker is warm."""
        faults.install(FaultPlan([FaultSpec(
            site="worker", kind="error", plan="lbm", attempts=(1,))]))
        with pytest.raises(SuiteExecutionError) as exc:
            pool_executor(retries=0).run([PLAN_STREAM, PLAN_LBM])
        faults.uninstall()
        reports = exc.value.reports
        assert len(reports) == 1 and reports[0].plan == PLAN_LBM
        assert reports[0].attempts[0].warm is True

    def test_cold_attempt_recorded_as_not_warm(self):
        faults.install(FaultPlan([FaultSpec(
            site="worker", kind="error", plan="stream", attempts=(1,))]))
        with pytest.raises(SuiteExecutionError) as exc:
            pool_executor(retries=0).run([PLAN_STREAM, PLAN_LBM])
        faults.uninstall()
        reports = exc.value.reports
        assert len(reports) == 1 and reports[0].plan == PLAN_STREAM
        assert reports[0].attempts[0].warm is False


class TestWorkerLifecycle:
    def test_retry_reuses_live_worker(self):
        """A transient failure retries on the still-healthy worker —
        no mid-run recycle, only the end-of-suite shutdown."""
        faults.install(FaultPlan([FaultSpec(
            site="worker", kind="transient", plan="lbm", attempts=(1,))]))
        bus, seen = capture_bus()
        results = pool_executor(retries=1, backoff=0.01,
                                events=bus).run([PLAN_STREAM, PLAN_LBM])
        faults.uninstall()
        assert len(results) == 2
        retried = [e for e in seen
                   if isinstance(e, PlanFailed) and e.will_retry]
        assert len(retried) == 1
        recycles = [e for e in seen if isinstance(e, WorkerRecycled)]
        assert recycles and all(e.reason == "shutdown" for e in recycles)

    def test_max_tasks_per_worker_recycles(self):
        plans = [PLAN_STREAM, PLAN_STREAM_WIN, PLAN_LBM]
        baseline = docs(Executor(jobs=1, warm_pool=False).run(plans))
        bus, seen = capture_bus()
        results = pool_executor(max_tasks_per_worker=1,
                                events=bus).run(plans)
        assert docs(results) == baseline
        recycled = [e for e in seen if isinstance(e, WorkerRecycled)
                    and e.reason == "max-tasks"]
        assert len(recycled) >= 2
        assert all(e.tasks == 1 for e in recycled)

    def test_warm_cache_stats_emitted(self):
        """The suite-end WarmCacheStats event reports image reuse and
        translation reuse when plans share an image."""
        bus, seen = capture_bus()
        Executor(jobs=1, warm_pool=True,
                 events=bus).run([PLAN_STREAM, PLAN_STREAM_WIN])
        stats = [e for e in seen if isinstance(e, WarmCacheStats)]
        assert len(stats) == 1
        doc = stats[0].stats
        assert doc["image_hits"] >= 1
        assert doc["translation_reuse_hits"] > 0


class TestBlockStore:
    KEY = "ab" + "0" * 62

    def test_roundtrip(self, tmp_path):
        store = BlockStore(tmp_path)
        store.put(self.KEY, ["b = 2", "a = 1"], cp_sources=["c = 3"])
        doc = store.get(self.KEY)
        assert doc["sources"] == ["a = 1", "b = 2"]
        assert doc["cp_sources"] == ["c = 3"]
        assert store.stats.hits == 1 and store.stats.puts == 1

    def test_corruption_quarantined_never_reparsed(self, tmp_path):
        bus, seen = capture_bus()
        store = BlockStore(tmp_path, events=bus)
        path = store.put(self.KEY, ["a = 1"])
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.get(self.KEY) is None
        assert store.stats.quarantined == 1
        corruption = [e for e in seen if isinstance(e, CacheCorruption)]
        assert len(corruption) == 1 and corruption[0].level == "block"
        # quarantined entries become plain misses, never re-parsed
        assert store.get(self.KEY) is None
        assert store.stats.quarantined == 1

    def test_cold_process_preload_from_block_store(self, tmp_path):
        """A ResultCache-backed run persists block sources; a later run
        with cleared in-process caches preloads them from disk instead
        of re-deriving (block_store_hits > 0, blocks_preloaded > 0)."""
        from repro.analysis import blocksummary
        from repro.harness.cache import ResultCache
        from repro.sim import blocks

        # start cold: earlier tests in the session may already have
        # compiled this workload's blocks in-process, and sources are
        # only persisted to disk when they are freshly derived
        blocks.clear_code_cache()
        blocksummary._CP_CODE_CACHE.clear()

        cache = ResultCache(tmp_path)
        Executor(jobs=1, warm_pool=True, cache=cache).run([PLAN_STREAM])
        assert cache.disk_stats()["block_entries"] >= 1

        # model a cold process: forget every compiled block source and
        # drop the result/trace levels so the plan really re-executes
        blocks.clear_code_cache()
        blocksummary._CP_CODE_CACHE.clear()
        for path in list(tmp_path.glob("??/*.json")):
            path.unlink()
        for path in list((tmp_path / "traces").glob("??/*.rtrc.z")):
            path.unlink()

        bus, seen = capture_bus()
        Executor(jobs=1, warm_pool=True, cache=ResultCache(tmp_path),
                 events=bus).run([PLAN_STREAM])
        stats = [e for e in seen if isinstance(e, WarmCacheStats)]
        assert stats and stats[0].stats["blocks_preloaded"] > 0
        assert stats[0].stats["block_store_hits"] > 0
