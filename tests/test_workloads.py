"""Workload tests: every benchmark validates against its NumPy reference on
both ISAs and both compiler profiles, and carries the metadata the harness
needs (kernel regions, scaling knobs)."""

import pytest

from repro.workloads import ALL_WORKLOADS, get_workload, run_workload
from repro.workloads.cloverleaf import CloverLeaf, CloverParams
from repro.workloads.lbm import Lbm, LbmParams
from repro.workloads.minibude import MiniBude, BudeParams
from repro.workloads.minisweep import MiniSweep, SweepParams
from repro.workloads.stream import Stream, StreamParams

TINY = {
    "stream": Stream(StreamParams(n=64, ntimes=2)),
    "cloverleaf": CloverLeaf(CloverParams(nx=8, ny=8, steps=2)),
    "lbm": Lbm(LbmParams(nx=8, ny=8, iters=2)),
    "minibude": MiniBude(BudeParams(nposes=2, natlig=3, natpro=8)),
    "minisweep": MiniSweep(SweepParams(ncx=2, ncy=2, ncz=2, na=3, nsweeps=1)),
}

CONFIGS = [
    ("rv64", "gcc9"), ("rv64", "gcc12"),
    ("aarch64", "gcc9"), ("aarch64", "gcc12"),
]


@pytest.mark.parametrize("name", sorted(TINY))
@pytest.mark.parametrize("isa,profile", CONFIGS,
                         ids=[f"{i}-{p}" for i, p in CONFIGS])
class TestValidation:
    def test_outputs_match_reference(self, name, isa, profile):
        run = run_workload(TINY[name], isa, profile)  # raises on mismatch
        assert run.result.exit_code == 0
        assert run.path_length > 0


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
class TestMetadata:
    def test_kernel_regions_present_in_binary(self, name):
        workload = TINY[name]
        compiled = workload.compile("rv64", "gcc12")
        region_names = {r.name for r in compiled.image.regions}
        for kernel in workload.kernels:
            assert kernel in region_names

    def test_at_scale_produces_runnable_workload(self, name):
        workload = ALL_WORKLOADS[name].at_scale(0.1)
        assert workload.source()
        assert workload.expected()

    def test_expected_keys_are_globals(self, name):
        workload = TINY[name]
        compiled = workload.compile("rv64", "gcc12")
        for key in workload.expected():
            assert key in compiled.image.symbols


class TestWorkloadRegistry:
    def test_get_workload_by_name(self):
        workload = get_workload("stream", scale=0.05)
        assert workload.name == "stream"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_workload("spec2017")

    def test_all_five_registered(self):
        assert sorted(ALL_WORKLOADS) == [
            "cloverleaf", "lbm", "minibude", "minisweep", "stream",
        ]


class TestPaperShapes:
    """The qualitative shapes from Table 1 / §3.3, at small scale."""

    def test_minibude_riscv_shorter(self):
        """The branch-heavy pair loop favors fused compare-and-branch."""
        wl = MiniBude(BudeParams(nposes=2, natlig=4, natpro=32))
        rv = run_workload(wl, "rv64", "gcc12").path_length
        arm = run_workload(wl, "aarch64", "gcc12").path_length
        assert rv < arm

    def test_lbm_aarch64_shorter(self):
        """Generic gather addressing favors register-offset loads."""
        wl = Lbm(LbmParams(nx=10, ny=10, iters=2))
        rv = run_workload(wl, "rv64", "gcc12").path_length
        arm = run_workload(wl, "aarch64", "gcc12").path_length
        assert arm < rv

    def test_stream_gcc12_improves_aarch64_only(self):
        """§3.3: the sub/subs → cmp fix (large constant bounds only)."""
        wl = Stream(StreamParams(n=5000, ntimes=1))
        arm9 = run_workload(wl, "aarch64", "gcc9").path_length
        arm12 = run_workload(wl, "aarch64", "gcc12").path_length
        rv9 = run_workload(wl, "rv64", "gcc9").path_length
        rv12 = run_workload(wl, "rv64", "gcc12").path_length
        assert arm12 < arm9
        assert rv12 == rv9

    def test_stream_branch_fraction(self):
        """§3.3: RISC-V STREAM executes roughly 15% branches."""
        from repro.analysis import InstructionMixProbe
        probe = InstructionMixProbe()
        wl = Stream(StreamParams(n=512, ntimes=2))
        run_workload(wl, "rv64", "gcc12", [probe])
        fraction = probe.result().branch_fraction
        assert 0.10 < fraction < 0.25

    def test_critical_paths_close_between_isas(self):
        """Table 1: STREAM CPs nearly identical across ISAs."""
        from repro.analysis import CriticalPathProbe
        wl = Stream(StreamParams(n=256, ntimes=1))
        cps = {}
        for isa in ("rv64", "aarch64"):
            probe = CriticalPathProbe()
            run_workload(wl, isa, "gcc12", [probe])
            cps[isa] = probe.result().critical_path
        ratio = cps["rv64"] / cps["aarch64"]
        assert 0.9 < ratio < 1.1

    def test_stream_cp_tracks_array_length(self):
        """Table 1: STREAM's CP is ~N (the serial validation reduction)."""
        from repro.analysis import CriticalPathProbe
        n = 300
        probe = CriticalPathProbe()
        run_workload(Stream(StreamParams(n=n, ntimes=1)), "rv64", "gcc12",
                     [probe])
        cp = probe.result().critical_path
        assert n <= cp <= n + 200

    def test_stream_scaled_cp_rides_fp_chain(self):
        """§5.2: STREAM's scaled CP is ~6x the plain CP (TX2 FP-add latency
        carries the validation reduction chain)."""
        from repro.analysis import CriticalPathProbe
        from repro.sim.config import load_core_model
        plain = CriticalPathProbe()
        scaled = CriticalPathProbe(load_core_model("tx2-riscv"))
        run_workload(Stream(StreamParams(n=300, ntimes=1)), "rv64", "gcc12",
                     [plain, scaled])
        ratio = scaled.result().critical_path / plain.result().critical_path
        assert 4.5 < ratio < 6.5
