"""Harness tests: experiment matrix consistency and artifact rendering."""

import pytest

from repro.harness import (
    run_figure1,
    run_figure2,
    run_suite,
    run_table1,
    run_table2,
)
from repro.harness.experiments import BASELINE, ISAS, PROFILES, run_config
from repro.workloads.stream import Stream, StreamParams


@pytest.fixture(scope="module")
def tiny_suite():
    return run_suite(
        scale=0.02,
        workloads=("stream", "minisweep"),
        windowed=True,
        window_sizes=(4, 16, 64),
    )


class TestSuite:
    def test_full_matrix_present(self, tiny_suite):
        for name in tiny_suite.workloads:
            for isa in ISAS:
                for profile in PROFILES:
                    config = tiny_suite.get(name, isa, profile)
                    assert config.path_length > 0
                    assert config.cp.critical_path >= 1

    def test_internal_consistency(self, tiny_suite):
        """ILP = path/CP and runtime = CP/clock, by construction."""
        for config in tiny_suite.configs.values():
            assert config.ilp == pytest.approx(
                config.path_length / config.cp.critical_path
            )
            assert config.runtime_ms(2.0) == pytest.approx(
                config.cp.critical_path / 2e9 * 1e3
            )

    def test_scaled_cp_at_least_plain(self, tiny_suite):
        for config in tiny_suite.configs.values():
            assert config.scaled_cp.critical_path >= config.cp.critical_path

    def test_cp_never_exceeds_path(self, tiny_suite):
        for config in tiny_suite.configs.values():
            assert config.cp.critical_path <= config.path_length

    def test_windowed_only_on_gcc12(self, tiny_suite):
        for (name, isa, profile), config in tiny_suite.configs.items():
            if profile == "gcc12":
                assert config.windowed is not None
            else:
                assert config.windowed is None

    def test_region_counts_sum_to_total(self, tiny_suite):
        for config in tiny_suite.configs.values():
            assert sum(config.path.per_region.values()) == config.path.total


class TestFigure1:
    def test_baseline_normalizes_to_one(self, tiny_suite):
        figure = run_figure1(suite=tiny_suite)
        for name, per_config in figure.normalized.items():
            baseline_total = sum(per_config[BASELINE].values())
            assert baseline_total == pytest.approx(1.0)

    def test_render_mentions_kernels(self, tiny_suite):
        text = run_figure1(suite=tiny_suite).render()
        assert "copy" in text and "triad" in text
        assert "GCC 9.2 AArch64" in text


class TestTables:
    def test_table1_rows(self, tiny_suite):
        table = run_table1(suite=tiny_suite)
        rows = table.rows_for("stream")
        metrics = [row[0] for row in rows]
        assert metrics == ["Path Length", "CP", "ILP", "2GHz Run time (ms)"]
        # 4 configurations per row
        assert all(len(row) == 5 for row in rows)

    def test_table2_uses_scaled(self, tiny_suite):
        t1 = run_table1(suite=tiny_suite).rows_for("stream")
        t2 = run_table2(suite=tiny_suite).rows_for("stream")
        assert t2[1][1] >= t1[1][1]  # scaled CP >= CP

    def test_render_smoke(self, tiny_suite):
        assert "Table 1" in run_table1(suite=tiny_suite).render()
        assert "Table 2" in run_table2(suite=tiny_suite).render()


class TestFigure2:
    def test_series_monotone_window_sizes(self, tiny_suite):
        figure = run_figure2(suite=tiny_suite)
        for name, per_isa in figure.series.items():
            for isa, points in per_isa.items():
                windows = [w for w, _v in points]
                assert windows == sorted(windows)
                for _w, value in points:
                    assert value >= 0.9  # ILP can't drop far below 1

    def test_window_averages_text(self, tiny_suite):
        text = run_figure2(suite=tiny_suite).window_averages_text()
        assert "stream-rv64" in text or "stream-aarch64" in text

    def test_mean_ilp_bounded_by_window(self, tiny_suite):
        figure = run_figure2(suite=tiny_suite)
        for per_isa in figure.series.values():
            for points in per_isa.values():
                for window, ilp in points:
                    assert ilp <= window


class TestRunConfig:
    def test_custom_window_slide(self):
        wl = Stream(StreamParams(n=32, ntimes=1))
        config = run_config(wl, "rv64", "gcc12", windowed=True,
                            window_sizes=(8,), slide_fraction=1.0)
        assert config.windowed[8].count >= 1

    def test_custom_model(self):
        from repro.sim.config import load_core_model
        wl = Stream(StreamParams(n=32, ntimes=1))
        ideal = {"rv64": "ideal", "aarch64": "ideal"}
        config = run_config(wl, "rv64", "gcc12", models=ideal)
        assert config.scaled_cp.critical_path == config.cp.critical_path


class TestCli:
    def test_cli_writes_artifacts(self, tmp_path):
        from repro.harness.cli import main
        rc = main([
            "run", "--scale", "0.02", "--workloads", "stream",
            "--windows", "4,16", "--out", str(tmp_path), "--quiet",
        ])
        assert rc == 0
        for fname in ("kernelCounts.txt", "basicCPResult.txt",
                      "scaledCPResult.txt", "windowAverages.txt"):
            assert (tmp_path / fname).exists(), fname
            assert (tmp_path / fname).read_text().strip()

    def test_cli_skip_windowed(self, tmp_path, capsys):
        from repro.harness.cli import main
        rc = main([
            "run", "--scale", "0.02", "--workloads", "minisweep",
            "--skip-windowed", "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 2" not in out


class TestFutureCores:
    def test_run_future_cores(self):
        from repro.harness import run_future_cores
        result = run_future_cores(
            0.02, workloads=("minisweep",), rob_sizes=(8, 64)
        )
        per_isa = result.cycles["minisweep"]
        for isa in ("aarch64", "rv64"):
            values = per_isa[isa]
            # OoO with any ROB beats the dual-issue in-order core
            assert values[64] <= values[8] <= values["inorder"]
        text = result.render()
        assert "Future work" in text and "in-order" in text
