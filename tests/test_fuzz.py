"""Tests for the cross-ISA differential fuzzing subsystem (repro.fuzz)."""

import pytest

from repro.asm import assemble
from repro.common import CompilerError
from repro.compiler import compile_source
from repro.fuzz import (
    ISAS,
    PROFILES,
    GenProgram,
    case_source,
    ddmin,
    diff_source,
    replay_corpus,
    run_case,
)
from repro.fuzz.corpus import corpus_files
from repro.fuzz.minimize import shrink_program
from repro.harness import faults
from repro.loader import program_to_image
from repro.sim import run_image
from repro.sim.invariants import InvariantChecker, InvariantViolation

from tests.conftest import RV_EXIT


class TestGenerator:
    def test_deterministic(self):
        assert case_source(42, "mixed") == case_source(42, "mixed")

    def test_seed_and_profile_vary_output(self):
        assert case_source(1, "mixed") != case_source(2, "mixed")
        assert case_source(1, "arith") != case_source(1, "control")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            GenProgram(0, "nope")

    @pytest.mark.parametrize("profile", PROFILES)
    def test_profiles_compile_on_both_isas(self, profile):
        for seed in range(3):
            src = case_source(seed, profile)
            for isa_name in ISAS:
                compile_source(src, isa_name, "gcc12")

    def test_any_statement_subset_compiles(self):
        prog = GenProgram(5, "mixed")
        n = len(prog.stmts)
        for keep in ([], [0], list(range(0, n, 2)), list(range(n))):
            compile_source(prog.render(keep=keep), "rv64", "gcc12")

    def test_standard_observables_cover_global_pool(self):
        names = {name for name, _, _ in GenProgram.standard_observables()}
        assert {"g0", "d0", "arrA", "arrB", "fa"} <= names


class TestDdmin:
    def test_minimizes_to_failure_core(self):
        def failing(subset):
            return {3, 7} <= set(subset)

        assert sorted(ddmin(list(range(10)), failing)) == [3, 7]

    def test_single_element(self):
        def failing(subset):
            return 4 in subset

        assert ddmin(list(range(6)), failing) == [4]


class TestDifferential:
    def test_clean_seeds_produce_no_findings(self):
        for seed in range(3):
            assert run_case(seed, "mixed") == []

    def test_sharding_oracle_agrees_on_clean_programs(self):
        from repro.fuzz.differential import diff_sharded

        for seed in range(3):
            compiled = compile_source(case_source(seed, "mixed"),
                                      "rv64", "gcc12")
            assert diff_sharded(compiled, seed=seed) == ""

    def test_warm_reuse_oracle_agrees_on_clean_programs(self):
        from repro.fuzz.differential import diff_warm

        for seed in range(3):
            compiled = compile_source(case_source(seed, "mixed"),
                                      "rv64", "gcc12")
            assert diff_warm(compiled) == ""

    def test_warm_reuse_oracle_survives_warm_fault(self):
        """The ``warm`` data fault garbles the cached image mid-reuse;
        the oracle rebuilds (the executor's recycle-and-retry in
        miniature) and the analysis documents must still agree."""
        from repro.fuzz.differential import diff_warm

        compiled = compile_source(case_source(0, "mixed"), "rv64", "gcc12")
        faults.install(faults.FaultPlan(
            [faults.FaultSpec(site="warm", kind="garble", at=(1,))]))
        try:
            assert diff_warm(compiled) == ""
        finally:
            faults.uninstall()

    def test_compile_error_is_a_finding(self):
        found = diff_source("func long main() { return undefined_var; }")
        assert found
        assert all(f.kind == "compile-error" for f in found)

    def test_injected_skew_is_caught_and_reported(self):
        plan = faults.FaultPlan(
            specs=[faults.FaultSpec(site="semantics", kind="skew")], seed=7)
        faults.install(plan)
        try:
            for seed in range(10):
                found = run_case(seed, "mixed")
                if found:
                    break
            else:
                pytest.fail("semantics skew never produced a finding")
        finally:
            faults.uninstall()
        finding = found[0]
        assert finding.kind == "within-isa"
        assert finding.fault is not None
        from repro.sim.postmortem import GuestFaultReport

        report = GuestFaultReport.from_dict(finding.fault)
        assert report.regs
        rendered = report.render()
        assert "registers:" in rendered

    def test_injected_skew_minimizes(self):
        plan = faults.FaultPlan(
            specs=[faults.FaultSpec(site="semantics", kind="skew")], seed=7)
        faults.install(plan)
        try:
            for seed in range(10):
                found = run_case(seed, "mixed")
                if found:
                    prog = GenProgram(seed, "mixed")
                    kept = shrink_program(prog, found[0].kind)
                    assert len(kept) <= len(prog.stmts)
                    # the shrunken program still reproduces
                    still = diff_source(prog.render(keep=kept))
                    assert any(f.kind == found[0].kind for f in still)
                    break
            else:
                pytest.fail("semantics skew never produced a finding")
        finally:
            faults.uninstall()


class TestCorpus:
    def test_corpus_is_checked_in(self):
        assert len(corpus_files()) >= 4

    def test_corpus_replays_clean(self):
        results = replay_corpus()
        dirty = {name: [f.detail for f in found]
                 for name, found in results.items() if found}
        assert not dirty


class TestInvariantChecker:
    def test_checked_run_is_observationally_identical(self, rv64):
        # identical retirement stream and results with the oracle on
        src = case_source(0, "mixed")
        compiled = compile_source(src, "rv64", "gcc12")
        plain, m1 = run_image(compiled.image, rv64, translate=False)
        checked, m2 = run_image(compiled.image, rv64, translate=False,
                                check_invariants=True)
        assert checked.instructions == plain.instructions
        assert checked.exit_code == plain.exit_code
        assert checked.stdout == plain.stdout
        assert m1.r == m2.r

    def test_store_into_text_violates(self, rv64):
        src = """
    .text
    .global _start
_start:
    la t0, _start
    sd zero, 0(t0)
""" + RV_EXIT
        image = program_to_image(assemble(src, rv64))
        with pytest.raises(InvariantViolation, match="executable segment"):
            run_image(image, rv64, check_invariants=True,
                      max_instructions=100)

    def test_checker_counts_work(self, rv64):
        src = case_source(1, "mixed")
        compiled = compile_source(src, "rv64", "gcc12")
        checker = None

        from repro.fuzz.differential import observe

        obs, core = observe(compiled, translate=False,
                            max_instructions=3_000_000,
                            check_invariants=True)
        checker = core.probes[0]
        assert isinstance(checker, InvariantChecker)
        assert checker.stats()["checked"] == obs.instructions


@pytest.mark.slow
class TestNightlySweep:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_differential_sweep(self, profile):
        for seed in range(60):
            found = run_case(seed, profile)
            assert not found, [f.detail for f in found]


class TestFuzzCLI:
    def test_run_clean(self, capsys):
        from repro.harness.cli import main

        code = main(["fuzz", "run", "--seed", "0", "--count", "1",
                     "--profiles", "arith", "--quiet"])
        assert code == 0

    def test_corpus_clean(self):
        from repro.harness.cli import main

        assert main(["fuzz", "corpus", "--quiet"]) == 0

    def test_replay_corpus_file(self):
        from repro.harness.cli import main

        path = corpus_files()[0]
        assert main(["fuzz", "replay", str(path), "--quiet"]) == 0

    def test_run_with_skew_plan_fails_and_writes_reproducer(
            self, tmp_path, capsys):
        import json

        from repro.harness.cli import main

        plan = faults.FaultPlan(
            specs=[faults.FaultSpec(site="semantics", kind="skew")], seed=7)
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(plan.dumps())
        out = tmp_path / "findings"
        code = main(["fuzz", "run", "--seed", "0", "--count", "6",
                     "--profiles", "mixed", "--out", str(out),
                     "--max-instructions", "300000",
                     "--fault-plan", str(plan_file)])
        assert code == 1
        cases = sorted(out.glob("*.kc"))
        assert cases
        # a skewed destination register shows up as a silent value
        # divergence (within-isa), as a budget-exhaustion guest fault
        # when it hits a loop counter, or — when the skewed value washes
        # out of the final state — as a fused-vs-probes analysis delta
        sidecars = [json.loads(p.with_suffix(".json").read_text())
                    for p in cases]
        assert all(s["kind"] in ("within-isa", "guest-fault", "analysis")
                   for s in sidecars)
        assert any(s["fault"] is not None for s in sidecars)
        captured = capsys.readouterr()
        assert "FINDING" in captured.err

    def test_unknown_profile_rejected(self, capsys):
        from repro.harness.cli import main

        assert main(["fuzz", "run", "--profiles", "bogus"]) == 2
