"""Tests for the reporting arithmetic and table renderer."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.report import format_table, ilp, normalize, runtime_ms


class TestArithmetic:
    def test_ilp(self):
        assert ilp(1000, 100) == 10.0
        assert ilp(100, 0) == 0.0

    def test_runtime_matches_paper_units(self):
        # Table 1: CP 10,000,234 at 2 GHz -> 5.00 ms
        assert runtime_ms(10_000_234, 2.0) == pytest.approx(5.0, abs=0.01)
        # Table 2: scaled CP 60,000,545 -> 30.0 ms
        assert runtime_ms(60_000_545, 2.0) == pytest.approx(30.0, abs=0.01)

    @given(st.integers(min_value=1, max_value=10**12),
           st.floats(min_value=0.5, max_value=5.0))
    def test_runtime_scales_inversely_with_clock(self, cp, clock):
        assert runtime_ms(cp, clock) == pytest.approx(
            runtime_ms(cp, 1.0) / clock
        )

    def test_normalize(self):
        values = {"a": 10.0, "b": 5.0, "c": 20.0}
        out = normalize(values, "a")
        assert out == {"a": 1.0, "b": 0.5, "c": 2.0}

    def test_normalize_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize({"a": 0.0, "b": 1.0}, "a")


class TestFormatTable:
    def test_alignment_and_commas(self):
        text = format_table(
            ["name", "count", "ratio"],
            [["alpha", 1234567, 0.51234], ["b", 7, 12.0]],
        )
        lines = text.splitlines()
        assert "1,234,567" in text
        assert "0.5123" in text
        # columns align: every row the same width
        assert len(set(len(line) for line in lines[:2])) == 1

    def test_title(self):
        text = format_table(["a"], [["x"]], title="My Table")
        assert text.startswith("My Table\n========")

    def test_left_aligns_first_column(self):
        text = format_table(["name", "v"], [["a", 1], ["longer", 2]])
        rows = text.splitlines()[2:]
        assert rows[0].startswith("a ")
        assert rows[1].startswith("longer")

    @given(st.lists(
        st.tuples(st.text(alphabet="abcdef", min_size=1, max_size=8),
                  st.integers(min_value=0, max_value=10**9),
                  st.floats(min_value=0, max_value=1e6, allow_nan=False)),
        min_size=1, max_size=10,
    ))
    def test_never_crashes(self, rows):
        text = format_table(["s", "i", "f"], [list(r) for r in rows])
        assert len(text.splitlines()) == len(rows) + 2
