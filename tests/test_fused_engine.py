"""Differential tests for the fused single-pass analysis engine.

The legacy per-retire probes are the oracle: on every workload, on both
ISAs, and on randomized kernelc programs, the fused engine must produce
*exactly* the same results — same path-length breakdown, same plain and
scaled critical paths, same instruction mix, same windowed-CP statistics
— and therefore byte-identical Figure 1 / Table 1 / Table 2 / Figure 2
renders. Also covers the trace format (record → replay equality) and the
two-level cache (changing analysis parameters replays the recorded trace
with zero simulations).
"""

from __future__ import annotations

import inspect
import random

import pytest

from repro.analysis import (
    CriticalPathProbe,
    FusedAnalysisEngine,
    InstructionMixProbe,
    PathLengthProbe,
    WindowedCPProbe,
)
from repro.compiler import compile_source
from repro.harness import events as events_mod
from repro.harness import experiments
from repro.harness.cache import ResultCache
from repro.harness.events import EventBus, PlanTraceHit
from repro.harness.executor import Executor, execute_plan
from repro.harness.experiments import (
    SuiteResult,
    run_config,
    run_figure1,
    run_figure2,
    run_table1,
    run_table2,
)
from repro.harness.plan import ExperimentPlan, plan_suite
from repro.isa import get_isa
from repro.sim import run_image
from repro.sim.config import load_core_model
from repro.sim.trace import TraceWriter, read_trace
from repro.workloads import ALL_WORKLOADS, get_workload

SCALE = 0.02
WINDOWS = (4, 16)


def _probe_oracle(compiled, model, window_sizes=WINDOWS):
    """Run the legacy five-probe path on a fresh machine; returns the
    result dicts keyed like ConfigResult fields."""
    isa = get_isa(compiled.isa_name)
    path = PathLengthProbe(compiled.image.regions)
    cp = CriticalPathProbe()
    scaled = CriticalPathProbe(model)
    mix = InstructionMixProbe()
    windowed = WindowedCPProbe(window_sizes, 0.5)
    run_image(compiled.image, isa, [path, cp, scaled, mix, windowed])
    return {
        "path": path.result().to_dict(),
        "cp": cp.result().to_dict(),
        "scaled_cp": scaled.result().to_dict(),
        "mix": mix.result().to_dict(),
        "windowed": {w: r.to_dict() for w, r in windowed.results().items()},
    }


def _fused(compiled, model, window_sizes=WINDOWS, extra_sinks=()):
    """Run the fused engine on a fresh machine; same result-dict shape."""
    isa = get_isa(compiled.isa_name)
    engine = FusedAnalysisEngine(
        regions=compiled.image.regions, model=model,
        windowed=True, window_sizes=window_sizes,
    )
    run_image(compiled.image, isa,
              batch_sinks=[engine, *extra_sinks])
    results = engine.results()
    return {
        "path": results.path.to_dict(),
        "cp": results.cp.to_dict(),
        "scaled_cp": results.scaled_cp.to_dict(),
        "mix": results.mix.to_dict(),
        "windowed": {w: r.to_dict() for w, r in results.windowed.items()},
    }


# --------------------------------------------------- workload differential

@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_fused_matches_probes_on_workload(name):
    workload = get_workload(name, SCALE)
    for isa in ("aarch64", "rv64"):
        oracle = run_config(workload, isa, "gcc12", windowed=True,
                            window_sizes=WINDOWS, engine="probes")
        fused = run_config(workload, isa, "gcc12", windowed=True,
                           window_sizes=WINDOWS, engine="fused")
        assert fused.to_dict() == oracle.to_dict()


def test_unknown_engine_rejected():
    workload = get_workload("stream", SCALE)
    with pytest.raises(Exception, match="unknown analysis engine"):
        run_config(workload, "rv64", "gcc12", engine="simd")


def test_fused_is_the_default_engine():
    # the tier-1 smoke check the ISSUE asks for: run_config defaults to
    # the fused engine, so the whole harness rides the fast path
    sig = inspect.signature(run_config)
    assert sig.parameters["engine"].default == "fused"


# ------------------------------------------------- randomized differential

def _random_kernelc(seed: int) -> str:
    """A seeded random kernelc program mixing integer/FP arithmetic,
    loads/stores, reductions, division and data-dependent branches."""
    rng = random.Random(seed)
    n = rng.randrange(24, 80)
    lines = [
        f"global long ia[{n}];",
        f"global double da[{n}];",
        "global double out_d;",
        "global long out_l;",
        "func long main() {",
        "  long acc = 1;",
        "  double facc = 0.5;",
        f"  for (long i = 0; i < {n}; i = i + 1) {{",
        f"    ia[i] = i * {rng.randrange(1, 9)} + {rng.randrange(0, 5)};",
        f"    da[i] = 1.0 + i * {rng.choice(['0.25', '0.5', '1.5'])};",
        "  }",
    ]
    for _ in range(rng.randrange(2, 5)):
        stride = rng.choice([1, 2, 3])
        body = rng.choice([
            "acc = acc + ia[i] * {k};",
            "ia[i] = ia[i] + acc / (i + 1);",
            "facc = facc + da[i] * {f};",
            "da[i] = da[i] / (facc + 1.0) + {f};",
            "if (ia[i] > {k}) { acc = acc + 1; } else { facc = facc + da[i]; }",
        ])
        body = body.replace("{k}", str(rng.randrange(1, 7)))
        body = body.replace("{f}", rng.choice(["0.125", "2.0", "3.5"]))
        lines.append(
            f"  for (long i = 0; i < {n}; i = i + {stride}) {{ {body} }}"
        )
    lines += [
        "  out_l = acc;",
        "  out_d = facc;",
        "  return 0;",
        "}",
    ]
    return "\n".join(lines)


@pytest.mark.parametrize("seed", range(6))
def test_fused_matches_probes_on_random_programs(seed):
    source = _random_kernelc(seed)
    isa = ("aarch64", "rv64")[seed % 2]
    model = load_core_model("tx2" if isa == "aarch64" else "tx2-riscv")
    compiled = compile_source(source, isa, "gcc12")
    assert _fused(compiled, model) == _probe_oracle(compiled, model)


# ---------------------------------------------------- byte-identical renders

def _build_suite(engine: str) -> SuiteResult:
    suite = SuiteResult(
        scale=SCALE,
        workloads={"stream": get_workload("stream", SCALE)},
        window_sizes=WINDOWS,
    )
    for plan in plan_suite(SCALE, workloads=("stream",), windowed=True,
                           window_sizes=WINDOWS):
        workload = get_workload(plan.workload, plan.scale)
        suite.configs[plan.config_key] = run_config(
            workload, plan.isa, plan.profile, windowed=plan.windowed,
            window_sizes=plan.window_sizes, engine=engine,
        )
    return suite


def test_renders_are_byte_identical():
    legacy = _build_suite("probes")
    fused = _build_suite("fused")
    assert (run_figure1(suite=fused).render()
            == run_figure1(suite=legacy).render())
    assert (run_table1(suite=fused).render()
            == run_table1(suite=legacy).render())
    assert (run_table2(suite=fused).render()
            == run_table2(suite=legacy).render())
    assert (run_figure2(suite=fused).render()
            == run_figure2(suite=legacy).render())


# ------------------------------------------------------ trace record/replay

def test_trace_roundtrip_replays_identically():
    model = load_core_model("tx2-riscv")
    compiled = compile_source(_random_kernelc(99), "rv64", "gcc12")
    writer = TraceWriter(isa_name=compiled.isa_name,
                         regions=compiled.image.regions)
    direct = _fused(compiled, model, extra_sinks=(writer,))
    trace = read_trace(writer.finish())
    assert trace.isa_name == "rv64"
    assert [r.name for r in trace.regions] == \
        [r.name for r in compiled.image.regions]

    engine = FusedAnalysisEngine(regions=trace.regions, model=model,
                                 windowed=True, window_sizes=WINDOWS)
    trace.replay_into([engine])
    results = engine.results()
    replayed = {
        "path": results.path.to_dict(),
        "cp": results.cp.to_dict(),
        "scaled_cp": results.scaled_cp.to_dict(),
        "mix": results.mix.to_dict(),
        "windowed": {w: r.to_dict() for w, r in results.windowed.items()},
    }
    assert replayed == direct


def test_execute_plan_trace_level(tmp_path):
    """execute_plan records a trace on a miss and replays it on a hit."""
    cache = ResultCache(tmp_path)
    plan = ExperimentPlan(workload="minisweep", isa="rv64", profile="gcc12",
                          scale=SCALE, windowed=True, window_sizes=WINDOWS)
    first = execute_plan(plan, cache.traces)
    assert cache.traces.stats.puts == 1
    assert cache.traces.stats.hits == 0
    changed = plan.with_overrides(window_sizes=(8,))
    assert changed.trace_fingerprint() == plan.trace_fingerprint()
    second = execute_plan(changed, cache.traces)
    assert cache.traces.stats.hits == 1
    assert second.to_dict() == execute_plan(changed).to_dict()
    assert first.to_dict() != second.to_dict()  # different windows


# -------------------------------------------------- two-level cache via run

def test_changed_windows_hit_trace_level_zero_simulations(
        tmp_path, monkeypatch):
    cache_dir = tmp_path / "cache"
    plans_a = plan_suite(SCALE, workloads=("minisweep",), windowed=True,
                         window_sizes=WINDOWS)
    Executor(jobs=1, cache=ResultCache(cache_dir)).run(plans_a)

    # same simulations, different analysis parameters: result-level miss,
    # trace-level hit — re-running must perform ZERO simulations, which we
    # enforce by making any attempt to simulate explode
    def boom(*args, **kwargs):
        raise AssertionError("simulated despite a cached trace")

    monkeypatch.setattr(experiments, "run_config", boom)
    plans_b = plan_suite(SCALE, workloads=("minisweep",), windowed=True,
                         window_sizes=(8,))
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    results = Executor(jobs=1, cache=ResultCache(cache_dir),
                       events=bus).run(plans_b)
    trace_hits = [e for e in seen if isinstance(e, PlanTraceHit)]
    assert len(trace_hits) == len(plans_b)
    assert {e.plan for e in trace_hits} == set(plans_b)

    # ... and the replayed results must equal a fresh simulation's
    monkeypatch.undo()
    for plan in plans_b:
        fresh = execute_plan(plan)
        assert results[plan].to_dict() == fresh.to_dict()


def test_trace_hit_reported_by_timing_collector(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    plans = plan_suite(SCALE, workloads=("minisweep",), windowed=True,
                       window_sizes=WINDOWS)
    Executor(jobs=1, cache=cache).run(plans)
    bus = EventBus()
    timing = events_mod.TimingCollector()
    bus.subscribe(timing)
    Executor(jobs=1, cache=ResultCache(tmp_path / "cache"),
             events=bus).run(
        plan_suite(SCALE, workloads=("minisweep",), windowed=True,
                   window_sizes=(4,)))
    summary = timing.summary()
    assert summary["trace_hits"] == len(plans)
    assert summary["executed"] == len(plans)  # replays still "execute"
    assert summary["cache_hits"] == 0


def test_cache_clear_removes_traces(tmp_path):
    cache = ResultCache(tmp_path)
    plan = ExperimentPlan(workload="minisweep", isa="rv64", profile="gcc12",
                          scale=SCALE)
    Executor(jobs=1, cache=cache).run([plan])
    stats = cache.disk_stats()
    assert stats["entries"] == 1
    assert stats["trace_entries"] == 1
    assert cache.clear() == 2
    stats = cache.disk_stats()
    assert stats["entries"] == 0
    assert stats["trace_entries"] == 0
