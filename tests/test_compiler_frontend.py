"""kernelc front-end tests: lexer, parser, semantic analysis, passes."""

import pytest

from repro.common import CompilerError
from repro.compiler import ast_nodes as A
from repro.compiler.lexer import tokenize
from repro.compiler.parser import parse
from repro.compiler.passes import fold_constants, hoist_calls
from repro.compiler.sema import analyze


def parsed(src):
    program = parse(src)
    analyze(program)
    return program


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("42 0x1F 2.5 1e-3 .5")
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert kinds == [
            ("int", 42), ("int", 31), ("float", 2.5), ("float", 1e-3),
            ("float", 0.5),
        ]

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("for fortress long longing")
        assert [t.kind for t in tokens[:-1]] == [
            "keyword", "ident", "keyword", "ident"
        ]

    def test_operators_maximal_munch(self):
        tokens = tokenize("a<<b <= c < d == e")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<<", "<=", "<", "=="]

    def test_comments(self):
        tokens = tokenize("a // comment\nb /* block\nspans */ c")
        assert [t.text for t in tokens[:-1]] == ["a", "b", "c"]

    def test_string_literal(self):
        tokens = tokenize('region "my kernel"')
        assert tokens[1].kind == "string"
        assert tokens[1].value == "my kernel"

    def test_errors(self):
        with pytest.raises(CompilerError):
            tokenize('"unterminated')
        with pytest.raises(CompilerError):
            tokenize("/* unterminated")
        with pytest.raises(CompilerError):
            tokenize("a @ b")


class TestParser:
    def test_precedence(self):
        program = parse("func long main() { return 2 + 3 * 4; }")
        ret = program.function("main").body[0]
        assert isinstance(ret.value, A.Binary) and ret.value.op == "+"
        assert isinstance(ret.value.right, A.Binary) and ret.value.right.op == "*"

    def test_parentheses(self):
        program = parse("func long main() { return (2 + 3) * 4; }")
        ret = program.function("main").body[0]
        assert ret.value.op == "*"

    def test_cast_vs_paren(self):
        program = parse(
            "func long main() { double d = (double)(3); return (3); }"
        )
        decl = program.function("main").body[0]
        assert isinstance(decl.init, A.Cast)

    def test_globals_with_initializers(self):
        program = parse("""
global double arr[4] = { 1.0, 2.0 };
global long n = 7;
global double s;
func long main() { return 0; }
""")
        arr, n, s = program.globals
        assert arr.array_size == 4 and arr.init_list == [1.0, 2.0]
        assert n.init_scalar == 7
        assert s.init_scalar is None

    def test_region_statement(self):
        program = parse(
            'func void f() { region "k" { long x = 1; } } func long main() { return 0; }'
        )
        region = program.function("f").body[0]
        assert isinstance(region, A.RegionStmt) and region.name == "k"

    def test_bare_block(self):
        program = parse("func long main() { { long x = 1; } return 0; }")
        assert isinstance(program.function("main").body[0], A.BlockStmt)

    def test_else_if_chain(self):
        program = parse("""
func long main() {
  long x = 1;
  if (x < 0) { x = 0; } else if (x > 10) { x = 10; } else { x = 5; }
  return x;
}
""")
        stmt = program.function("main").body[1]
        assert isinstance(stmt.else_body[0], A.IfStmt)

    def test_syntax_errors(self):
        with pytest.raises(CompilerError):
            parse("func long main() { return 0 }")  # missing ;
        with pytest.raises(CompilerError):
            parse("func long main( { }")
        with pytest.raises(CompilerError):
            parse("global long a[0]; func long main() { return 0; }")


class TestSema:
    def test_undefined_variable(self):
        with pytest.raises(CompilerError):
            parsed("func long main() { return nope; }")

    def test_undefined_function(self):
        with pytest.raises(CompilerError):
            parsed("func long main() { return f(); }")

    def test_type_mismatch_assignment(self):
        with pytest.raises(CompilerError):
            parsed("func long main() { long x = 1.5; return x; }")

    def test_implicit_long_to_double(self):
        program = parsed("func long main() { double d = 3; return 0; }")
        decl = program.function("main").body[0]
        assert isinstance(decl.init, A.Cast)
        assert decl.init.type == A.DOUBLE

    def test_mixed_arithmetic_promotes(self):
        program = parsed(
            "func double f(double d) { return d + 1; } func long main() { return 0; }"
        )
        ret = program.function("f").body[0]
        assert ret.value.right.type == A.DOUBLE

    def test_double_condition_rejected(self):
        with pytest.raises(CompilerError):
            parsed("func long main() { double d = 1.0; if (d) { } return 0; }")

    def test_modulo_needs_longs(self):
        with pytest.raises(CompilerError):
            parsed("func long main() { double d = 1.0; return (long)(d % 2.0); }")

    def test_break_outside_loop(self):
        with pytest.raises(CompilerError):
            parsed("func long main() { break; return 0; }")

    def test_block_scoping_allows_sibling_redecl(self):
        parsed("""
func long main() {
  for (long j = 0; j < 2; j = j + 1) { }
  for (long j = 0; j < 2; j = j + 1) { }
  return 0;
}
""")

    def test_shadowing_rejected(self):
        with pytest.raises(CompilerError):
            parsed("func long main() { long x = 1; { long x = 2; } return x; }")

    def test_arg_count_checked(self):
        with pytest.raises(CompilerError):
            parsed("""
func long f(long a, long b) { return a; }
func long main() { return f(1); }
""")

    def test_array_used_without_index(self):
        with pytest.raises(CompilerError):
            parsed("global double a[4]; func long main() { return (long)(a); }")

    def test_missing_main(self):
        with pytest.raises(CompilerError):
            parsed("func long f() { return 0; }")


class TestCanonicalIvDetection:
    def get_loop(self, src):
        program = parsed(src)
        return program.function("main").body[0]

    def test_simple_for_detected(self):
        loop = self.get_loop(
            "func long main() { for (long j = 0; j < 10; j = j + 1) { } return 0; }"
        )
        assert loop.iv_name == "j" and loop.iv_step == 1

    def test_step_detected(self):
        loop = self.get_loop(
            "func long main() { for (long j = 0; j < 10; j = j + 3) { } return 0; }"
        )
        assert loop.iv_step == 3

    def test_iv_modified_in_body_rejected(self):
        loop = self.get_loop("""
func long main() {
  for (long j = 0; j < 10; j = j + 1) { j = j + 1; }
  return 0;
}
""")
        assert loop.iv_name is None

    def test_non_additive_update_rejected(self):
        loop = self.get_loop(
            "func long main() { for (long j = 1; j < 99; j = j * 2) { } return 0; }"
        )
        assert loop.iv_name is None

    def test_le_condition_accepted(self):
        loop = self.get_loop(
            "func long main() { for (long j = 0; j <= 9; j = j + 1) { } return 0; }"
        )
        assert loop.iv_name == "j"


class TestPasses:
    def test_constant_folding(self):
        program = parsed("func long main() { return 2 * 3 + (8 >> 1); }")
        fold_constants(program)
        ret = program.function("main").body[0]
        assert isinstance(ret.value, A.IntLit) and ret.value.value == 10

    def test_fold_unary_and_cast(self):
        program = parsed("func double f() { return (double)(6); } func long main() { return -(-5); }")
        fold_constants(program)
        assert program.function("main").body[0].value.value == 5
        assert isinstance(program.function("f").body[0].value, A.FloatLit)

    def test_fold_division_truncates(self):
        program = parsed("func long main() { return -7 / 2; }")
        fold_constants(program)
        assert program.function("main").body[0].value.value == -3

    def test_call_hoisting(self):
        program = parsed("""
func long f(long x) { return x + 1; }
func long main() { return f(1) + f(2); }
""")
        hoist_calls(program)
        body = program.function("main").body
        # two synthetic decls precede the return
        assert isinstance(body[0], A.DeclStmt) and body[0].name.startswith("__call")
        assert isinstance(body[1], A.DeclStmt)
        assert isinstance(body[2], A.ReturnStmt)

    def test_call_in_while_cond_rejected(self):
        program = parsed("""
func long f() { return 0; }
func long main() { while (f() < 1) { } return 0; }
""")
        with pytest.raises(CompilerError):
            hoist_calls(program)
