"""Tests for the SVG figure rendering (geometry, palette, identity rules)."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.plot import figure1_svg, figure2_svg
from repro.plot.charts import ISA_COLORS, KERNEL_SLOTS, OTHER_GRAY, SURFACE

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def figure_data():
    """Small synthetic harness-shaped data (no simulation needed)."""
    windows = (4, 16, 64, 200)
    series = {
        name: {
            "aarch64": [(w, base + i) for i, w in enumerate(windows)],
            "rv64": [(w, base + 0.3 + i) for i, w in enumerate(windows)],
        }
        for base, name in ((1.5, "stream"), (2.0, "lbm"))
    }
    normalized = {
        "stream": {
            ("aarch64", "gcc9"): {"copy": 0.4, "scale": 0.4, "other": 0.2},
            ("rv64", "gcc9"): {"copy": 0.35, "scale": 0.45, "other": 0.1},
            ("aarch64", "gcc12"): {"copy": 0.35, "scale": 0.35, "other": 0.2},
            ("rv64", "gcc12"): {"copy": 0.35, "scale": 0.45, "other": 0.1},
        },
    }
    kernels = {"stream": ["copy", "scale"]}
    return series, normalized, kernels


def parse(svg_text):
    root = ET.fromstring(svg_text)
    assert root.tag == f"{SVG_NS}svg"
    return root


class TestFigure2Svg:
    def test_well_formed_and_bounded(self, figure_data):
        series, _n, _k = figure_data
        root = parse(figure2_svg(series))
        width = float(root.get("width"))
        height = float(root.get("height"))
        for elem in root.iter():
            for attr in ("x", "x1", "x2", "cx"):
                value = elem.get(attr)
                if value is not None:
                    assert -1 <= float(value) <= width + 1
            for attr in ("y", "y1", "y2", "cy"):
                value = elem.get(attr)
                if value is not None:
                    assert -1 <= float(value) <= height + 1

    def test_single_window_size_renders(self):
        # a one-point series has a zero-width log axis; the lone point is
        # centered instead of dividing by zero
        series = {"stream": {"aarch64": [(4, 1.5)], "rv64": [(4, 1.8)]}}
        root = parse(figure2_svg(series))
        assert root.get("width")

    def test_two_series_per_panel_fixed_colors(self, figure_data):
        series, _n, _k = figure_data
        text = figure2_svg(series)
        # entity->color is fixed: both panels use the same two hues
        assert text.count(f'stroke="{ISA_COLORS["aarch64"]}"') >= 2
        assert text.count(f'stroke="{ISA_COLORS["rv64"]}"') >= 2
        # no generated hues: every fill/stroke is from the role set
        allowed = set(ISA_COLORS.values()) | {
            SURFACE, "#0b0b0b", "#52514e", "#e9e8e4", "none",
        }
        for color in re.findall(r'(?:fill|stroke)="(#[0-9a-f]{6})"', text):
            assert color in allowed, color

    def test_legend_present(self, figure_data):
        series, _n, _k = figure_data
        text = figure2_svg(series)
        assert "AArch64" in text and "RISC-V" in text

    def test_markers_have_surface_ring(self, figure_data):
        series, _n, _k = figure_data
        root = parse(figure2_svg(series))
        circles = [e for e in root.iter(f"{SVG_NS}circle")]
        data_dots = [c for c in circles if float(c.get("r")) >= 4]
        assert data_dots, "markers missing"
        for dot in data_dots:
            assert dot.get("stroke") == SURFACE
            assert float(dot.get("stroke-width")) >= 2

    def test_hover_titles_on_markers(self, figure_data):
        series, _n, _k = figure_data
        root = parse(figure2_svg(series))
        titles = [t.text for t in root.iter(f"{SVG_NS}title")]
        assert any("window 64" in t for t in titles)
        assert any("ILP" in t for t in titles)

    def test_one_panel_per_workload(self, figure_data):
        series, _n, _k = figure_data
        root = parse(figure2_svg(series))
        texts = [t.text for t in root.iter(f"{SVG_NS}text")]
        for name in series:
            assert name in texts


class TestFigure1Svg:
    def test_segments_sum_to_total_width(self, figure_data):
        _s, normalized, kernels = figure_data
        root = parse(figure1_svg(normalized, kernels))
        rects = [e for e in root.iter(f"{SVG_NS}rect")
                 if e.get("fill") in set(KERNEL_SLOTS) | {OTHER_GRAY}]
        # 4 configs x 3 segments, minus the per-panel legend swatches (3)
        bars = [r for r in rects if float(r.get("height")) > 12]
        assert len(bars) == 12
        # baseline bar (gcc9 aarch64, total 1.0) spans close to the scale
        widths = sorted(float(r.get("width")) for r in bars)
        assert widths[0] > 0

    def test_segment_gaps(self, figure_data):
        _s, normalized, kernels = figure_data
        root = parse(figure1_svg(normalized, kernels))
        bars = [e for e in root.iter(f"{SVG_NS}rect")
                if float(e.get("height", 0)) > 12 and e.get("fill") != SURFACE]
        # group by row (y); within a row, segments must not touch
        rows = {}
        for bar in bars:
            rows.setdefault(bar.get("y"), []).append(bar)
        for row in rows.values():
            row.sort(key=lambda r: float(r.get("x")))
            for a, b in zip(row, row[1:]):
                a_end = float(a.get("x")) + float(a.get("width"))
                assert float(b.get("x")) - a_end >= 1.5  # the 2px surface gap

    def test_config_labels_present(self, figure_data):
        _s, normalized, kernels = figure_data
        text = figure1_svg(normalized, kernels)
        for label in ("GCC 9.2 AArch64", "GCC 12.2 RISC-V"):
            assert label in text

    def test_other_segment_is_deemphasized(self, figure_data):
        _s, normalized, kernels = figure_data
        text = figure1_svg(normalized, kernels)
        assert f'fill="{OTHER_GRAY}"' in text

    def test_real_harness_shapes_render(self):
        """End-to-end: a (tiny) real suite renders both figures."""
        from repro.harness import run_figure1, run_figure2, run_suite
        suite = run_suite(scale=0.02, workloads=("minisweep",),
                          windowed=True, window_sizes=(4, 16))
        f1 = run_figure1(suite=suite)
        f2 = run_figure2(suite=suite)
        kernels = {n: list(w.kernels) for n, w in suite.workloads.items()}
        parse(figure1_svg(f1.normalized, kernels))
        parse(figure2_svg(f2.series))
