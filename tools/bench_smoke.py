"""CI smoke guard for the translation fast path and the fault harness.

Runs the STREAM workload once through the per-instruction interpreter
and once through the block translator and exits non-zero if translation
is not faster. This is deliberately a coarse guard — on a noisy shared
box the exact speedup varies, but translation dropping *below* the
interpreter means the fast path has regressed into dead weight and the
build should fail::

    PYTHONPATH=src python tools/bench_smoke.py

It also guards the block-summary analysis gap: a fully analyzed run
(fused engine over translate-time block-summary events, §3–§5 metrics)
must stay within ``ANALYZED_MAX_RATIO`` of the raw translated run.
Before block summaries the fused engine cost ~7× raw translation; the
summary layer's whole point is closing that gap, so it regressing past
2.5× fails the build.

It then runs a fault-injection smoke: the 4-config STREAM matrix across
a 2-worker pool with one injected worker crash — the resilient executor
must retry the killed plan and complete the suite (docs/robustness.md).

Then a sharding smoke: a mid-size STREAM config analyzed serially
and sharded must produce byte-identical result documents, and on a box
with two or more cores the sharded run's wall-clock must not exceed the
serial run's (on one core the timing comparison is skipped — sharding
there degenerates to serial by design, so timing it would only measure
noise).

Finally, a warm-pool smoke: the 4-config STREAM matrix through the
warm execution path must be byte-identical to and no slower than
fresh-process execution (within ``WARM_MAX_RATIO`` — this guard runs
*everywhere*, including single-core boxes, because warm reuse must
never regress into overhead). On two or more cores it additionally
checks that warm repeat plans on a persistent pool complete faster
than their cold first runs (skipped honestly on one core, where pool
workers time-slice a single CPU and the comparison measures only the
scheduler).

With ``--serve-only`` the script instead runs the serve-daemon chaos
smoke (its own CI job): start ``repro serve`` as a real subprocess,
submit the full five-workload two-ISA suite, SIGKILL the daemon
mid-run, restart it on the same cache, and require that the recovered
job finishes with artifacts byte-identical to a direct ``run_suite``
rendering and with zero re-simulation of plans journaled before the
kill (docs/serve.md)::

    PYTHONPATH=src python tools/bench_smoke.py --serve-only

With ``--dist-only`` it runs the distributed-tier chaos smoke (its own
CI job): start the daemon with ``--dist-port``, attach two real
``repro worker`` subprocesses, submit the full suite, SIGKILL one
worker mid-suite, and require the job to finish with artifacts
byte-identical to a direct ``run_suite`` rendering — the dispatcher
must observe the node loss, redispatch its leases, and lose or
double-count nothing (docs/dist.md)::

    PYTHONPATH=src python tools/bench_smoke.py --dist-only

Full numbers live in ``benchmarks/BENCH_emucore.json``; regenerate them
with ``benchmarks/bench_emucore.py`` when the core changes.
"""

from __future__ import annotations

import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.isa import get_isa  # noqa: E402
from repro.sim import run_image  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

SCALE = 0.02
REPEATS = 3
RATIO_REPEATS = 8

#: Problem-size scale for the sharding smoke: big enough that the
#: fast-forward pass is amortizable on a multi-core box, small enough
#: to stay a smoke test.
SHARD_SCALE = 0.05

#: A fully analyzed run (fused engine on block-summary events, no
#: windowed pass — the §3–§5 metrics every suite config computes) may
#: cost at most this multiple of the raw translated run.
ANALYZED_MAX_RATIO = 2.5

#: Warm execution may cost at most this multiple of fresh execution —
#: cache bookkeeping is cheap, so anything past a noise margin means
#: the warm path has regressed into overhead.
WARM_MAX_RATIO = 1.15


def _best(image, isa, translate: bool) -> tuple[float, int]:
    best = None
    instructions = 0
    for _ in range(REPEATS):
        started = time.perf_counter()
        result, _machine = run_image(image, isa, translate=translate)
        seconds = time.perf_counter() - started
        instructions = result.instructions
        if best is None or seconds < best:
            best = seconds
    return best, instructions


def _best_ratio_pair(compiled, isa) -> tuple[float, float, float]:
    """Translated/analyzed timings in interleaved rounds.

    Returns ``(best_translated, best_analyzed, best_round_ratio)``.
    The guard statistic is the *minimum per-round ratio*: a scheduler
    spike landing on either phase of a round only inflates that round,
    and the cleanest round survives — while a genuine analysis-path
    regression shifts every round up and still trips the limit.
    Comparing per-phase minima instead would pair timings from
    different rounds (different box states) and flap under load."""
    from repro.analysis import FusedAnalysisEngine
    from repro.sim.config import load_core_model

    model = load_core_model("tx2-riscv")
    best_t = best_a = best_r = None
    for _ in range(RATIO_REPEATS):
        started = time.perf_counter()
        run_image(compiled.image, isa, translate=True)
        trans = time.perf_counter() - started
        if best_t is None or trans < best_t:
            best_t = trans
        engine = FusedAnalysisEngine(regions=compiled.image.regions,
                                     model=model)
        started = time.perf_counter()
        run_image(compiled.image, isa, batch_sinks=[engine])
        engine.results()
        analyzed = time.perf_counter() - started
        if best_a is None or analyzed < best_a:
            best_a = analyzed
        if best_r is None or analyzed / trans < best_r:
            best_r = analyzed / trans
    return best_t, best_a, best_r


def _fault_smoke() -> int:
    """One injected worker crash must not fail the suite."""
    from repro.harness import Executor, FaultPlan, FaultSpec, plan_suite
    from repro.harness import faults

    plans = plan_suite(SCALE, workloads=("stream",), windowed=False)
    faults.install(FaultPlan([FaultSpec(
        site="worker", kind="crash", plan="stream/rv64/gcc12",
        attempts=(1,))]))
    try:
        results = Executor(jobs=2, retries=1, backoff=0.01).run(plans)
    finally:
        faults.uninstall()
    if len(results) != len(plans):
        print(f"FAIL: fault smoke returned {len(results)} of "
              f"{len(plans)} results", file=sys.stderr)
        return 1
    print(f"OK: suite of {len(plans)} configs survived an injected "
          f"worker crash")
    return 0


def _shard_smoke() -> int:
    """Sharded == serial byte-identity (and wall-clock on >= 2 cores)."""
    import json
    import os

    from repro.analysis import AnalysisConfig
    from repro.harness.experiments import run_config
    from repro.workloads import get_workload

    workload = get_workload("stream", SHARD_SCALE)
    cfg = AnalysisConfig(windowed=False)

    started = time.perf_counter()
    serial = run_config(workload, "rv64", "gcc12", analysis=cfg)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    sharded = run_config(workload, "rv64", "gcc12", analysis=cfg, shards=0)
    sharded_s = time.perf_counter() - started

    if json.dumps(serial.to_dict(), sort_keys=True) != \
            json.dumps(sharded.to_dict(), sort_keys=True):
        print("FAIL: sharded result differs from serial", file=sys.stderr)
        return 1
    print(f"OK: sharded result byte-identical to serial "
          f"(serial {serial_s:.2f}s, sharded {sharded_s:.2f}s)")

    cores = os.cpu_count() or 1
    if cores < 2:
        print("skip: single-core box — sharded wall-clock guard needs "
              ">= 2 cores")
        return 0
    if sharded_s > serial_s:
        print(f"FAIL: sharded run ({sharded_s:.2f}s) slower than serial "
              f"({serial_s:.2f}s) on {cores} cores — sharding has "
              f"regressed into overhead", file=sys.stderr)
        return 1
    print(f"OK: sharded run no slower than serial on {cores} cores")
    return 0


def _warm_smoke() -> int:
    """Warm execution == fresh execution, and never slower than it."""
    import json
    import os

    from repro.harness import Executor, plan_suite
    from repro.harness.events import EventBus, PlanFinished

    plans = plan_suite(SCALE, workloads=("stream",), windowed=False)

    started = time.perf_counter()
    fresh = Executor(jobs=1, warm_pool=False).run(plans)
    fresh_s = time.perf_counter() - started

    started = time.perf_counter()
    warm = Executor(jobs=1, warm_pool=True).run(plans)
    warm_s = time.perf_counter() - started

    fresh_docs = {p: json.dumps(r.to_dict(), sort_keys=True)
                  for p, r in fresh.items()}
    warm_docs = {p: json.dumps(r.to_dict(), sort_keys=True)
                 for p, r in warm.items()}
    if fresh_docs != warm_docs:
        print("FAIL: warm results differ from fresh-process results",
              file=sys.stderr)
        return 1
    print(f"OK: warm results byte-identical to fresh "
          f"(fresh {fresh_s:.2f}s, warm {warm_s:.2f}s)")

    if warm_s > fresh_s * WARM_MAX_RATIO:
        print(f"FAIL: warm run ({warm_s:.2f}s) slower than "
              f"{WARM_MAX_RATIO}x fresh ({fresh_s:.2f}s) — warm reuse "
              f"has regressed into overhead", file=sys.stderr)
        return 1
    print(f"OK: warm run within {WARM_MAX_RATIO}x of fresh everywhere")

    cores = os.cpu_count() or 1
    if cores < 2:
        print("skip: single-core box — warm-pool second-half guard "
              "needs >= 2 cores (pool workers would time-slice one CPU "
              "and the comparison would measure only the scheduler)")
        return 0

    # cold first half, then warm repeats of the same images: distinct
    # plans (max_instructions differs by one, never reached at this
    # scale) so nothing is deduplicated, identical simulation work so
    # the only difference is warm reuse.
    repeats = [p.with_overrides(max_instructions=p.max_instructions - 1)
               for p in plans]
    bus = EventBus()
    seconds: dict = {}
    bus.subscribe(lambda e: seconds.__setitem__(e.plan, e.seconds)
                  if isinstance(e, PlanFinished) else None)
    Executor(jobs=2, heartbeat=60.0, warm_pool=True,
             events=bus).run(list(plans) + repeats)
    cold_s = sum(seconds[p] for p in plans)
    repeat_s = sum(seconds[p] for p in repeats)
    if repeat_s > cold_s:
        print(f"FAIL: warm repeat plans ({repeat_s:.2f}s) slower than "
              f"their cold first runs ({cold_s:.2f}s) on {cores} cores",
              file=sys.stderr)
        return 1
    print(f"OK: warm repeats faster than cold first runs on {cores} "
          f"cores ({cold_s:.2f}s -> {repeat_s:.2f}s)")
    return 0


def _serve_smoke() -> int:
    """SIGKILL the serve daemon mid-suite; restart must recover the job
    byte-identically with zero re-simulation of journaled plans."""
    import json
    import os
    import subprocess
    import tempfile

    from repro.harness.cache import ResultCache
    from repro.harness.experiments import run_suite
    from repro.serve.app import render_suite_artifacts
    from repro.serve.client import ServeClient
    from repro.serve.journal import JobJournal, unfinished_jobs
    from repro.workloads import ALL_WORKLOADS

    workloads = sorted(ALL_WORKLOADS)
    params = {"scale": SCALE, "workloads": workloads, "windowed": False}
    total_plans = len(workloads) * 4  # 2 ISAs x 2 compiler profiles

    def start(cache_dir, ready_file):
        env = dict(os.environ, REPRO_ISA_CACHE_DIR=str(cache_dir))
        env["PYTHONPATH"] = (
            str(pathlib.Path(__file__).resolve().parent.parent / "src")
            + os.pathsep + env.get("PYTHONPATH", ""))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.harness.cli", "serve",
             "--port", "0", "--jobs", "2", "--queue-limit", "8",
             "--ready-file", str(ready_file), "--quiet"], env=env)
        deadline = time.monotonic() + 60.0
        while not ready_file.exists():
            if proc.poll() is not None or time.monotonic() > deadline:
                proc.kill()
                raise RuntimeError("serve daemon failed to start")
            time.sleep(0.05)
        return proc, json.loads(ready_file.read_text())

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        tmp = pathlib.Path(tmp)
        cache_dir = tmp / "cache"
        proc, info = start(cache_dir, tmp / "ready1.json")
        try:
            client = ServeClient(info["host"], info["port"])
            job_id = client.submit(params, client="smoke")["job"]
            journaled = 0
            deadline = time.monotonic() + 600.0
            while time.monotonic() < deadline:
                try:
                    journal = JobJournal.load(cache_dir, job_id)
                except Exception:
                    time.sleep(0.05)
                    continue
                journaled = len(journal.done)
                if journal.finished or journaled >= 1:
                    break
                time.sleep(0.05)
        finally:
            proc.kill()
            proc.wait(30)
        if journaled < 1 or JobJournal.load(cache_dir, job_id).finished:
            print("FAIL: serve smoke could not kill the daemon mid-suite "
                  f"({journaled} of {total_plans} plans journaled)",
                  file=sys.stderr)
            return 1
        print(f"OK: daemon SIGKILLed mid-suite with {journaled} of "
              f"{total_plans} plans journaled done")

        proc, info = start(cache_dir, tmp / "ready2.json")
        try:
            if info["recovered"] != [job_id]:
                print(f"FAIL: restart recovered {info['recovered']}, "
                      f"expected [{job_id}]", file=sys.stderr)
                return 1
            client = ServeClient(info["host"], info["port"])
            job = client.wait(job_id, timeout=900.0)
            if job["state"] != "done":
                print(f"FAIL: recovered job finished {job['state']!r}: "
                      f"{job.get('error', '')}", file=sys.stderr)
                return 1
            timing = client.stats()["timing"]
            if timing["cache_hits"] < journaled or \
                    timing["executed"] + timing["cache_hits"] != total_plans:
                print(f"FAIL: journaled plans were re-simulated "
                      f"(executed {timing['executed']}, cache hits "
                      f"{timing['cache_hits']}, {journaled} journaled "
                      f"before the kill)", file=sys.stderr)
                return 1
            print(f"OK: zero re-simulation after restart (executed "
                  f"{timing['executed']}, cache hits "
                  f"{timing['cache_hits']})")

            suite = run_suite(SCALE, workloads=tuple(workloads),
                              windowed=False, jobs=1,
                              cache=ResultCache(cache_dir))
            expected = render_suite_artifacts(suite, windowed=False)
            for name, text in sorted(expected.items()):
                if client.artifact(job_id, name) != text:
                    print(f"FAIL: {name} served over HTTP differs from "
                          f"the direct run_suite rendering",
                          file=sys.stderr)
                    return 1
            print(f"OK: all {len(expected)} artifacts byte-identical "
                  f"to a direct run")
            client.drain()
        finally:
            try:
                proc.wait(60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(30)
        if unfinished_jobs(cache_dir):
            print("FAIL: unfinished jobs remain after a clean drain",
                  file=sys.stderr)
            return 1
        print("OK: clean drain left no unfinished jobs")
    return 0


def _dist_smoke() -> int:
    """SIGKILL one of two worker nodes mid-suite; the dispatcher must
    redispatch its leases and finish byte-identical to a direct run."""
    import json
    import os
    import signal
    import subprocess
    import tempfile

    from repro.harness.cache import ResultCache
    from repro.harness.experiments import run_suite
    from repro.serve.app import render_suite_artifacts
    from repro.serve.client import ServeClient
    from repro.serve.journal import lease_records, unfinished_jobs
    from repro.workloads import ALL_WORKLOADS

    workloads = sorted(ALL_WORKLOADS)
    params = {"scale": SCALE, "workloads": workloads, "windowed": False}
    total_plans = len(workloads) * 4  # 2 ISAs x 2 compiler profiles
    src = pathlib.Path(__file__).resolve().parent.parent / "src"

    def env_for(cache_dir):
        env = dict(os.environ, REPRO_ISA_CACHE_DIR=str(cache_dir))
        env["PYTHONPATH"] = (str(src) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        return env

    with tempfile.TemporaryDirectory(prefix="dist-smoke-") as tmp:
        tmp = pathlib.Path(tmp)
        cache_dir = tmp / "cache"
        ready_file = tmp / "ready.json"
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.harness.cli", "serve",
             "--port", "0", "--jobs", "2", "--queue-limit", "8",
             "--dist-port", "0", "--lease-timeout", "30",
             "--node-heartbeat", "3",
             "--ready-file", str(ready_file), "--quiet"],
            env=env_for(cache_dir))
        workers: list[subprocess.Popen] = []
        try:
            deadline = time.monotonic() + 60.0
            while not ready_file.exists():
                if daemon.poll() is not None or \
                        time.monotonic() > deadline:
                    raise RuntimeError("serve daemon failed to start")
                time.sleep(0.05)
            info = json.loads(ready_file.read_text())
            client = ServeClient(info["host"], info["port"])
            for i in (1, 2):
                workers.append(subprocess.Popen(
                    [sys.executable, "-m", "repro.harness.cli", "worker",
                     "--connect", f"{info['host']}:{info['dist_port']}",
                     "--name", f"smoke-node-{i}",
                     "--cache-dir", str(tmp / f"node{i}"), "--quiet"],
                    env=env_for(cache_dir)))
            deadline = time.monotonic() + 60.0
            while client.nodes()["live"] < 2:
                if time.monotonic() > deadline:
                    raise RuntimeError("worker nodes failed to register")
                time.sleep(0.05)
            print("OK: daemon up with 2 registered worker nodes")

            job_id = client.submit(params, client="smoke")["job"]
            deadline = time.monotonic() + 600.0
            while client.nodes()["counters"]["completed"] < 2:
                if time.monotonic() > deadline:
                    raise RuntimeError("no remote plan completed in time")
                time.sleep(0.05)
            workers[0].send_signal(signal.SIGKILL)
            print("OK: one worker node SIGKILLed mid-suite")

            job = client.wait(job_id, timeout=900.0)
            if job["state"] != "done":
                print(f"FAIL: job finished {job['state']!r}: "
                      f"{job.get('error', '')}", file=sys.stderr)
                return 1
            nodes = client.nodes()
            if nodes["counters"]["nodes_lost"] < 1:
                print("FAIL: dispatcher never observed the killed node",
                      file=sys.stderr)
                return 1
            print(f"OK: suite completed after the node loss "
                  f"(counters: {nodes['counters']})")

            grants, settlements = lease_records(cache_dir, job_id)
            settled = {doc["lease_done"] for doc in settlements}
            unsettled = [doc["lease"] for doc in grants
                         if doc["lease"] not in settled]
            ok_leases = [doc for doc in settlements
                         if doc["status"] == "ok"]
            if unsettled:
                print(f"FAIL: {len(unsettled)} lease(s) never settled: "
                      f"{unsettled}", file=sys.stderr)
                return 1
            if len(ok_leases) != len({doc["lease_done"]
                                      for doc in ok_leases}):
                print("FAIL: a lease settled ok twice (double count)",
                      file=sys.stderr)
                return 1
            print(f"OK: all {len(grants)} journaled leases settled "
                  f"exactly once ({len(ok_leases)} ok)")

            suite = run_suite(SCALE, workloads=tuple(workloads),
                              windowed=False, jobs=1,
                              cache=ResultCache(cache_dir))
            expected = render_suite_artifacts(suite, windowed=False)
            for name, text in sorted(expected.items()):
                if client.artifact(job_id, name) != text:
                    print(f"FAIL: {name} differs from the direct "
                          f"run_suite rendering", file=sys.stderr)
                    return 1
            print(f"OK: all {len(expected)} artifacts byte-identical "
                  f"to a direct run ({total_plans} plans)")

            workers[1].send_signal(signal.SIGTERM)
            if workers[1].wait(30) != 0:
                print("FAIL: surviving worker did not drain cleanly on "
                      "SIGTERM", file=sys.stderr)
                return 1
            print("OK: surviving worker drained cleanly on SIGTERM")
            client.drain()
            if daemon.wait(60) != 0:
                print("FAIL: daemon did not drain cleanly",
                      file=sys.stderr)
                return 1
            if unfinished_jobs(cache_dir):
                print("FAIL: unfinished jobs remain after a clean drain",
                      file=sys.stderr)
                return 1
            print("OK: clean drain left no unfinished jobs")
        finally:
            for proc in [daemon] + workers:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(30)
    return 0


def main() -> int:
    if "--serve-only" in sys.argv[1:]:
        return _serve_smoke()
    if "--dist-only" in sys.argv[1:]:
        return _dist_smoke()
    workload = get_workload("stream", SCALE)
    compiled = workload.compile("rv64", "gcc12")
    isa = get_isa(compiled.isa_name)

    interp_s, instructions = _best(compiled.image, isa, translate=False)
    trans_s, analyzed_s, ratio = _best_ratio_pair(compiled, isa)

    interp_ips = instructions / interp_s
    trans_ips = instructions / trans_s
    print(f"interpreter: {interp_ips / 1e6:6.2f} M inst/s "
          f"({interp_s:.3f}s for {instructions} instructions)")
    print(f"translated : {trans_ips / 1e6:6.2f} M inst/s "
          f"({trans_s:.3f}s, {interp_s / trans_s:.2f}x)")

    if trans_ips < interp_ips:
        print("FAIL: translated path is slower than the interpreter",
              file=sys.stderr)
        return 1
    print("OK: translated path is faster than the interpreter")

    print(f"analyzed   : {instructions / analyzed_s / 1e6:6.2f} M inst/s "
          f"({analyzed_s:.3f}s, best round {ratio:.2f}x of raw "
          f"translated)")
    if ratio > ANALYZED_MAX_RATIO:
        print(f"FAIL: fused analysis costs {ratio:.2f}x raw translation "
              f"(limit {ANALYZED_MAX_RATIO}x) — the block-summary fast "
              f"path has regressed", file=sys.stderr)
        return 1
    print(f"OK: fused analysis within {ANALYZED_MAX_RATIO}x of raw "
          f"translation")
    return _fault_smoke() or _shard_smoke() or _warm_smoke()


if __name__ == "__main__":
    raise SystemExit(main())
