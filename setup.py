"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP-517 editable
installs (``pip install -e .``) cannot build a wheel. This shim lets pip
fall back to the legacy ``setup.py develop`` path::

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
