"""Microbenchmark for the emulation core's analysis paths.

Times one workload binary four ways and writes ``BENCH_emucore.json``
(instructions/second for each) next to this file::

    PYTHONPATH=src python benchmarks/bench_emucore.py --scale 0.02

* ``probe_free`` — per-instruction interpretation, no analysis attached:
  the interpreter's ceiling (and the differential oracle's speed).
* ``translated`` — the basic-block translation fast path
  (:mod:`repro.sim.blocks`), no analysis attached: the core's ceiling.
* ``legacy_probes`` — the five per-retire probe callbacks (path length,
  plain CP, scaled CP, mix, windowed CP): the pre-fused analysis cost.
  Probes force interpretation, so translation does not apply.
* ``fused`` — the batched single-pass :class:`FusedAnalysisEngine` fed
  per-retirement SoA batches (the PR-3 path, pinned by disabling the
  engine's event intake): the pre-block-summary analysis cost.
* ``analyzed`` — the same engine fed translate-time *block-summary
  events* (pre-aggregated per-block deltas, cross-block stitching only
  at runtime): the default analysis path.
* ``checked`` — per-instruction interpretation under the
  :class:`~repro.sim.invariants.InvariantChecker` probe: what the
  differential fuzzer's invariant oracle costs over ``probe_free``
  (recorded as ``invariant_check_overhead``).

Each mode is timed ``--repeats`` times and the best run is recorded
(the paths are deterministic; the minimum discards scheduler noise).
The ``translated`` entry also records the block-cache statistics
(blocks, inlined instructions, looping blocks, chained dispatches).

Not a pytest file: run it directly.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import __version__  # noqa: E402
from repro.analysis import (  # noqa: E402
    CriticalPathProbe,
    FusedAnalysisEngine,
    InstructionMixProbe,
    PathLengthProbe,
    WindowedCPProbe,
)
from repro.isa import get_isa  # noqa: E402
from repro.sim import run_image  # noqa: E402
from repro.sim.config import load_core_model  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

MODES = ("probe_free", "translated", "legacy_probes", "fused", "analyzed",
         "checked")


def _run_mode(compiled, isa, mode, model, windows):
    started = time.perf_counter()
    if mode == "probe_free":
        result, _ = run_image(compiled.image, isa, translate=False)
    elif mode == "checked":
        result, _ = run_image(compiled.image, isa, translate=False,
                              check_invariants=True)
    elif mode == "translated":
        result, _ = run_image(compiled.image, isa, translate=True)
    elif mode == "legacy_probes":
        probes = [
            PathLengthProbe(compiled.image.regions),
            CriticalPathProbe(),
            CriticalPathProbe(model),
            InstructionMixProbe(),
            WindowedCPProbe(windows, 0.5),
        ]
        result, _ = run_image(compiled.image, isa, probes)
    elif mode in ("fused", "analyzed"):
        engine = FusedAnalysisEngine(
            regions=compiled.image.regions, model=model,
            windowed=True, window_sizes=windows,
        )
        if mode == "fused":
            # pin the per-retirement SoA batch path: with event intake
            # off, the core falls back to exactly the PR-3 behavior
            engine.accepts_events = False
        result, _ = run_image(compiled.image, isa, batch_sinks=[engine])
        engine.results()
    else:
        raise ValueError(mode)
    seconds = time.perf_counter() - started
    return result, seconds


def _time_mode(compiled, isa, mode, model, windows, repeats):
    best = None
    result = None
    for _ in range(repeats):
        result, seconds = _run_mode(compiled, isa, mode, model, windows)
        if best is None or seconds < best:
            best = seconds
    return result, best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="stream")
    parser.add_argument("--isa", default="rv64")
    parser.add_argument("--profile", default="gcc12")
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--windows", type=str, default="4,16")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs per mode; the best is recorded")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path(__file__).parent
                        / "BENCH_emucore.json")
    args = parser.parse_args(argv)

    windows = tuple(int(w) for w in args.windows.split(","))
    workload = get_workload(args.workload, args.scale)
    compiled = workload.compile(args.isa, args.profile)
    isa = get_isa(compiled.isa_name)
    model = load_core_model("tx2" if args.isa == "aarch64" else "tx2-riscv")

    modes = {}
    for mode in MODES:
        result, seconds = _time_mode(
            compiled, isa, mode, model, windows, args.repeats)
        instructions = result.instructions
        ips = instructions / seconds if seconds else 0.0
        entry = {
            "instructions": instructions,
            "seconds": round(seconds, 4),
            "instructions_per_second": round(ips),
        }
        if mode == "translated" and result.translation is not None:
            entry["translation"] = result.translation
        modes[mode] = entry
        print(f"  {mode:14s}: {seconds:7.3f}s  "
              f"({ips / 1e6:6.2f} M inst/s)", flush=True)

    doc = {
        "version": __version__,
        "python": platform.python_version(),
        "workload": args.workload,
        "isa": args.isa,
        "profile": args.profile,
        "scale": args.scale,
        "windows": list(windows),
        "repeats": args.repeats,
        "modes": modes,
        "fused_vs_legacy_speedup": round(
            modes["legacy_probes"]["seconds"] / modes["fused"]["seconds"], 3)
        if modes["fused"]["seconds"] else None,
        "analyzed_vs_fused_speedup": round(
            modes["fused"]["seconds"] / modes["analyzed"]["seconds"], 3)
        if modes["analyzed"]["seconds"] else None,
        "analyzed_vs_translated_overhead": round(
            modes["analyzed"]["seconds"] / modes["translated"]["seconds"], 3)
        if modes["translated"]["seconds"] else None,
        "translated_vs_interpreter_speedup": round(
            modes["probe_free"]["seconds"] / modes["translated"]["seconds"], 3)
        if modes["translated"]["seconds"] else None,
        "invariant_check_overhead": round(
            modes["checked"]["seconds"] / modes["probe_free"]["seconds"], 3)
        if modes["probe_free"]["seconds"] else None,
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
