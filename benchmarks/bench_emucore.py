"""Microbenchmark for the emulation core's analysis paths.

Times one workload binary three ways and writes ``BENCH_emucore.json``
(instructions/second for each) next to this file::

    PYTHONPATH=src python benchmarks/bench_emucore.py --scale 0.02

* ``probe_free`` — plain emulation, no analysis attached: the core's
  ceiling.
* ``legacy_probes`` — the five per-retire probe callbacks (path length,
  plain CP, scaled CP, mix, windowed CP): the pre-fused analysis cost.
* ``fused`` — the batched single-pass :class:`FusedAnalysisEngine`: the
  default analysis path.

Not a pytest file: run it directly.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import __version__  # noqa: E402
from repro.analysis import (  # noqa: E402
    CriticalPathProbe,
    FusedAnalysisEngine,
    InstructionMixProbe,
    PathLengthProbe,
    WindowedCPProbe,
)
from repro.isa import get_isa  # noqa: E402
from repro.sim import run_image  # noqa: E402
from repro.sim.config import load_core_model  # noqa: E402
from repro.workloads import get_workload  # noqa: E402


def _time_mode(compiled, isa, mode, model, windows):
    started = time.perf_counter()
    if mode == "probe_free":
        result, _ = run_image(compiled.image, isa)
    elif mode == "legacy_probes":
        probes = [
            PathLengthProbe(compiled.image.regions),
            CriticalPathProbe(),
            CriticalPathProbe(model),
            InstructionMixProbe(),
            WindowedCPProbe(windows, 0.5),
        ]
        result, _ = run_image(compiled.image, isa, probes)
    elif mode == "fused":
        engine = FusedAnalysisEngine(
            regions=compiled.image.regions, model=model,
            windowed=True, window_sizes=windows,
        )
        result, _ = run_image(compiled.image, isa, batch_sinks=[engine])
        engine.results()
    else:
        raise ValueError(mode)
    seconds = time.perf_counter() - started
    return result.instructions, seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="stream")
    parser.add_argument("--isa", default="rv64")
    parser.add_argument("--profile", default="gcc12")
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--windows", type=str, default="4,16")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path(__file__).parent
                        / "BENCH_emucore.json")
    args = parser.parse_args(argv)

    windows = tuple(int(w) for w in args.windows.split(","))
    workload = get_workload(args.workload, args.scale)
    compiled = workload.compile(args.isa, args.profile)
    isa = get_isa(compiled.isa_name)

    modes = {}
    for mode in ("probe_free", "legacy_probes", "fused"):
        instructions, seconds = _time_mode(
            compiled, isa, mode, load_core_model(
                "tx2" if args.isa == "aarch64" else "tx2-riscv"), windows)
        ips = instructions / seconds if seconds else 0.0
        modes[mode] = {
            "instructions": instructions,
            "seconds": round(seconds, 4),
            "instructions_per_second": round(ips),
        }
        print(f"  {mode:14s}: {seconds:7.3f}s  "
              f"({ips / 1e6:6.2f} M inst/s)", flush=True)

    doc = {
        "version": __version__,
        "python": platform.python_version(),
        "workload": args.workload,
        "isa": args.isa,
        "profile": args.profile,
        "scale": args.scale,
        "windows": list(windows),
        "modes": modes,
        "fused_vs_legacy_speedup": round(
            modes["legacy_probes"]["seconds"] / modes["fused"]["seconds"], 3)
        if modes["fused"]["seconds"] else None,
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
