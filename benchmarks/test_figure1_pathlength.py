"""E1 — Figure 1: path lengths per kernel, normalized to GCC 9.2 AArch64.

Regenerates the figure's data (per-kernel dynamic instruction counts for
every workload × ISA × compiler) and checks the headline shapes the paper
reports in §3.2:

* path lengths mostly within ~10–20% between ISAs,
* RISC-V shorter on miniBUDE,
* GCC 12.2 shortens AArch64 STREAM (the §3.3 cmp fix), RISC-V unchanged.
"""

from repro.harness.experiments import run_figure1
from repro.workloads import run_workload
from repro.workloads.stream import Stream, StreamParams
from repro.analysis import PathLengthProbe

from benchmarks.conftest import show


def test_figure1_regenerate(benchmark, suite):
    figure = benchmark.pedantic(
        run_figure1, kwargs={"suite": suite}, rounds=1, iterations=1
    )
    show("Figure 1 — path length by kernel (normalized to GCC 9.2 AArch64)",
         figure.render())

    norm = figure.normalized
    # baseline bars sum to 1.0
    for name in norm:
        assert sum(norm[name][("aarch64", "gcc9")].values()) == 1.0

    # headline shape: totals between ISAs within ~25% everywhere
    for name in norm:
        for profile in ("gcc9", "gcc12"):
            rv = sum(norm[name][("rv64", profile)].values())
            arm = sum(norm[name][("aarch64", profile)].values())
            assert 0.7 < rv / arm < 1.45, (name, profile, rv / arm)

    # RISC-V shorter on miniBUDE (paper: 16.2% shorter)
    rv = sum(norm["minibude"][("rv64", "gcc12")].values())
    arm = sum(norm["minibude"][("aarch64", "gcc12")].values())
    assert rv < arm

    # GCC 12.2 shortens AArch64 STREAM; RISC-V STREAM identical
    arm9 = sum(norm["stream"][("aarch64", "gcc9")].values())
    arm12 = sum(norm["stream"][("aarch64", "gcc12")].values())
    rv9 = sum(norm["stream"][("rv64", "gcc9")].values())
    rv12 = sum(norm["stream"][("rv64", "gcc12")].values())
    assert arm12 < arm9
    assert rv12 == rv9


def test_pathlength_probe_throughput(benchmark):
    """End-to-end cost of one path-length measurement (compile + simulate +
    per-kernel attribution) on a small STREAM binary."""
    workload = Stream(StreamParams(n=512, ntimes=2))
    compiled = workload.compile("rv64", "gcc12")

    def measure():
        probe = PathLengthProbe(compiled.image.regions)
        run_workload(workload, "rv64", "gcc12", [probe], compiled=compiled)
        return probe.result()

    result = benchmark.pedantic(measure, rounds=3, iterations=1)
    assert result.total > 0
    assert set(result.per_region) >= {"copy", "scale", "add", "triad"}
