"""E3 — Table 2: latency-scaled critical paths under the TX2 models.

Regenerates the table and checks §5.2's shapes: scaled CPs are multiples of
the plain CPs (STREAM ≈ 6× — the FP-add chain at TX2's 6-cycle latency),
and scaling is nearly identical between the ISAs on the kernels whose
critical instructions correspond 1-to-1.
"""

from repro.harness.experiments import run_table2
from repro.analysis import CriticalPathProbe
from repro.sim.config import load_core_model
from repro.workloads import run_workload
from repro.workloads.stream import Stream, StreamParams

from benchmarks.conftest import show


def test_table2_regenerate(benchmark, suite):
    table = benchmark.pedantic(
        run_table2, kwargs={"suite": suite}, rounds=1, iterations=1
    )
    show("Table 2 — Scaled Critical Paths and ILP per Benchmark",
         table.render())

    # scaled CP >= plain CP everywhere
    for config in suite.configs.values():
        assert config.scaled_cp.critical_path >= config.cp.critical_path

    # STREAM scales ~6x on both ISAs (§5.2: "STREAM by 6X")
    for isa in ("aarch64", "rv64"):
        config = suite.get("stream", isa, "gcc12")
        factor = config.scaled_cp.critical_path / config.cp.critical_path
        assert 4.0 < factor < 7.0, (isa, factor)

    # where scaling matches between ISAs, scaled runtimes stay matched
    for name in ("stream", "minibude"):
        rv = suite.get(name, "rv64", "gcc12").scaled_cp.critical_path
        arm = suite.get(name, "aarch64", "gcc12").scaled_cp.critical_path
        assert 0.8 < rv / arm < 1.25, (name, rv / arm)


def test_scaled_cp_probe_throughput(benchmark):
    """Cost of the latency-weighted CP pass (same algorithm, plus the
    per-group weight lookup)."""
    workload = Stream(StreamParams(n=512, ntimes=2))
    compiled = workload.compile("rv64", "gcc12")
    model = load_core_model("tx2-riscv")

    def measure():
        probe = CriticalPathProbe(model)
        run_workload(workload, "rv64", "gcc12", [probe], compiled=compiled)
        return probe.result()

    result = benchmark.pedantic(measure, rounds=3, iterations=1)
    assert result.critical_path >= 1
