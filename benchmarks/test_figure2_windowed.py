"""E4 — Figure 2: mean ILP per ROB-window size (GCC 12.2 binaries).

Regenerates the figure's series and checks §6.2's shapes: the ISAs track
each other closely at every window size, mean ILP grows with window size,
and at small windows (≤ a few hundred entries) RISC-V tends to expose at
least as much ILP as AArch64 ("at lower window sizes RISC-V has more ILP
available").
"""

from repro.harness.experiments import run_figure2

from benchmarks.conftest import show


def test_figure2_regenerate(benchmark, suite):
    figure = benchmark.pedantic(
        run_figure2, kwargs={"suite": suite}, rounds=1, iterations=1
    )
    show("Figure 2 — mean ILP per window size (GCC 12.2)", figure.render())
    show("windowAverages.txt (artifact format)",
         figure.window_averages_text())

    for name, per_isa in figure.series.items():
        rv = dict(per_isa["rv64"])
        arm = dict(per_isa["aarch64"])
        for window in suite.window_sizes:
            # the ISAs track each other closely (§6.2: largest gap ~12%)
            ratio = rv[window] / arm[window]
            assert 0.75 < ratio < 1.35, (name, window, ratio)
            # ILP is bounded by the window (can't execute more than fits)
            assert rv[window] <= window and arm[window] <= window

        # ILP grows with the window for every benchmark/ISA
        for isa_points in per_isa.values():
            values = [v for _w, v in isa_points]
            assert values[0] < values[-1]

    # small windows: RISC-V at least on par for most benchmarks (§6.2)
    small = suite.window_sizes[0]
    favourable = sum(
        1 for per_isa in figure.series.values()
        if dict(per_isa["rv64"])[small] >= dict(per_isa["aarch64"])[small] * 0.97
    )
    assert favourable >= len(figure.series) - 1
