"""Shared fixtures for the benchmark harness.

The expensive step — compiling and simulating the full workload × ISA ×
compiler matrix with every probe attached — runs once per session; each
table/figure benchmark then regenerates its artifact from that suite (and
additionally times a representative end-to-end configuration).

``REPRO_BENCH_SCALE`` (default 0.2) scales problem sizes; raise it toward
1.0 for paper-shaped runs, lower it for quick smoke runs.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.experiments import run_suite

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))
#: window sizes used by the figure-2 bench (the paper's list)
BENCH_WINDOWS = (4, 16, 64, 200, 500, 1000, 2000)


@pytest.fixture(scope="session")
def suite():
    return run_suite(scale=BENCH_SCALE, windowed=True,
                     window_sizes=BENCH_WINDOWS)


def show(title: str, text: str) -> None:
    """Print an artifact so ``pytest benchmarks/ -s`` shows the regenerated
    rows; under the default capture they still appear for failed tests."""
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}\n{text}\n")
