"""E5 — the §3.3 STREAM deep-dive: listings, kernel shapes, branch math.

Regenerates the quantitative claims behind the paper's qualitative STREAM
analysis: the copy kernel is five instructions per element on both ISAs
(Listings 1–2), conditional branches are ~15% of RISC-V's STREAM execution,
and every AArch64 conditional branch pairs with one NZCV-setting compare.
"""

import re

from repro.analysis import InstructionMixProbe
from repro.compiler import compile_to_asm
from repro.workloads import run_workload
from repro.workloads.stream import Stream, StreamParams

from benchmarks.conftest import show


def _copy_kernel(asm_text: str) -> list[str]:
    lines = asm_text.splitlines()
    start = next(i for i, l in enumerate(lines) if ".region copy" in l)
    end = next(i for i in range(start, len(lines))
               if ".endregion" in lines[i])
    loop = [i for i in range(start, end)
            if re.fullmatch(r"\.loop\d+:", lines[i].strip())]
    body = []
    for line in lines[loop[-1] + 1 : end]:
        stripped = line.strip()
        if stripped and not stripped.endswith(":") and not stripped.startswith("."):
            body.append(stripped)
    return body


def test_stream_listings(benchmark):
    workload = Stream(StreamParams(n=6000, ntimes=1))

    def build():
        return {
            isa: _copy_kernel(compile_to_asm(workload.source(), isa, "gcc12"))
            for isa in ("aarch64", "rv64")
        }

    kernels = benchmark.pedantic(build, rounds=1, iterations=1)
    show("Listing 1 (AArch64 copy)", "\n".join(kernels["aarch64"]))
    show("Listing 2 (rv64g copy)", "\n".join(kernels["rv64"]))

    # both ISAs: five instructions per element (§3.3 / footnote 6)
    assert len(kernels["aarch64"]) == 5
    assert len(kernels["rv64"]) == 5
    # the structural difference the paper dissects:
    assert "lsl #3" in kernels["aarch64"][0]          # register-offset load
    assert kernels["aarch64"][3].startswith("cmp")    # NZCV setter
    assert kernels["rv64"][4].startswith("bne")       # fused compare+branch
    assert sum(1 for l in kernels["rv64"] if l.startswith("addi")) == 2
    assert sum(1 for l in kernels["aarch64"] if l.startswith("add")) == 1


def test_stream_branch_accounting(benchmark, suite):
    """'RISC-V performs ~15% of all instructions as branches' and AArch64
    pays one compare per conditional branch."""

    def analyse():
        probes = {}
        workload = Stream(StreamParams(n=1024, ntimes=2))
        for isa in ("rv64", "aarch64"):
            probe = InstructionMixProbe()
            run_workload(workload, isa, "gcc12", [probe])
            probes[isa] = probe.result()
        return probes

    mixes = benchmark.pedantic(analyse, rounds=1, iterations=1)
    rv, arm = mixes["rv64"], mixes["aarch64"]

    lines = [
        f"RISC-V:  branches {rv.branches}/{rv.total}"
        f" = {rv.branch_fraction:.1%} (conditional {rv.conditional_branches})",
        f"AArch64: branches {arm.branches}/{arm.total}"
        f" = {arm.branch_fraction:.1%}, NZCV setters {arm.flag_setters}"
        f" = {arm.flag_setter_fraction:.1%}",
    ]
    show("STREAM branch accounting (§3.3)", "\n".join(lines))

    assert 0.10 < rv.branch_fraction < 0.25
    assert rv.flag_setters == 0
    # one compare per conditional branch on AArch64 (within loop prologue noise)
    assert abs(arm.flag_setters - arm.conditional_branches) < 0.1 * arm.total
    # the compare overhead is the path AArch64 pays over RISC-V kernels
    assert arm.flag_setter_fraction > 0.08
