"""Ablations A1–A3: design choices the methodology sections call out.

* A1 — §4.1's zero-register chain breaking: how much measured ILP does the
  "reads of the zero register break critical paths" rule account for?
* A2 — §6.1's 50% window slide ("Due to time constraints we do not adjust
  this value"): sensitivity of mean window CP to the slide fraction.
* A3 — §5.1's choice of the TX2 latency model: scaled CPs under
  TX2-, A64FX- and M1-flavoured latencies and the identity (unit) model.
"""

import pytest

from repro.analysis import CriticalPathProbe, WindowedCPProbe
from repro.analysis.report import format_table
from repro.sim.config import load_core_model
from repro.workloads import run_workload
from repro.workloads.minisweep import MiniSweep, SweepParams
from repro.workloads.stream import Stream, StreamParams

from benchmarks.conftest import show

WL = Stream(StreamParams(n=512, ntimes=2))


def test_ablation_zero_register_break(benchmark):
    """A1: CP with and without the zero-register chain break."""

    def measure():
        breaking = CriticalPathProbe(break_on_zero=True)
        serial = CriticalPathProbe(break_on_zero=False)
        run_workload(WL, "rv64", "gcc12", [breaking, serial])
        return breaking.result(), serial.result()

    with_break, without = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        ["with zero-register break (paper)", with_break.critical_path,
         round(with_break.ilp, 1)],
        ["without (WAW-serialized)", without.critical_path,
         round(without.ilp, 1)],
    ]
    show("A1 — zero-register chain breaking",
         format_table(["variant", "CP", "ILP"], rows))
    # breaking chains can only shorten the critical path
    assert with_break.critical_path <= without.critical_path
    # and on STREAM it matters: constants re-materialize every kernel
    assert without.critical_path > 1.02 * with_break.critical_path


@pytest.mark.parametrize("slide", [0.25, 0.5, 1.0])
def test_ablation_window_slide(benchmark, slide):
    """A2: mean window CP under different slide fractions."""

    def measure():
        probe = WindowedCPProbe(window_sizes=(64,), slide_fraction=slide)
        run_workload(WL, "rv64", "gcc12", [probe])
        return probe.results()[64]

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    show(f"A2 — slide fraction {slide}",
         f"windows={result.count} mean CP={result.mean_cp:.2f} "
         f"mean ILP={result.mean_ilp:.2f}")
    assert result.count >= 1
    # overlapping windows see the same chains: the mean must be stable
    # across slides within a loose band (the paper's 50% is not magic)
    assert 1.0 <= result.mean_cp <= 64.0


def test_ablation_window_slide_consistency():
    """A2 (cross-check): different slides agree on mean CP within 15%."""
    means = {}
    for slide in (0.25, 0.5, 1.0):
        probe = WindowedCPProbe(window_sizes=(64,), slide_fraction=slide)
        run_workload(WL, "rv64", "gcc12", [probe])
        means[slide] = probe.results()[64].mean_cp
    base = means[0.5]
    for slide, mean in means.items():
        assert abs(mean - base) / base < 0.15, means


def test_ablation_latency_model(benchmark):
    """A3: the scaled CP under different canonical core models."""
    models = ["ideal", "tx2-riscv", "a64fx", "m1-firestorm"]
    workload = MiniSweep(SweepParams(ncx=2, ncy=3, ncz=3, na=6, nsweeps=1))

    def measure():
        probes = {name: CriticalPathProbe(load_core_model(name))
                  for name in models}
        plain = CriticalPathProbe()
        run_workload(workload, "rv64", "gcc12",
                     list(probes.values()) + [plain])
        return {name: p.result() for name, p in probes.items()}, plain.result()

    scaled, plain = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [["(unscaled §4 CP)", plain.critical_path, "1.00"]]
    for name in models:
        cp = scaled[name].critical_path
        rows.append([name, cp, f"{cp / plain.critical_path:.2f}"])
    show("A3 — scaled CP by latency model (minisweep, rv64g)",
         format_table(["model", "scaled CP", "x plain"], rows))

    assert scaled["ideal"].critical_path == plain.critical_path
    # A64FX's longer FP pipes stretch chains more than TX2's
    assert scaled["a64fx"].critical_path >= scaled["tx2-riscv"].critical_path
    # M1's short pipes stretch them least (of the real models)
    assert scaled["m1-firestorm"].critical_path <= scaled["tx2-riscv"].critical_path
