"""Synthetic validation of the paper's §7 branching claim.

"With the inclusion of comparison instructions, AArch64 binaries require
additional instructions when conditionally branching compared to RISC-V,
potentially leading to up to 15% longer paths with all other instructions
equivalent."

This sweep generates kernels whose loop bodies contain 0..4 data-dependent
integer conditionals over otherwise identical work, and measures how the
AArch64/RISC-V path-length ratio grows with branch density — the paper's
claim, isolated from any benchmark's other confounds.
"""

from repro.analysis import InstructionMixProbe
from repro.workloads.base import Workload, run_workload

from benchmarks.conftest import show

N = 400


class BranchSweep(Workload):
    name = "branch-sweep"
    kernels = ("sweep",)

    def __init__(self, conditionals: int):
        self.conditionals = conditionals

    def source(self) -> str:
        tests = "\n".join(f"""
      if (vals[j] == {k}) {{ acc = acc + 1; }}""" for k in range(self.conditionals))
        init = f"""
  for (long j = 0; j < {N}; j = j + 1) {{
    vals[j] = j % 7;
  }}"""
        return f"""
global long vals[{N}];
global long out;
func long main() {{
{init}
  long acc = 0;
  region "sweep" {{
    for (long j = 0; j < {N}; j = j + 1) {{
      acc = acc + vals[j];
{tests}
    }}
  }}
  out = acc;
  return 0;
}}
"""

    def expected(self):
        vals = [j % 7 for j in range(N)]
        acc = sum(vals)
        for k in range(self.conditionals):
            acc += sum(1 for v in vals if v == k)
        return {"out": float(acc)}

    # out is a long; read it via the machine directly
    def tolerance(self):
        return 0.0


def run_pair(conditionals: int):
    workload = BranchSweep(conditionals)
    lengths = {}
    fractions = {}
    for isa in ("aarch64", "rv64"):
        probe = InstructionMixProbe()
        # validate manually (out is a long, base.Workload expects doubles)
        run = run_workload(workload, isa, "gcc12", [probe], validate=False)
        got = run.machine.memory.load(run.compiled.image.symbol("out"), 8)
        assert got == int(workload.expected()["out"])
        lengths[isa] = run.path_length
        fractions[isa] = probe.result().conditional_branch_fraction
    return lengths, fractions


def test_branch_density_sweep(benchmark):
    def sweep():
        return {k: run_pair(k) for k in range(5)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = []
    ratios = {}
    for k, (lengths, fractions) in results.items():
        ratio = lengths["aarch64"] / lengths["rv64"]
        ratios[k] = ratio
        lines.append(
            f"{k} conditionals/iter: arm={lengths['aarch64']:7,} "
            f"rv={lengths['rv64']:7,}  arm/rv={ratio:.3f}  "
            f"(rv cond-branch fraction {fractions['rv64']:.1%})"
        )
    show("§7 synthetic branch-density sweep", "\n".join(lines))

    # the AArch64 penalty grows monotonically with branch density...
    values = [ratios[k] for k in sorted(ratios)]
    assert all(b >= a for a, b in zip(values, values[1:])), ratios
    # ...and spans a meaningful range, staying within the paper's "up to
    # ~15%" order of magnitude
    assert values[-1] - values[0] > 0.05
    assert values[-1] < 1.4
