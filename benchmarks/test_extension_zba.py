"""X1 — beyond the paper: does the Zba extension close the addressing gap?

The paper traces much of AArch64's path-length advantage on address-heavy
kernels to its register-offset loads/stores; RISC-V's rv64g baseline pays
``slli``+``add`` per generic access. The B-extension's Zba instructions
(``sh3add`` etc., ratified 2021 — after the paper's chosen baseline) fuse
exactly that pair. This experiment recompiles the RISC-V binaries with a
``gcc12-zba`` profile and measures how much of the gap one small
address-generation extension recovers — the kind of question the paper's
future work points at.
"""

from repro.analysis.report import format_table
from repro.workloads import ALL_WORKLOADS, get_workload, run_workload

from benchmarks.conftest import BENCH_SCALE, show


def test_zba_closes_addressing_gap(benchmark):
    def measure():
        rows = {}
        for name in ALL_WORKLOADS:
            workload = get_workload(name, BENCH_SCALE)
            rows[name] = {
                "arm": run_workload(workload, "aarch64", "gcc12").path_length,
                "rv": run_workload(workload, "rv64", "gcc12").path_length,
                "rv_zba": run_workload(workload, "rv64", "gcc12-zba").path_length,
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = []
    for name, r in rows.items():
        table.append([
            name, r["arm"], r["rv"], r["rv_zba"],
            f"{r['rv'] / r['arm']:.3f}", f"{r['rv_zba'] / r['arm']:.3f}",
        ])
    show("X1 — Zba ablation (path lengths, GCC 12.2 profile)",
         format_table(
             ["workload", "AArch64", "rv64g", "rv64g+zba",
              "rv/arm", "rv+zba/arm"], table,
         ))

    for name, r in rows.items():
        # Zba never lengthens a path...
        assert r["rv_zba"] <= r["rv"], name
    # ...and on the gather-heavy kernels it recovers a visible share of
    # the AArch64 addressing advantage
    for name in ("lbm", "minisweep"):
        r = rows[name]
        gap = r["rv"] - r["arm"]
        recovered = r["rv"] - r["rv_zba"]
        assert gap > 0
        assert recovered / gap > 0.1, (name, recovered, gap)
    # STREAM's kernels are pointer-bumped streams: Zba has nothing to fuse
    assert rows["stream"]["rv_zba"] == rows["stream"]["rv"]
