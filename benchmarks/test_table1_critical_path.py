"""E2 — Table 1: critical paths, ILP and 2 GHz runtimes per benchmark.

Regenerates the table and checks its §4.2 shapes: critical paths nearly
equal between ISAs for STREAM/miniBUDE/minisweep (so estimated runtimes
match even where path lengths differ), and STREAM's CP ≈ the array length
(the serial validation reduction chain).
"""

from repro.harness.experiments import run_table1
from repro.analysis import CriticalPathProbe
from repro.workloads import run_workload
from repro.workloads.stream import Stream, StreamParams

from benchmarks.conftest import show


def test_table1_regenerate(benchmark, suite):
    table = benchmark.pedantic(
        run_table1, kwargs={"suite": suite}, rounds=1, iterations=1
    )
    show("Table 1 — Critical Paths and ILP per Benchmark", table.render())

    for name in ("stream", "minibude", "minisweep"):
        cps = {
            isa: suite.get(name, isa, "gcc12").cp.critical_path
            for isa in ("aarch64", "rv64")
        }
        ratio = cps["rv64"] / cps["aarch64"]
        assert 0.85 < ratio < 1.15, (name, ratio)

    # miniBUDE: large path-length difference, near-identical CP (§4.2)
    bude_rv = suite.get("minibude", "rv64", "gcc12")
    bude_arm = suite.get("minibude", "aarch64", "gcc12")
    assert bude_rv.path_length < bude_arm.path_length
    assert abs(bude_rv.cp.critical_path - bude_arm.cp.critical_path) < (
        0.1 * bude_arm.cp.critical_path
    )

    # runtime = CP / clock everywhere
    for config in suite.configs.values():
        assert config.runtime_ms(2.0) > 0
        assert config.ilp > 1.0


def test_critical_path_probe_throughput(benchmark):
    """Cost of the §4.1 register-array + memory-map CP algorithm."""
    workload = Stream(StreamParams(n=512, ntimes=2))
    compiled = workload.compile("aarch64", "gcc12")

    def measure():
        probe = CriticalPathProbe()
        run_workload(workload, "aarch64", "gcc12", [probe], compiled=compiled)
        return probe.result()

    result = benchmark.pedantic(measure, rounds=3, iterations=1)
    assert 1 <= result.critical_path <= result.instructions
