"""F1 — the paper's §8 future work: finite OoO cores vs the §6 window proxy.

"With finite sized ROBs and fetch units a processor only has limited
insight into the program it is executing." The windowed critical path is a
proxy for a finite ROB; this experiment runs the real OoO timing model at
the same ROB sizes and compares the IPC it achieves against the windowed
mean ILP — the proxy should upper-bound the core (it ignores issue-width
and commit constraints) while tracking its growth with ROB size.
"""

from repro.analysis import WindowedCPProbe
from repro.analysis.report import format_table
from repro.sim.config import load_core_model
from repro.sim.inorder import InOrderTimingProbe
from repro.sim.ooo import OoOTimingProbe
from repro.workloads import run_workload
from repro.workloads.stream import Stream, StreamParams

from benchmarks.conftest import show

ROB_SIZES = (4, 16, 64, 200)


def test_future_work_ooo_vs_window_proxy(benchmark):
    workload = Stream(StreamParams(n=512, ntimes=1))
    results = {}

    def measure():
        for isa, model_name in (("aarch64", "tx2"), ("rv64", "tx2-riscv")):
            model = load_core_model(model_name)
            window = WindowedCPProbe(window_sizes=ROB_SIZES)
            cores = {rob: OoOTimingProbe(model, rob_size=rob, issue_width=4)
                     for rob in ROB_SIZES}
            inorder = InOrderTimingProbe(model)
            run_workload(workload, isa, "gcc12",
                         [window, inorder] + list(cores.values()))
            results[isa] = {
                "window": window.results(),
                "cores": {rob: p.result() for rob, p in cores.items()},
                "inorder": inorder.result(),
            }
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for isa in ("aarch64", "rv64"):
        for rob in ROB_SIZES:
            proxy = results[isa]["window"][rob].mean_ilp
            core = results[isa]["cores"][rob]
            rows.append([f"{isa} rob={rob}", round(proxy, 2),
                         round(core.ipc, 2), core.cycles])
        rows.append([f"{isa} in-order", "-",
                     round(results[isa]["inorder"].ipc, 2),
                     results[isa]["inorder"].cycles])
    show("F1 — windowed-ILP proxy vs OoO timing model (STREAM)",
         format_table(["config", "window mean ILP", "core IPC", "cycles"],
                      rows))

    for isa in ("aarch64", "rv64"):
        cores = results[isa]["cores"]
        # bigger ROB never hurts
        cycle_counts = [cores[rob].cycles for rob in ROB_SIZES]
        assert all(a >= b for a, b in zip(cycle_counts, cycle_counts[1:]))
        # OoO with a decent ROB beats the dual-issue in-order core
        assert cores[200].cycles < results[isa]["inorder"].cycles
        for rob in ROB_SIZES:
            core = cores[rob]
            proxy = results[isa]["window"][rob].mean_ilp
            # the unit-latency window proxy upper-bounds the real core's
            # IPC once real latencies and widths constrain it
            assert core.ipc <= proxy * 1.6 + 4.0

    # the ISAs stay close on the real core too (the paper's expectation)
    for rob in ROB_SIZES:
        rv = results["rv64"]["cores"][rob].cycles
        arm = results["aarch64"]["cores"][rob].cycles
        assert 0.7 < rv / arm < 1.4, (rob, rv / arm)
