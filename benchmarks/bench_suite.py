"""Timing script for the experiment engine: serial vs parallel vs cached.

Runs the suite several ways — in-process serial, process-parallel
(``--jobs``), intra-run sharded (``--shards``, auto by default), a
second cached pass, a trace-replay pass (changed window sizes against
the same cache, so analyses replay recorded retirement streams instead
of re-simulating), and a warm-reuse pass (the same plans twice through
one warm-enabled Executor with *no* result cache, so the second pass's
only advantage is the cross-plan warm level: cached images and reused
translated blocks) — and writes ``BENCH_suite.json`` next to this file
(or to ``--out``) so future PRs have a performance trajectory to
compare against::

    PYTHONPATH=src python benchmarks/bench_suite.py --scale 0.05 --jobs 4

The script is honest about the host it ran on: ``cpus`` records the
effective core count, and on a single-core box the parallel and sharded
comparisons are *skipped* rather than timed — multiprocess passes on
one core measure only fork/IPC overhead, and publishing a "speedup"
below 1.0 would poison the trajectory. Skipped passes record ``null``
plus a machine-readable reason.

Not a pytest file: run it directly. The cache passes use a throwaway
directory, so they never touch (or benefit from) the user's real cache.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import __version__  # noqa: E402
from repro.harness import Executor, ResultCache, plan_suite  # noqa: E402
from repro.harness.sharding import resolve_shards  # noqa: E402


def _timed_run(plans, *, jobs: int, cache=None) -> float:
    started = time.perf_counter()
    Executor(jobs=jobs, cache=cache).run(plans)
    return time.perf_counter() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05,
                        help="problem-size scale (default 0.05: quick)")
    parser.add_argument("--workloads", type=str, default="stream,minisweep",
                        help="comma-separated workloads (default: the two "
                             "fastest)")
    parser.add_argument("--jobs", type=int, default=max(2, os.cpu_count() or 2),
                        help="worker processes for the parallel pass")
    parser.add_argument("--shards", type=int, default=0,
                        help="slices per config for the sharded pass "
                             "(0 = auto: one per core)")
    parser.add_argument("--windows", type=str, default="4,16,64",
                        help="window sizes for the §6 probes")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path(__file__).parent
                        / "BENCH_suite.json")
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    multicore = cores >= 2
    workloads = tuple(args.workloads.split(","))
    windows = tuple(int(w) for w in args.windows.split(","))
    plans = plan_suite(args.scale, workloads=workloads, windowed=True,
                       window_sizes=windows)
    print(f"benchmarking {len(plans)} configs "
          f"(scale={args.scale:g}, jobs={args.jobs}, cores={cores}) ...",
          flush=True)

    serial_s = _timed_run(plans, jobs=1)
    print(f"  serial           : {serial_s:8.2f}s", flush=True)

    parallel_s = None
    if multicore:
        parallel_s = _timed_run(plans, jobs=args.jobs)
        print(f"  parallel (j={args.jobs}) : {parallel_s:8.2f}s", flush=True)
    else:
        print("  parallel         :  skipped (single-core host)", flush=True)

    shards = resolve_shards(args.shards, cores=cores)
    sharded_s = None
    if multicore and shards > 1:
        shard_plans = plan_suite(args.scale, workloads=workloads,
                                 windowed=True, window_sizes=windows,
                                 shards=shards)
        sharded_s = _timed_run(shard_plans, jobs=1)
        print(f"  sharded (s={shards}) : {sharded_s:8.2f}s", flush=True)
    else:
        print("  sharded          :  skipped (single-core host)", flush=True)

    # warm-reuse pass: two passes through ONE warm-enabled Executor and
    # no result cache — every plan re-executes, so the second pass
    # isolates exactly what the warm level saves (image compiles,
    # block/summary codegen). Valid on any core count: this is
    # in-process reuse, not parallelism.
    from repro.harness.events import EventBus, WarmCacheStats

    warm_stats: list[dict] = []
    bus = EventBus()
    bus.subscribe(lambda e: warm_stats.append(e.stats)
                  if isinstance(e, WarmCacheStats) else None)
    warm_exec = Executor(jobs=1, warm_pool=True, events=bus)
    started = time.perf_counter()
    warm_exec.run(plans)
    warm_cold_s = time.perf_counter() - started
    started = time.perf_counter()
    warm_exec.run(plans)
    warm_pool_s = time.perf_counter() - started
    reuse_hits = (warm_stats[1].get("translation_reuse_hits", 0)
                  if len(warm_stats) > 1 else 0)
    print(f"  warm first pass  : {warm_cold_s:8.2f}s", flush=True)
    print(f"  warm reuse pass  : {warm_pool_s:8.2f}s "
          f"({reuse_hits} translation reuse hits)", flush=True)

    with tempfile.TemporaryDirectory() as tmp:
        cold_s = _timed_run(plans, jobs=1, cache=ResultCache(tmp))
        warm_s = _timed_run(plans, jobs=1, cache=ResultCache(tmp))
        # same simulations, different window sizes: result-level misses,
        # trace-level hits — analyses replay the recorded streams
        replay_plans = plan_suite(
            args.scale, workloads=workloads, windowed=True,
            window_sizes=tuple(2 * w for w in windows))
        replay_s = _timed_run(replay_plans, jobs=1, cache=ResultCache(tmp))
    print(f"  cache cold       : {cold_s:8.2f}s", flush=True)
    print(f"  cache warm (hits): {warm_s:8.2f}s", flush=True)
    print(f"  trace replay     : {replay_s:8.2f}s", flush=True)

    skip_reason = None if multicore else "single-core host"
    doc = {
        "version": __version__,
        "python": platform.python_version(),
        "cpus": cores,
        "scale": args.scale,
        "workloads": list(workloads),
        "windows": list(windows),
        "configs": len(plans),
        "jobs": args.jobs,
        "shards": shards,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3)
        if parallel_s is not None else None,
        "sharded_seconds": round(sharded_s, 3)
        if sharded_s is not None else None,
        "warm_pool_cold_seconds": round(warm_cold_s, 3),
        "warm_pool_seconds": round(warm_pool_s, 3),
        "translation_reuse_hits": reuse_hits,
        "warm_reuse_speedup": round(warm_cold_s / warm_pool_s, 3)
        if warm_pool_s else None,
        "cache_cold_seconds": round(cold_s, 3),
        "cache_warm_seconds": round(warm_s, 3),
        "trace_replay_seconds": round(replay_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3)
        if parallel_s else None,
        "shard_speedup": round(serial_s / sharded_s, 3)
        if sharded_s else None,
        "skipped_reason": skip_reason,
        "cache_hit_speedup": round(cold_s / warm_s, 3) if warm_s else None,
        "trace_replay_speedup": round(serial_s / replay_s, 3)
        if replay_s else None,
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
