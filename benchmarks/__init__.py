"""Benchmark package (importable so benchmarks.conftest helpers are shared)."""
