#!/usr/bin/env python3
"""Figure 2 on one benchmark, plus the §6 ROB intuition as an ASCII plot.

Runs the windowed critical-path analysis (the paper's naive finite-ROB
model) over a range of window sizes for both ISAs and renders the mean-ILP
curves — the same series Figure 2 plots — as a terminal chart.

Run:  python examples/windowed_rob_study.py [workload] [scale]
      (workload defaults to lbm; scale to 0.5)
"""

import sys

from repro.analysis import WindowedCPProbe
from repro.workloads import get_workload, run_workload

WINDOWS = (4, 16, 64, 200, 500, 1000, 2000)


def measure(workload, isa):
    probe = WindowedCPProbe(window_sizes=WINDOWS)
    run_workload(workload, isa, "gcc12", [probe])
    return {w: r.mean_ilp for w, r in probe.results().items()}


def ascii_plot(series, width=60):
    top = max(max(points.values()) for points in series.values())
    print(f"mean ILP (0 .. {top:.1f})")
    for window in WINDOWS:
        print(f"  window {window:>5}:")
        for label, points in series.items():
            value = points[window]
            bar = "#" * max(1, round(value / top * width))
            print(f"    {label:8s} {bar} {value:.2f}")
    print()


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "lbm"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    workload = get_workload(name, scale)
    print(f"workload: {name} (scale {scale}); GCC 12.2 binaries, both ISAs")
    print("windowed critical path, slid by 50% of the window (§6.1)\n")

    series = {}
    for isa in ("aarch64", "rv64"):
        print(f"running {isa} ...", flush=True)
        series[isa] = measure(workload, isa)
    print()
    ascii_plot(series)

    small, large = WINDOWS[0], WINDOWS[-1]
    rv, arm = series["rv64"], series["aarch64"]
    print("the §6.2 observation to look for: the curves track closely;")
    print(f"  window {small:>4}: RISC-V/AArch64 ILP ratio = {rv[small]/arm[small]:.3f}")
    print(f"  window {large:>4}: RISC-V/AArch64 ILP ratio = {rv[large]/arm[large]:.3f}")
    print("(RISC-V tends to lead in small windows; AArch64 catches up as the")
    print("window grows — local dependences are spread further apart in the")
    print("RISC-V binaries.)")


if __name__ == "__main__":
    main()
