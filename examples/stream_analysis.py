#!/usr/bin/env python3
"""The §3.3 STREAM deep-dive, regenerated.

Reproduces the paper's qualitative STREAM analysis quantitatively:

* Listings 1 and 2 — the copy kernels both compilers emit (5 instructions
  per element on each ISA, with the structural differences the paper
  dissects: register-offset loads + cmp/b.ne on AArch64, pointer bumps +
  fused bne on RISC-V);
* the GCC 9.2 → 12.2 delta on AArch64 (the sub/subs → cmp bound fix);
* the branch accounting behind the "up to 15% longer paths" conclusion.

Run:  python examples/stream_analysis.py
"""

import re

from repro.analysis import InstructionMixProbe, PathLengthProbe
from repro.compiler import compile_to_asm
from repro.workloads import run_workload
from repro.workloads.stream import Stream, StreamParams

WORKLOAD = Stream(StreamParams(n=6000, ntimes=2))


def copy_kernel(asm_text):
    lines = asm_text.splitlines()
    start = next(i for i, l in enumerate(lines) if ".region copy" in l)
    end = next(i for i in range(start, len(lines)) if ".endregion" in lines[i])
    loops = [i for i in range(start, end)
             if re.fullmatch(r"\.loop\d+:", lines[i].strip())]
    body = []
    for line in lines[loops[-1] + 1 : end]:
        stripped = line.strip()
        if stripped and not stripped.endswith(":") and not stripped.startswith("."):
            body.append(stripped)
    return body


def main():
    source = WORKLOAD.source()

    print("== Listings: the copy kernel per ISA (GCC 12.2 profile) ==\n")
    for isa, listing in (("aarch64", "Listing 1"), ("rv64", "Listing 2")):
        body = copy_kernel(compile_to_asm(source, isa, "gcc12"))
        print(f"{listing} — {isa} ({len(body)} instructions/element):")
        for line in body:
            print(f"    {line}")
        print()

    print("== GCC 9.2's AArch64 loop-bound idiom ==\n")
    body9 = copy_kernel(compile_to_asm(source, "aarch64", "gcc9"))
    print(f"gcc9 copy kernel ({len(body9)} instructions/element):")
    for line in body9:
        print(f"    {line}")
    print("\nthe sub/subs pair re-materializes the 6000-element bound each")
    print("iteration; GCC 12.2 hoists it into a register and uses cmp.\n")

    print("== Path lengths and branch accounting ==\n")
    for isa in ("aarch64", "rv64"):
        for profile in ("gcc9", "gcc12"):
            mix = InstructionMixProbe()
            path = PathLengthProbe()
            run = run_workload(WORKLOAD, isa, profile, [mix, path])
            result = mix.result()
            print(
                f"{isa:8s} {profile:6s}: path={run.path_length:9,}  "
                f"branches={result.branch_fraction:6.1%}  "
                f"NZCV setters={result.flag_setter_fraction:6.1%}"
            )
    print()
    print("RISC-V's conditional branches are fused compare-and-branch; every")
    print("AArch64 conditional branch needs an NZCV-setting compare first —")
    print("'this slight difference in branching could lead to Arm requiring")
    print("up to 15% more instructions to execute this workload' (§3.3).")


if __name__ == "__main__":
    main()
