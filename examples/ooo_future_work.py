#!/usr/bin/env python3
"""The paper's §8 future work, executed: finite OoO cores for both ISAs.

"We plan to perform similar analysis through this simulation, using
real-world sizes for OoO resources, while also extrapolating to
hypothetical microarchitectural designs of the future."

This sweeps the OoO timing model over ROB sizes from tiny to M1-class
(~630 entries, the paper's §6 reference point) on TX2 latencies, for both
ISAs, and compares against the dual-issue in-order baseline the compilers
were tuned for (cortex-a55 / sifive-7-series) and the windowed-CP proxy.

Run:  python examples/ooo_future_work.py [workload] [scale]
"""

import sys

from repro.analysis import WindowedCPProbe
from repro.sim.config import load_core_model
from repro.sim.inorder import InOrderTimingProbe
from repro.sim.ooo import OoOTimingProbe
from repro.workloads import get_workload, run_workload

ROBS = (16, 64, 180, 630)      # ...180 = TX2, 630 = M1 Firestorm (§6)
MODELS = {"aarch64": "tx2", "rv64": "tx2-riscv"}


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "stream"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    workload = get_workload(name, scale)
    print(f"workload: {name} (scale {scale}), TX2-class latencies, 2 GHz\n")

    for isa in ("aarch64", "rv64"):
        model = load_core_model(MODELS[isa])
        inorder = InOrderTimingProbe(model, issue_width=2)
        cores = {rob: OoOTimingProbe(model, rob_size=rob, issue_width=4)
                 for rob in ROBS}
        windowed = WindowedCPProbe(window_sizes=ROBS)
        run = run_workload(workload, isa, "gcc12",
                           [inorder, windowed] + list(cores.values()))

        print(f"=== {isa}: {run.path_length:,} instructions ===")
        io = inorder.result()
        print(f"  in-order dual-issue     : {io.cycles:10,} cycles  "
              f"IPC {io.ipc:4.2f}  {io.runtime_ms():8.4f} ms")
        window_results = windowed.results()
        for rob in ROBS:
            core = cores[rob].result()
            proxy = window_results[rob].mean_ilp
            print(f"  OoO rob={rob:<4} issue=4   : {core.cycles:10,} cycles  "
                  f"IPC {core.ipc:4.2f}  {core.runtime_ms():8.4f} ms   "
                  f"(window-proxy ILP {proxy:5.2f})")
        print()

    print("reading: the windowed critical path (§6) tracks how the real OoO")
    print("model's IPC grows with the ROB, but ignores issue/commit widths")
    print("and latencies — 'more than just the critical path matters' (§8).")


if __name__ == "__main__":
    main()
