#!/usr/bin/env python3
"""Bring your own benchmark: a 5-point Jacobi stencil through the full
methodology.

The paper's artifact appendix (§A.7) notes the setup is customizable:
"It should be easy to compile other benchmarks targeting the relevant
architectures and run them through SimEng." This example does exactly that
with a kernel the paper didn't evaluate — write it once in kernelc, then
get the whole Table-1/Table-2/Figure-2 treatment for both ISAs.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.analysis import CriticalPathProbe, PathLengthProbe, WindowedCPProbe
from repro.sim.config import load_core_model
from repro.workloads.base import Workload, run_workload

N = 20
STEPS = 4


class Jacobi2D(Workload):
    """5-point Jacobi iteration on an N x N grid (double-buffered)."""

    name = "jacobi2d"
    kernels = ("jacobi",)

    def source(self):
        cells = N * N
        return f"""
global double grid0[{cells}];
global double grid1[{cells}];
global double residual;

func void init() {{
  for (long jj = 0; jj < {N}; jj = jj + 1) {{
    for (long ii = 0; ii < {N}; ii = ii + 1) {{
      double v = 0.0;
      if (jj == 0) {{ v = 1.0; }}
      grid0[jj * {N} + ii] = v;
      grid1[jj * {N} + ii] = v;
    }}
  }}
}}

func void sweep_ab() {{
  region "jacobi" {{
    for (long jj = 1; jj < {N - 1}; jj = jj + 1) {{
      for (long ii = 1; ii < {N - 1}; ii = ii + 1) {{
        grid1[jj * {N} + ii] = 0.25 * (grid0[jj * {N} + ii + 1]
          + grid0[jj * {N} + ii + -1] + grid0[jj * {N} + ii + {N}]
          + grid0[jj * {N} + ii + -{N}]);
      }}
    }}
  }}
}}

func void sweep_ba() {{
  region "jacobi" {{
    for (long jj = 1; jj < {N - 1}; jj = jj + 1) {{
      for (long ii = 1; ii < {N - 1}; ii = ii + 1) {{
        grid0[jj * {N} + ii] = 0.25 * (grid1[jj * {N} + ii + 1]
          + grid1[jj * {N} + ii + -1] + grid1[jj * {N} + ii + {N}]
          + grid1[jj * {N} + ii + -{N}]);
      }}
    }}
  }}
}}

func long main() {{
  init();
  for (long s = 0; s < {STEPS // 2}; s = s + 1) {{
    sweep_ab();
    sweep_ba();
  }}
  double total = 0.0;
  for (long c = 0; c < {cells}; c = c + 1) {{
    total = total + grid0[c];
  }}
  residual = total;
  return 0;
}}
"""

    def expected(self):
        grid = np.zeros((N, N))
        grid[0, :] = 1.0
        other = grid.copy()
        for _ in range(STEPS):
            other[1:-1, 1:-1] = 0.25 * (
                grid[1:-1, 2:] + grid[1:-1, :-2]
                + grid[2:, 1:-1] + grid[:-2, 1:-1]
            )
            grid, other = other, grid
        return {"residual": float(grid.sum())}


def main():
    workload = Jacobi2D()
    print(f"Jacobi 5-point stencil, {N}x{N} grid, {STEPS} sweeps")
    print(f"reference residual: {workload.expected()['residual']:.6f}\n")

    models = {"aarch64": load_core_model("tx2"),
              "rv64": load_core_model("tx2-riscv")}
    header = (f"{'ISA':8s} {'path':>9s} {'CP':>7s} {'ILP':>7s} "
              f"{'scaled CP':>10s} {'ILP@64':>7s}")
    print(header)
    print("-" * len(header))
    for isa in ("aarch64", "rv64"):
        path = PathLengthProbe()
        cp = CriticalPathProbe()
        scaled = CriticalPathProbe(models[isa])
        windowed = WindowedCPProbe(window_sizes=(64,))
        run = run_workload(workload, isa, "gcc12",
                           [path, cp, scaled, windowed])
        w64 = windowed.results()[64].mean_ilp
        print(
            f"{isa:8s} {run.path_length:9,} {cp.result().critical_path:7,} "
            f"{cp.result().ilp:7.1f} {scaled.result().critical_path:10,} "
            f"{w64:7.2f}"
        )
    print("\n(validated against the NumPy reference on every run)")


if __name__ == "__main__":
    main()
