#!/usr/bin/env python3
"""Quickstart: compile one kernel for both ISAs and compare, end to end.

Walks the whole pipeline the paper's methodology rests on:

1. write a small kernel in kernelc (the GCC stand-in's input language),
2. compile it for AArch64 (armv8-a+nosimd) and RISC-V (rv64g),
3. run each static binary on the emulation core,
4. attach the paper's probes (path length, critical path, instruction mix),
5. print the comparison — including the §3.3-style disassembly of the hot
   loop, straight from the simulator's decoder.

Run:  python examples/quickstart.py
"""

from repro.analysis import CriticalPathProbe, InstructionMixProbe, PathLengthProbe
from repro.workloads.base import Workload, run_workload

SOURCE = """
// dot product: the "hello world" of memory-bound kernels
global double x[2000];
global double y[2000];
global double dot;

func void init() {
  for (long j = 0; j < 2000; j = j + 1) {
    x[j] = (double)(j) * 0.5;
    y[j] = 2.0;
  }
}

func void dot_product() {
  region "dot" {
    double acc = 0.0;
    for (long j = 0; j < 2000; j = j + 1) {
      acc = acc + x[j] * y[j];
    }
    dot = acc;
  }
}

func long main() {
  init();
  dot_product();
  return 0;
}
"""


class DotProduct(Workload):
    name = "dot"
    kernels = ("dot",)

    def source(self):
        return SOURCE

    def expected(self):
        return {"dot": sum((j * 0.5) * 2.0 for j in range(2000))}


def disassemble_region(compiled, machine, isa, region_name):
    """Read the kernel's code back out of simulated memory and decode it."""
    region = next(r for r in compiled.image.regions if r.name == region_name)
    lines = []
    for pc in range(region.start, region.end, 4):
        word = machine.memory.load(pc, 4)
        lines.append(f"  {pc:#x}:  {isa.disassemble(word, pc)}")
    return "\n".join(lines)


def main():
    workload = DotProduct()
    print(f"reference result: dot = {workload.expected()['dot']}\n")

    for isa_name in ("aarch64", "rv64"):
        path = PathLengthProbe()
        cp = CriticalPathProbe()
        mix = InstructionMixProbe()
        run = run_workload(workload, isa_name, "gcc12", [path, cp, mix])

        from repro.isa import get_isa
        isa = get_isa(isa_name)
        print(f"=== {isa_name} ({run.compiled.profile}) ===")
        print(f"validated: dot = {run.outputs['dot']}")
        print(f"path length     : {run.path_length:,} instructions")
        print(f"critical path   : {cp.result().critical_path:,} cycles (ideal)")
        print(f"ILP             : {cp.result().ilp:.1f}")
        print(f"branch fraction : {mix.result().branch_fraction:.1%}")
        print("kernel region (decoded back out of the binary):")
        print(disassemble_region(run.compiled, run.machine, isa, "dot"))
        print()


if __name__ == "__main__":
    main()
