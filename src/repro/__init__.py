"""repro — reproduction of "An Empirical Comparison of the RISC-V and AArch64
Instruction Sets" (Weaver & McIntosh-Smith, SC-W 2023).

The package rebuilds, in pure Python, the full experimental pipeline of the
paper: two scalar RISC instruction sets (AArch64 ``armv8-a+nosimd`` and
RISC-V ``rv64g``), an assembler and static-ELF loader, a SimEng-style atomic
emulation core with pluggable analysis probes, a small optimizing compiler
("kernelc") with two cost-model profiles standing in for GCC 9.2 and
GCC 12.2, the five HPC workloads the paper evaluates, and the experiment
harness that regenerates every table and figure.

Typical entry points:

>>> from repro.harness import experiments
>>> fig1 = experiments.run_figure1(scale=0.5)   # doctest: +SKIP

or, for a single program:

>>> from repro.compiler import compile_workload   # doctest: +SKIP
"""

from repro._version import __version__

__all__ = ["__version__"]
