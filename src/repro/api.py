"""The stable public surface of the reproduction pipeline.

Everything a driver script, a notebook, or an external harness should
need lives here under one import, so internal module moves never break
callers:

>>> from repro import api
>>> cfg = api.AnalysisConfig(windowed=True, window_sizes=(16, 64))
>>> result = api.run_config(api.get_workload("stream", 0.05),
...                         "rv64", "gcc12", analysis=cfg)  # doctest: +SKIP

The pieces:

* :class:`AnalysisConfig` — the one typed description of *what to
  analyze and how* (engine tier, windowed parameters, ablation knobs).
* :func:`run_config` / :class:`ConfigResult` — compile + simulate +
  analyze one workload × ISA × profile binary.
* :class:`AnalysisResult` / :class:`AnalysisState` — the
  engine-independent analysis payload, and the mergeable mid-run state
  (``AnalysisState.merge`` stitches independently-analyzed stream
  segments: associative, exact).
* :func:`plan_suite` / :class:`ExperimentPlan` — the frozen, hashable
  description of the paper's experiment matrix.
* :class:`Executor` / :class:`ResultCache` — parallel execution with
  timeout/retry/heartbeat and the content-addressed result cache.
* :class:`MachineSnapshot` / :func:`resolve_shards` /
  :class:`PlanShardStats` — the deterministic intra-run sharding layer
  (snapshot + fast-forward + parallel analysis slices; pass
  ``shards=`` to :func:`run_config`, :func:`run_suite` or the plans).
* :func:`run_suite` + ``run_figure1``/``run_table1``/``run_table2``/
  ``run_figure2`` — the paper artifacts.
"""

from __future__ import annotations

from repro.analysis import (
    AnalysisConfig,
    AnalysisResult,
    AnalysisState,
    FusedAnalysisEngine,
)
from repro.harness.cache import ResultCache, default_cache_dir
from repro.harness.events import PlanShardStats
from repro.harness.executor import Executor
from repro.harness.experiments import (
    ConfigResult,
    SuiteResult,
    replay_config,
    run_config,
    run_figure1,
    run_figure2,
    run_suite,
    run_table1,
    run_table2,
)
from repro.harness.plan import ExperimentPlan, plan_suite
from repro.harness.sharding import resolve_shards, run_sharded_config
from repro.sim import MachineSnapshot
from repro.workloads import get_workload

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "AnalysisState",
    "ConfigResult",
    "Executor",
    "ExperimentPlan",
    "FusedAnalysisEngine",
    "MachineSnapshot",
    "PlanShardStats",
    "ResultCache",
    "SuiteResult",
    "default_cache_dir",
    "get_workload",
    "plan_suite",
    "replay_config",
    "resolve_shards",
    "run_config",
    "run_figure1",
    "run_figure2",
    "run_sharded_config",
    "run_suite",
    "run_table1",
    "run_table2",
]
