"""yamlite — a small YAML-subset parser and dumper.

SimEng describes its core models (latency groups, port layouts, ...) in YAML
files. PyYAML is not available in this offline environment, so this package
implements the subset of YAML those configs need:

* block mappings nested by indentation,
* block sequences (``- item``) and flow sequences (``[a, b, c]``),
* scalars: integers (decimal/hex), floats, booleans, null, bare and quoted
  strings,
* ``#`` comments and blank lines,
* a deterministic dumper for round-tripping configs.

It intentionally does **not** implement anchors, tags, multi-line scalars,
or flow mappings.
"""

from repro.yamlite.parser import loads, load_file, YamlError
from repro.yamlite.dumper import dumps

__all__ = ["loads", "load_file", "dumps", "YamlError"]
