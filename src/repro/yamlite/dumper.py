"""Deterministic dumper for the yamlite YAML subset."""

from __future__ import annotations

from typing import Any

_BARE_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-./+")


def _format_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        if not value:
            return '""'
        needs_quotes = (
            any(ch not in _BARE_SAFE for ch in value)
            or value[0] in "-?:#&*!|>%@`\"'"
            or value in ("null", "true", "false", "~")
            or _looks_numeric(value)
        )
        if needs_quotes:
            escaped = value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return value
    raise TypeError(f"cannot dump scalar of type {type(value).__name__}")


def _looks_numeric(value: str) -> bool:
    try:
        float(value)
        return True
    except ValueError:
        pass
    try:
        int(value, 0)
        return True
    except ValueError:
        return False


def _dump(value: Any, indent: int, out: list[str]) -> None:
    pad = " " * indent
    if isinstance(value, dict):
        if not value:
            raise TypeError("yamlite cannot dump an empty mapping in block form")
        for key, item in value.items():
            key_text = _format_scalar(str(key))
            if isinstance(item, dict) and item:
                out.append(f"{pad}{key_text}:")
                _dump(item, indent + 2, out)
            elif isinstance(item, list) and item and any(
                isinstance(elem, (dict, list)) for elem in item
            ):
                out.append(f"{pad}{key_text}:")
                _dump(item, indent + 2, out)
            elif isinstance(item, list):
                inline = ", ".join(_format_scalar(elem) for elem in item)
                out.append(f"{pad}{key_text}: [{inline}]")
            else:
                out.append(f"{pad}{key_text}: {_format_scalar(item)}")
    elif isinstance(value, list):
        for item in value:
            if isinstance(item, dict) and item:
                keys = list(item.items())
                first_key, first_value = keys[0]
                if isinstance(first_value, (dict, list)):
                    out.append(f"{pad}- {_format_scalar(str(first_key))}:")
                    _dump(first_value, indent + 4, out)
                else:
                    out.append(
                        f"{pad}- {_format_scalar(str(first_key))}: "
                        f"{_format_scalar(first_value)}"
                    )
                rest = dict(keys[1:])
                if rest:
                    _dump(rest, indent + 2, out)
            elif isinstance(item, list):
                inline = ", ".join(_format_scalar(elem) for elem in item)
                out.append(f"{pad}- [{inline}]")
            else:
                out.append(f"{pad}- {_format_scalar(item)}")
    else:
        out.append(f"{pad}{_format_scalar(value)}")


def dumps(value: Any) -> str:
    """Serialize ``value`` (dicts/lists/scalars) to yamlite text."""
    out: list[str] = []
    _dump(value, 0, out)
    return "\n".join(out) + "\n"
