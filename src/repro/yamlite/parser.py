"""Recursive-descent parser for the yamlite YAML subset."""

from __future__ import annotations

from typing import Any


class YamlError(ValueError):
    """Raised on malformed yamlite input."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class _Line:
    __slots__ = ("number", "indent", "text")

    def __init__(self, number: int, indent: int, text: str):
        self.number = number
        self.indent = indent
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Line({self.number}, indent={self.indent}, {self.text!r})"


def _strip_comment(raw: str) -> str:
    """Remove a trailing ``#`` comment, respecting quoted strings."""
    in_single = in_double = False
    for i, ch in enumerate(raw):
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif ch == "#" and not in_single and not in_double:
            # A comment hash must be at start or preceded by whitespace.
            if i == 0 or raw[i - 1] in " \t":
                return raw[:i]
    return raw


def _logical_lines(text: str) -> list[_Line]:
    lines: list[_Line] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlError("tabs are not allowed in indentation", number)
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append(_Line(number, indent, stripped.strip()))
    return lines


_BOOL_WORDS = {"true": True, "True": True, "false": False, "False": False}
_NULL_WORDS = {"null", "Null", "~", ""}


def parse_scalar(token: str, line: int | None = None) -> Any:
    """Parse a single scalar token into a Python value."""
    token = token.strip()
    if token in _NULL_WORDS:
        return None
    if token in _BOOL_WORDS:
        return _BOOL_WORDS[token]
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return token[1:-1]
    try:
        if token.lower().startswith(("0x", "-0x", "+0x")):
            return int(token, 16)
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _split_flow_sequence(body: str, line: int) -> list[str]:
    """Split ``a, b, c`` respecting quotes and nested brackets."""
    items: list[str] = []
    depth = 0
    in_single = in_double = False
    current: list[str] = []
    for ch in body:
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif not in_single and not in_double:
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
                if depth < 0:
                    raise YamlError("unbalanced ']' in flow sequence", line)
            elif ch == "," and depth == 0:
                items.append("".join(current))
                current = []
                continue
        current.append(ch)
    if in_single or in_double:
        raise YamlError("unterminated quote in flow sequence", line)
    if depth != 0:
        raise YamlError("unbalanced '[' in flow sequence", line)
    tail = "".join(current).strip()
    if tail or items:
        items.append(tail)
    return items


def _parse_value_token(token: str, line: int) -> Any:
    token = token.strip()
    if token.startswith("[") :
        if not token.endswith("]"):
            raise YamlError("unterminated flow sequence", line)
        body = token[1:-1].strip()
        if not body:
            return []
        return [_parse_value_token(item, line) for item in _split_flow_sequence(body, line)]
    return parse_scalar(token, line)


def _split_key_value(text: str, line: int) -> tuple[str, str] | None:
    """Split ``key: value`` at the first unquoted colon followed by space/EOL."""
    in_single = in_double = False
    for i, ch in enumerate(text):
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif ch == ":" and not in_single and not in_double:
            if i + 1 == len(text) or text[i + 1] in " \t":
                return text[:i].strip(), text[i + 1 :].strip()
    return None


class _Parser:
    def __init__(self, lines: list[_Line]):
        self.lines = lines
        self.pos = 0

    def peek(self) -> _Line | None:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def parse_block(self, indent: int) -> Any:
        line = self.peek()
        if line is None:
            return None
        if line.text.startswith("- ") or line.text == "-":
            return self.parse_sequence(line.indent)
        return self.parse_mapping(line.indent)

    def parse_sequence(self, indent: int) -> list[Any]:
        items: list[Any] = []
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return items
            if line.indent > indent:
                raise YamlError("unexpected indentation", line.number)
            if not (line.text.startswith("- ") or line.text == "-"):
                return items
            body = line.text[1:].strip()
            self.pos += 1
            if not body:
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    items.append(self.parse_block(nxt.indent))
                else:
                    items.append(None)
                continue
            kv = _split_key_value(body, line.number)
            if kv is not None:
                # "- key: value" starts an inline mapping item. Treat the
                # item body as a mapping whose keys are indented at the body
                # column.
                item_indent = indent + 2
                mapping: dict[str, Any] = {}
                key, value_text = kv
                if value_text:
                    mapping[_parse_key(key)] = _parse_value_token(value_text, line.number)
                else:
                    nxt = self.peek()
                    if nxt is not None and nxt.indent > item_indent:
                        mapping[_parse_key(key)] = self.parse_block(nxt.indent)
                    else:
                        mapping[_parse_key(key)] = None
                while True:
                    nxt = self.peek()
                    if nxt is None or nxt.indent < item_indent:
                        break
                    if nxt.text.startswith("- ") and nxt.indent == indent:
                        break
                    mapping.update(self.parse_mapping(nxt.indent))
                    break
                items.append(mapping)
            else:
                items.append(_parse_value_token(body, line.number))

    def parse_mapping(self, indent: int) -> dict[str, Any]:
        mapping: dict[str, Any] = {}
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return mapping
            if line.indent > indent:
                raise YamlError("unexpected indentation", line.number)
            if line.text.startswith("- "):
                return mapping
            kv = _split_key_value(line.text, line.number)
            if kv is None:
                raise YamlError(f"expected 'key: value', got {line.text!r}", line.number)
            key, value_text = kv
            key_parsed = _parse_key(key)
            if key_parsed in mapping:
                raise YamlError(f"duplicate key {key!r}", line.number)
            self.pos += 1
            if value_text:
                mapping[key_parsed] = _parse_value_token(value_text, line.number)
            else:
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    mapping[key_parsed] = self.parse_block(nxt.indent)
                else:
                    mapping[key_parsed] = None


def _parse_key(key: str) -> str:
    if len(key) >= 2 and key[0] == key[-1] and key[0] in "'\"":
        return key[1:-1]
    return key


def loads(text: str) -> Any:
    """Parse yamlite ``text`` into Python dicts/lists/scalars."""
    lines = _logical_lines(text)
    if not lines:
        return None
    parser = _Parser(lines)
    result = parser.parse_block(lines[0].indent)
    leftover = parser.peek()
    if leftover is not None:
        raise YamlError(
            f"unexpected content {leftover.text!r} (bad indentation?)", leftover.number
        )
    return result


def load_file(path) -> Any:
    """Parse a yamlite file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
