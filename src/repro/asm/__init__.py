"""Two-pass assembler shared by both ISAs.

The assembler owns everything ISA-independent — sections, labels, data
directives, kernel-region markers — and delegates instruction encoding to
the ISA object (see :class:`repro.isa.base.ISA`).
"""

from repro.asm.program import Program, Region, Section
from repro.asm.assembler import Assembler, assemble

__all__ = ["Program", "Region", "Section", "Assembler", "assemble"]
