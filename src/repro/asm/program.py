"""Assembled-program container.

A :class:`Program` is the output of the assembler and the input to the ELF
writer: named sections with load addresses and contents, a symbol table, an
entry point, and the *kernel regions* the paper's Figure 1 breaks path
lengths down by (PC ranges tagged with a kernel name, produced by the
``.region``/``.endregion`` directives).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Region:
    """A named PC range ``[start, end)`` attributing instructions to a kernel."""

    name: str
    start: int
    end: int

    def contains(self, pc: int) -> bool:
        return self.start <= pc < self.end


@dataclass
class Section:
    """A loadable section: name, base address, raw contents, and permissions."""

    name: str
    addr: int
    data: bytearray
    executable: bool = False
    writable: bool = True

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.addr + len(self.data)


@dataclass
class Program:
    """A fully assembled, position-fixed program image."""

    isa_name: str
    sections: dict[str, Section] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    globals: set[str] = field(default_factory=set)
    regions: list[Region] = field(default_factory=list)
    entry: int = 0

    def symbol(self, name: str) -> int:
        """Address of a symbol; raises ``KeyError`` with a helpful message."""
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(
                f"no symbol {name!r}; known: {sorted(self.symbols)[:20]}..."
            ) from None

    @property
    def text(self) -> Section:
        return self.sections[".text"]

    @property
    def data(self) -> Section | None:
        return self.sections.get(".data")

    def region_for(self, pc: int) -> str | None:
        """Kernel-region name covering ``pc``, or None (linear scan; callers
        that need speed should build their own lookup from ``regions``)."""
        for region in self.regions:
            if region.contains(pc):
                return region.name
        return None
