"""Two-pass assembler.

Pass 1 lays out sections (every instruction's size is exact, including
pseudo-instruction expansions) and collects labels, equates and kernel
regions. Pass 2 encodes instructions with all symbols resolved.

Supported directives::

    .text / .data / .bss          switch section (.bss is .data-with-zeros)
    .global NAME / .globl NAME    mark a symbol global (recorded, not enforced)
    .align N                      align to 2**N bytes
    .balign N                     align to N bytes
    .byte / .half / .word / .dword / .quad   integer data (comma lists)
    .float / .double              FP data (comma lists)
    .zero N / .space N / .skip N  N zero bytes
    .ascii "s" / .asciz "s" / .string "s"
    .equ NAME, VALUE / .set NAME, VALUE
    .region NAME ... .endregion   kernel-region markers (paper Figure 1)

Comments start with ``#`` or ``//``; labels are ``name:``. Default load
addresses: ``.text`` at 0x10000, ``.data`` at 0x200000.
"""

from __future__ import annotations

import struct

from repro.common import AssemblerError, align_up
from repro.asm.program import Program, Region, Section
from repro.isa.base import ISA

TEXT_BASE = 0x10000
DATA_BASE = 0x200000


def _strip_comment(line: str) -> str:
    # '#' introduces a comment only at the start of a line (it is the A64
    # immediate prefix elsewhere); '//' works anywhere outside strings.
    if line.lstrip().startswith("#"):
        return ""
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"':
            in_string = not in_string
        elif not in_string and ch == "/" and line[i : i + 2] == "//":
            return line[:i]
        i += 1
    return line


def split_operands(text: str) -> list[str]:
    """Split an operand list on top-level commas (respecting (), [] and "")."""
    operands: list[str] = []
    depth = 0
    in_string = False
    current: list[str] = []
    for ch in text:
        if ch == '"':
            in_string = not in_string
            current.append(ch)
        elif in_string:
            current.append(ch)
        elif ch in "([":
            depth += 1
            current.append(ch)
        elif ch in ")]":
            depth -= 1
            if depth < 0:
                raise AssemblerError(f"unbalanced bracket in {text!r}")
            current.append(ch)
        elif ch == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if in_string:
        raise AssemblerError(f"unterminated string in {text!r}")
    if depth != 0:
        raise AssemblerError(f"unbalanced bracket in {text!r}")
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


class _Statement:
    """One parsed source line: label(s) and/or a directive/instruction."""

    __slots__ = ("line", "labels", "kind", "name", "args")

    def __init__(self, line: int, labels: list[str], kind: str, name: str, args: str):
        self.line = line
        self.labels = labels
        self.kind = kind  # "directive" | "instruction" | "empty"
        self.name = name
        self.args = args


def _parse_lines(source: str) -> list[_Statement]:
    statements: list[_Statement] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw).strip()
        labels: list[str] = []
        while text:
            head = text.split(None, 1)[0]
            if head.endswith(":") and len(head) > 1:
                label = head[:-1]
                if not _valid_symbol(label):
                    raise AssemblerError(f"invalid label {label!r}", number)
                labels.append(label)
                text = text[len(head) :].strip()
            else:
                break
        if not text:
            if labels:
                statements.append(_Statement(number, labels, "empty", "", ""))
            continue
        parts = text.split(None, 1)
        name = parts[0]
        args = parts[1].strip() if len(parts) > 1 else ""
        kind = "directive" if name.startswith(".") else "instruction"
        statements.append(_Statement(number, labels, kind, name.lower(), args))
    return statements


def _valid_symbol(name: str) -> bool:
    if name.isdigit():
        return True  # GNU-style numeric local label (1:, 2:, ...)
    return bool(name) and (name[0].isalpha() or name[0] in "._$") and all(
        ch.isalnum() or ch in "._$" for ch in name
    )


_DATA_DIRECTIVES = {
    ".byte": (1, "int"),
    ".half": (2, "int"),
    ".word": (4, "int"),
    ".dword": (8, "int"),
    ".quad": (8, "int"),
    ".float": (4, "float"),
    ".double": (8, "float"),
}


class _AssemblyContext:
    """The symbol-resolution view handed to ISA encoders (pass 2)."""

    __slots__ = ("pc", "_symbols", "_equates", "_numeric", "_line")

    def __init__(self, symbols: dict[str, int], equates: dict[str, int],
                 numeric: dict[int, list[int]]):
        self.pc = 0
        self._symbols = symbols
        self._equates = equates
        self._numeric = numeric
        self._line: int | None = None

    def lookup(self, symbol: str) -> int:
        symbol = symbol.strip()
        if symbol in self._symbols:
            return self._symbols[symbol]
        if symbol in self._equates:
            return self._equates[symbol]
        # GNU numeric local labels: "1f" = next definition of "1:" after
        # this instruction, "1b" = most recent at or before it.
        if len(symbol) >= 2 and symbol[:-1].isdigit() and symbol[-1] in "fb":
            addresses = self._numeric.get(int(symbol[:-1]), [])
            if symbol[-1] == "f":
                for addr in addresses:
                    if addr > self.pc:
                        return addr
            else:
                for addr in reversed(addresses):
                    if addr <= self.pc:
                        return addr
            raise AssemblerError(
                f"no matching numeric label for {symbol!r}", self._line
            )
        raise AssemblerError(f"undefined symbol {symbol!r}", self._line)


class Assembler:
    """Two-pass assembler for one ISA. Reusable across programs."""

    def __init__(self, isa: ISA):
        self.isa = isa

    def assemble(self, source: str, *, text_base: int = TEXT_BASE,
                 data_base: int = DATA_BASE) -> Program:
        """Assemble ``source`` into a position-fixed :class:`Program`."""
        statements = _parse_lines(source)
        program = Program(isa_name=self.isa.name)
        equates: dict[str, int] = {}

        # ---- pass 1: layout -------------------------------------------------
        counters = {".text": text_base, ".data": data_base}
        section = ".text"
        region_stack: list[tuple[str, int]] = []
        regions: list[Region] = []
        pending_sizes: list[int] = []  # per instruction statement, for pass 2

        numeric_labels: dict[int, list[int]] = {}
        for stmt in statements:
            pc = counters[section]
            for label in stmt.labels:
                if label.isdigit():
                    numeric_labels.setdefault(int(label), []).append(pc)
                    continue
                if label in program.symbols or label in equates:
                    raise AssemblerError(f"duplicate symbol {label!r}", stmt.line)
                program.symbols[label] = pc
            if stmt.kind == "empty":
                continue
            if stmt.kind == "directive":
                section, consumed = self._pass1_directive(
                    stmt, section, counters, program, equates, region_stack, regions
                )
                counters[section] += consumed
            else:
                if section != ".text":
                    raise AssemblerError("instructions outside .text", stmt.line)
                operands = split_operands(stmt.args) if stmt.args else []
                operands = [self._substitute_equates(op, equates) for op in operands]
                try:
                    size = self.isa.instruction_size(stmt.name, operands)
                except AssemblerError as err:
                    raise AssemblerError(str(err), stmt.line) from None
                pending_sizes.append(size)
                counters[section] += size
        if region_stack:
            name, _start = region_stack[-1]
            raise AssemblerError(f"unterminated .region {name!r}")

        # ---- pass 2: encode -------------------------------------------------
        ctx = _AssemblyContext(program.symbols, equates, numeric_labels)
        text = bytearray()
        data = bytearray()
        counters2 = {".text": text_base, ".data": data_base}
        section = ".text"
        inst_index = 0

        for stmt in statements:
            if stmt.kind == "empty":
                continue
            ctx._line = stmt.line
            if stmt.kind == "directive":
                section = self._pass2_directive(
                    stmt, section, counters2, {".text": text, ".data": data},
                    equates, ctx,
                )
                continue
            operands = split_operands(stmt.args) if stmt.args else []
            operands = [self._substitute_equates(op, equates) for op in operands]
            ctx.pc = counters2[".text"]
            try:
                words = self.isa.encode_instruction(stmt.name, operands, ctx)
            except AssemblerError as err:
                raise AssemblerError(str(err), stmt.line) from None
            expected = pending_sizes[inst_index]
            inst_index += 1
            if len(words) * self.isa.word_size != expected:
                raise AssemblerError(
                    f"{stmt.name}: pass-1 size {expected} != pass-2 size "
                    f"{len(words) * self.isa.word_size}", stmt.line,
                )
            for word in words:
                text += word.to_bytes(self.isa.word_size, "little")
            counters2[".text"] += expected

        program.sections[".text"] = Section(
            ".text", text_base, text, executable=True, writable=False
        )
        if data:
            program.sections[".data"] = Section(".data", data_base, data)
        program.regions = regions
        entry = program.symbols.get("_start", program.symbols.get("main"))
        if entry is None:
            raise AssemblerError("no _start or main symbol to use as entry point")
        program.entry = entry
        return program

    # -- directive handling ---------------------------------------------------

    def _pass1_directive(self, stmt, section, counters, program, equates,
                         region_stack, regions) -> tuple[str, int]:
        name, args, line = stmt.name, stmt.args, stmt.line
        pc = counters[section]
        if name in (".text",):
            return ".text", 0
        if name in (".data", ".bss"):
            return ".data", 0
        if name in (".global", ".globl"):
            program.globals.add(args.strip())
            return section, 0
        if name == ".align":
            n = self._int(args, line)
            return section, align_up(pc, 1 << n) - pc
        if name == ".balign":
            n = self._int(args, line)
            return section, align_up(pc, n) - pc
        if name in _DATA_DIRECTIVES:
            width, _kind = _DATA_DIRECTIVES[name]
            count = len(split_operands(args))
            if count == 0:
                raise AssemblerError(f"{name} needs at least one value", line)
            return section, width * count
        if name in (".zero", ".space", ".skip"):
            return section, self._int(args, line)
        if name in (".ascii", ".asciz", ".string"):
            value = self._string(args, line)
            extra = 0 if name == ".ascii" else 1
            return section, len(value) + extra
        if name in (".equ", ".set"):
            parts = split_operands(args)
            if len(parts) != 2:
                raise AssemblerError(f"{name} expects NAME, VALUE", line)
            equates[parts[0]] = self._int(parts[1], line)
            return section, 0
        if name == ".region":
            region_name = args.strip().strip('"')
            if not region_name:
                raise AssemblerError(".region needs a name", line)
            region_stack.append((region_name, pc))
            return section, 0
        if name == ".endregion":
            if not region_stack:
                raise AssemblerError(".endregion without .region", line)
            region_name, start = region_stack.pop()
            regions.append(Region(region_name, start, pc))
            return section, 0
        raise AssemblerError(f"unknown directive {name}", line)

    def _pass2_directive(self, stmt, section, counters, buffers, equates, ctx) -> str:
        name, args, line = stmt.name, stmt.args, stmt.line
        if name == ".text":
            return ".text"
        if name in (".data", ".bss"):
            return ".data"
        if name in (".global", ".globl", ".equ", ".set", ".region", ".endregion"):
            return section
        buf = buffers[section]
        pc = counters[section]
        if name == ".align":
            pad = align_up(pc, 1 << self._int(args, line)) - pc
            buf += b"\x00" * pad
            counters[section] += pad
            return section
        if name == ".balign":
            pad = align_up(pc, self._int(args, line)) - pc
            buf += b"\x00" * pad
            counters[section] += pad
            return section
        if name in _DATA_DIRECTIVES:
            width, kind = _DATA_DIRECTIVES[name]
            for token in split_operands(args):
                token = self._substitute_equates(token, equates)
                if kind == "int":
                    value = self._value_or_symbol(token, ctx, line)
                    buf += (value & ((1 << (8 * width)) - 1)).to_bytes(width, "little")
                else:
                    fmt = "<f" if width == 4 else "<d"
                    buf += struct.pack(fmt, float(token))
                counters[section] += width
            return section
        if name in (".zero", ".space", ".skip"):
            n = self._int(args, line)
            buf += b"\x00" * n
            counters[section] += n
            return section
        if name in (".ascii", ".asciz", ".string"):
            value = self._string(args, line).encode()
            if name != ".ascii":
                value += b"\x00"
            buf += value
            counters[section] += len(value)
            return section
        raise AssemblerError(f"unknown directive {name}", line)  # pragma: no cover

    # -- small helpers ----------------------------------------------------

    @staticmethod
    def _substitute_equates(operand: str, equates: dict[str, int]) -> str:
        if operand in equates:
            return str(equates[operand])
        return operand

    @staticmethod
    def _int(text: str, line: int) -> int:
        try:
            return int(text.strip(), 0)
        except ValueError:
            raise AssemblerError(f"expected integer, got {text!r}", line) from None

    def _value_or_symbol(self, token: str, ctx, line: int) -> int:
        token = token.strip()
        try:
            return int(token, 0)
        except ValueError:
            return ctx.lookup(token)

    @staticmethod
    def _string(text: str, line: int) -> str:
        text = text.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AssemblerError(f"expected quoted string, got {text!r}", line)
        body = text[1:-1]
        return (
            body.replace("\\n", "\n")
            .replace("\\t", "\t")
            .replace("\\0", "\0")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )


def assemble(source: str, isa: ISA, **kwargs) -> Program:
    """One-shot convenience wrapper around :class:`Assembler`."""
    return Assembler(isa).assemble(source, **kwargs)
