"""Error taxonomy for the repro package.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch the whole family or a specific layer's failures.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class EncodingError(ReproError):
    """An instruction or immediate cannot be encoded (assembler side)."""


class DecodeError(ReproError):
    """A machine word does not decode to a known instruction."""

    def __init__(self, word: int, pc: int | None = None, message: str | None = None):
        self.word = word
        self.pc = pc
        text = message or f"cannot decode instruction word {word:#010x}"
        if pc is not None:
            text += f" at pc {pc:#x}"
        super().__init__(text)


class AssemblerError(ReproError):
    """Syntax or semantic error in assembly source."""

    def __init__(self, message: str, line: int | None = None, source: str | None = None):
        self.line = line
        self.source = source
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LoaderError(ReproError):
    """Malformed ELF image or unsatisfiable load request."""


class SimulationError(ReproError):
    """Runtime fault inside the simulated machine (bad memory access,
    unimplemented syscall, instruction-budget exhaustion, ...).

    ``addr``/``size`` localize memory faults (the offending access);
    ``pc`` localizes the faulting instruction. Layers that know more
    than the raiser fill these in after the fact (the emulation core
    back-fills ``pc`` from its loop state, and the post-mortem capture
    in :mod:`repro.sim.postmortem` turns them into a hexdump and a
    disassembly window).
    """

    def __init__(self, message: str, pc: int | None = None,
                 addr: int | None = None, size: int | None = None):
        self.pc = pc
        self.addr = addr
        self.size = size
        if pc is not None:
            message += f" (pc={pc:#x})"
        super().__init__(message)


class BudgetExhausted(SimulationError):
    """The instruction budget ran out before the guest program exited.

    A :class:`SimulationError` for compatibility with every existing
    caller, but distinguishable: the run loops land on the *exact*
    budgeted instruction before raising (the PR 3 budget-boundary
    machinery), so the sharded executor uses this as a precise
    stop-at-instruction-N signal — a slice that consumed exactly its
    budget is a completed slice, not a fault.
    """


class SnapshotError(ReproError):
    """A machine snapshot is corrupt, truncated, or mismatched.

    Raised when deserializing a :class:`repro.sim.snapshot.MachineSnapshot`
    whose framing (magic/version/CRC/length) does not check out, or when
    restoring one into a machine whose geometry (ISA, memory size) does
    not match the snapshot's.
    """


class CompilerError(ReproError):
    """kernelc front-end or back-end failure."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ConfigError(ReproError):
    """Invalid core-model configuration."""


class ExperimentError(ReproError):
    """User-facing experiment-harness failure.

    Raised for problems in how an experiment was *requested* — a suite
    built without windowed analysis handed to the Figure 2 renderer, a
    ``report`` invocation whose results are not in the cache, a plan that
    exhausted its retry budget — as opposed to defects inside the
    simulator itself (:class:`SimulationError` and friends). Callers can
    catch this to distinguish "fix your invocation" from "file a bug".
    """
