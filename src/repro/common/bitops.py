"""Two's-complement bit manipulation on Python ints.

The simulated machines are 64-bit little-endian. Architectural integer state
is stored as *unsigned* Python ints in ``[0, 2**64)``; these helpers convert
between signed/unsigned views, extract and extend fields, and implement the
handful of bit-level primitives (rotates, CLZ, bit reversal, ...) the ISA
semantics need.

Everything here is pure and branch-light: these functions sit on the hot
decode/execute path of the emulation core.
"""

from __future__ import annotations

import struct

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF

_WIDTH_MASKS = {8: MASK8, 16: MASK16, 32: MASK32, 64: MASK64}


def bit(value: int, index: int) -> int:
    """Return bit ``index`` of ``value`` (0 or 1)."""
    return (value >> index) & 1


def bits(value: int, hi: int, lo: int) -> int:
    """Return the inclusive bit-field ``value[hi:lo]`` as an unsigned int.

    Mirrors the ``bits(31, 21)`` notation used in the Arm and RISC-V
    architecture manuals: ``hi`` and ``lo`` are bit positions, both included.
    """
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def sext(value: int, width: int) -> int:
    """Sign-extend the low ``width`` bits of ``value`` to a Python int.

    The result is a *signed* Python int (may be negative).
    """
    value &= (1 << width) - 1
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def zext(value: int, width: int) -> int:
    """Zero-extend (i.e. truncate to) the low ``width`` bits of ``value``."""
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int = 64) -> int:
    """Interpret an unsigned ``width``-bit pattern as a signed integer."""
    return sext(value, width)


def to_unsigned(value: int, width: int = 64) -> int:
    """Reduce a (possibly negative) Python int to its ``width``-bit pattern."""
    return value & ((1 << width) - 1)


def u64(value: int) -> int:
    """Truncate to an unsigned 64-bit pattern."""
    return value & MASK64


def u32(value: int) -> int:
    """Truncate to an unsigned 32-bit pattern."""
    return value & MASK32


def s64(value: int) -> int:
    """Interpret the low 64 bits of ``value`` as signed."""
    value &= MASK64
    return value - (1 << 64) if value >> 63 else value


def s32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as signed."""
    value &= MASK32
    return value - (1 << 32) if value >> 31 else value


def rotate_right64(value: int, amount: int) -> int:
    """Rotate a 64-bit pattern right by ``amount`` (mod 64)."""
    amount %= 64
    value &= MASK64
    if amount == 0:
        return value
    return ((value >> amount) | (value << (64 - amount))) & MASK64


def rotate_right32(value: int, amount: int) -> int:
    """Rotate a 32-bit pattern right by ``amount`` (mod 32)."""
    amount %= 32
    value &= MASK32
    if amount == 0:
        return value
    return ((value >> amount) | (value << (32 - amount))) & MASK32


def count_leading_zeros(value: int, width: int = 64) -> int:
    """Number of leading zero bits in the ``width``-bit pattern ``value``."""
    value &= (1 << width) - 1
    if value == 0:
        return width
    return width - value.bit_length()


def count_trailing_zeros(value: int, width: int = 64) -> int:
    """Number of trailing zero bits in the ``width``-bit pattern ``value``."""
    value &= (1 << width) - 1
    if value == 0:
        return width
    return (value & -value).bit_length() - 1


def popcount(value: int, width: int = 64) -> int:
    """Number of set bits in the ``width``-bit pattern ``value``."""
    return (value & ((1 << width) - 1)).bit_count()


def is_power_of_two(value: int) -> bool:
    """True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def bit_reverse(value: int, width: int = 64) -> int:
    """Reverse the bit order of the ``width``-bit pattern ``value``."""
    value &= (1 << width) - 1
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def byte_reverse(value: int, width: int = 64) -> int:
    """Reverse the byte order of the ``width``-bit pattern ``value``."""
    if width % 8:
        raise ValueError("width must be a multiple of 8")
    nbytes = width // 8
    return int.from_bytes(
        (value & ((1 << width) - 1)).to_bytes(nbytes, "little"), "big"
    )


def replicate(pattern: int, pattern_width: int, total_width: int) -> int:
    """Tile ``pattern`` (of ``pattern_width`` bits) across ``total_width`` bits.

    Used by the AArch64 logical-immediate decoder, where a 2/4/8/16/32/64-bit
    element is replicated across the register width.
    """
    if total_width % pattern_width:
        raise ValueError("total_width must be a multiple of pattern_width")
    pattern &= (1 << pattern_width) - 1
    result = 0
    for i in range(total_width // pattern_width):
        result |= pattern << (i * pattern_width)
    return result


def ones(count: int) -> int:
    """A pattern of ``count`` consecutive set bits."""
    return (1 << count) - 1


def fits_signed(value: int, width: int) -> bool:
    """True if ``value`` is representable as a signed ``width``-bit integer."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return lo <= value <= hi


def fits_unsigned(value: int, width: int) -> bool:
    """True if ``value`` is representable as an unsigned ``width``-bit integer."""
    return 0 <= value <= (1 << width) - 1


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError("alignment must be a power of two")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError("alignment must be a power of two")
    return (value + alignment - 1) & ~(alignment - 1)


# --- float <-> raw-bit conversions -----------------------------------------
#
# Floating-point register files store IEEE-754 values as Python floats; the
# conversions below are used at load/store boundaries and by FMOV/FCVT-style
# instructions that reinterpret bit patterns.

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")
_PACK_F = struct.Struct("<f")
_PACK_I = struct.Struct("<I")


def f64_to_bits(value: float) -> int:
    """Raw 64-bit pattern of an IEEE-754 double."""
    return _PACK_Q.unpack(_PACK_D.pack(value))[0]


def bits_to_f64(pattern: int) -> float:
    """IEEE-754 double from a raw 64-bit pattern."""
    return _PACK_D.unpack(_PACK_Q.pack(pattern & MASK64))[0]


def f32_to_bits(value: float) -> int:
    """Raw 32-bit pattern of an IEEE-754 single (rounds the input double)."""
    return _PACK_I.unpack(_PACK_F.pack(value))[0]


def bits_to_f32(pattern: int) -> float:
    """IEEE-754 single from a raw 32-bit pattern, widened to a double."""
    return _PACK_F.unpack(_PACK_I.pack(pattern & MASK32))[0]
