"""Explicit dependence-DAG construction (the road the paper didn't take).

§4.1: "Other tools are available to perform this sort of analysis, but
these produce full directed acyclic graphs which aren't necessary for our
study." This module builds that full DAG anyway — for two reasons:

* **cross-validation**: the longest path through the explicit DAG must
  equal the streaming :class:`~repro.analysis.critpath.CriticalPathProbe`
  result computed over the same instructions (tested property);
* **in-depth kernel analysis**: for a small window of execution the DAG
  (a ``networkx.DiGraph``) supports the per-kernel questions the paper
  defers to such tools — which chain is critical, what's on it, how wide
  the graph is per depth level.

Node ``i`` is the i-th retired instruction; edges point producer →
consumer through registers and 8-byte memory cells. Because the graph is
O(trace length), the probe takes a ``limit`` and simply stops recording
beyond it.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.analysis.critpath import mem_cells
from repro.isa.base import DecodedInst, InstructionGroup
from repro.sim.config import CoreModel


@dataclass
class DagStats:
    """Summary statistics of a dependence DAG."""

    nodes: int
    edges: int
    critical_path: int           # nodes on the longest chain
    critical_nodes: list[int]    # instruction indices along one such chain
    width_histogram: dict[int, int]  # depth level -> instructions at level

    @property
    def ilp(self) -> float:
        return self.nodes / self.critical_path if self.critical_path else 0.0


class DependenceDAGProbe:
    """Builds the RAW dependence DAG of (a prefix of) an execution."""

    needs_memory = True

    def __init__(self, limit: int = 20_000,
                 model: CoreModel | None = None):
        self.limit = limit
        self.graph = nx.DiGraph()
        self.count = 0
        self._last_reg_writer: dict[int, int] = {}
        self._last_mem_writer: dict[int, int] = {}
        if model is None:
            self.weights = None
        else:
            load, store, atomic = (InstructionGroup.LOAD,
                                   InstructionGroup.STORE,
                                   InstructionGroup.ATOMIC)
            self.weights = [
                1 if g in (load, store, atomic) else model.latency(g)
                for g in InstructionGroup
            ]

    def on_retire(self, inst: DecodedInst, reads, writes) -> None:
        if self.count >= self.limit:
            return
        node = self.count
        self.count += 1
        weight = 1 if self.weights is None else self.weights[inst.group]
        self.graph.add_node(node, mnemonic=inst.mnemonic, pc=inst.pc,
                            group=inst.group.name, weight=weight)
        for src in inst.srcs:
            producer = self._last_reg_writer.get(src)
            if producer is not None:
                self.graph.add_edge(producer, node)
        if reads:
            for addr, size in reads:
                for cell in mem_cells(addr, size):
                    producer = self._last_mem_writer.get(cell)
                    if producer is not None:
                        self.graph.add_edge(producer, node)
        for dst in inst.dsts:
            self._last_reg_writer[dst] = node
        if writes:
            for addr, size in writes:
                for cell in mem_cells(addr, size):
                    self._last_mem_writer[cell] = node

    # -- analyses -------------------------------------------------------

    def critical_path_length(self) -> int:
        """Weighted longest path (node weights = execution contribution),
        i.e. exactly what CriticalPathProbe computes streamingly."""
        if self.count == 0:
            return 0
        depth = self._depths()
        return max(depth.values())

    def critical_path_nodes(self) -> list[int]:
        """Instruction indices along one critical chain, in order."""
        if self.count == 0:
            return []
        depth = self._depths()
        node = max(depth, key=depth.get)
        chain = [node]
        while True:
            preds = list(self.graph.predecessors(chain[-1]))
            if not preds:
                break
            own = self.graph.nodes[chain[-1]]["weight"]
            target = depth[chain[-1]] - own
            nxt = next(p for p in preds if depth[p] == target)
            chain.append(nxt)
        chain.reverse()
        return chain

    def stats(self) -> DagStats:
        depth = self._depths()
        histogram: dict[int, int] = {}
        for node in self.graph.nodes:
            level = depth[node]
            histogram[level] = histogram.get(level, 0) + 1
        return DagStats(
            nodes=self.graph.number_of_nodes(),
            edges=self.graph.number_of_edges(),
            critical_path=self.critical_path_length(),
            critical_nodes=self.critical_path_nodes(),
            width_histogram=histogram,
        )

    def to_networkx(self) -> nx.DiGraph:
        return self.graph

    def _depths(self) -> dict[int, int]:
        """Depth (inclusive weighted chain length) per node, topologically.

        Node order *is* a topological order: edges always point from an
        earlier retired instruction to a later one.
        """
        depth: dict[int, int] = {}
        graph = self.graph
        for node in range(self.count):
            best = 0
            for pred in graph.predecessors(node):
                value = depth[pred]
                if value > best:
                    best = value
            depth[node] = best + graph.nodes[node]["weight"]
        return depth
