"""Path-length analysis (§3 of the paper).

Path length is simply the number of dynamically executed instructions. The
paper's Figure 1 breaks it down "by kernel or basic code block"; we attribute
each retired instruction to the kernel region (``.region`` marker range)
covering its PC. Instructions outside every region are attributed to
``"other"`` (startup, glue, validation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.asm.program import Region
from repro.isa.base import DecodedInst


#: Bump when the serialized shape of :class:`PathLengthResult` changes.
PATHLENGTH_SCHEMA = 1


@dataclass
class PathLengthResult:
    """Total and per-kernel dynamic instruction counts."""

    total: int = 0
    per_region: dict[str, int] = field(default_factory=dict)

    def fraction(self, region: str) -> float:
        """Share of the total path length spent in ``region``."""
        if self.total == 0:
            return 0.0
        return self.per_region.get(region, 0) / self.total

    def to_dict(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_dict`."""
        return {"v": PATHLENGTH_SCHEMA, "total": self.total,
                "per_region": dict(self.per_region)}

    @classmethod
    def from_dict(cls, doc: dict) -> "PathLengthResult":
        if doc.get("v") != PATHLENGTH_SCHEMA:
            raise ValueError(f"PathLengthResult schema {doc.get('v')!r} != "
                             f"{PATHLENGTH_SCHEMA}")
        return cls(total=int(doc["total"]),
                   per_region={str(k): int(n)
                               for k, n in doc["per_region"].items()})


class PathLengthProbe:
    """Counts retired instructions, attributed to kernel regions by PC."""

    needs_memory = False

    def __init__(self, regions: Sequence[Region] = ()):
        self.regions = list(regions)
        self.total = 0
        self.counts: dict[str, int] = {}
        # PC -> region name cache; decode locations are finite, so this
        # settles quickly and the hot path is a single dict lookup.
        self._pc_region: dict[int, str] = {}

    def on_retire(self, inst: DecodedInst, reads, writes) -> None:
        self.total += 1
        pc = inst.pc
        name = self._pc_region.get(pc)
        if name is None:
            name = "other"
            for region in self.regions:
                if region.start <= pc < region.end:
                    name = region.name
                    break
            self._pc_region[pc] = name
        counts = self.counts
        counts[name] = counts.get(name, 0) + 1

    def result(self) -> PathLengthResult:
        return PathLengthResult(total=self.total, per_region=dict(self.counts))
