"""Trace analyses from the paper.

Each analysis is an emulation-core *probe* (see
:class:`repro.sim.emucore.Probe`), mirroring how the authors modified
SimEng's emulation core:

* :class:`repro.analysis.pathlength.PathLengthProbe` — §3, Figure 1 /
  Table 1 "Path Length": dynamic instruction counts, broken down by kernel
  region.
* :class:`repro.analysis.critpath.CriticalPathProbe` — §4, Table 1: the
  longest read-after-write chain through registers *and* memory; also its
  latency-scaled variant (§5, Table 2).
* :class:`repro.analysis.windowed.WindowedCPProbe` — §6, Figure 2: critical
  paths within a sliding window (a naive finite-ROB model).
* :class:`repro.analysis.mix.InstructionMixProbe` — the §3.3 STREAM
  deep-dive: per-mnemonic/group histograms and branch accounting.

All probes can be attached to a single run of a binary; the harness does
exactly that to avoid re-executing programs per experiment.

:class:`repro.analysis.engine.FusedAnalysisEngine` computes all of the
above in one pass over *batched* retirement streams
(:meth:`repro.sim.emucore.EmulationCore.run_batched`) — the default,
much faster path; the per-retire probes remain as the differential
oracle and for custom analyses.
"""

from repro.analysis.blocksummary import BlockSummary, build_summary
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import (
    AnalysisResult,
    AnalysisState,
    FusedAnalysisEngine,
    FusedResults,
)
from repro.analysis.pathlength import PathLengthProbe, PathLengthResult
from repro.analysis.critpath import (
    CriticalPathProbe,
    CriticalPathResult,
    window_critical_path,
)
from repro.analysis.windowed import WindowedCPProbe, WindowedCPResult
from repro.analysis.mix import InstructionMixProbe, InstructionMixResult
from repro.analysis.dag import DagStats, DependenceDAGProbe
from repro.analysis.report import ilp, runtime_ms, normalize

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "AnalysisState",
    "BlockSummary",
    "build_summary",
    "FusedAnalysisEngine",
    "FusedResults",
    "PathLengthProbe",
    "PathLengthResult",
    "CriticalPathProbe",
    "CriticalPathResult",
    "window_critical_path",
    "WindowedCPProbe",
    "WindowedCPResult",
    "InstructionMixProbe",
    "InstructionMixResult",
    "DagStats",
    "DependenceDAGProbe",
    "ilp",
    "runtime_ms",
    "normalize",
]
