"""Translate-time block summaries: analysis precomputed per superblock.

When the batched translator compiles a *static* superblock (no SYSCALL-
or ATOMIC-group instruction, so every execution retires the same
instructions and performs the same accesses), everything the fused
analysis engine derives per retirement is already fixed at translate
time: the static-table index sequence (the block's instruction-mix
vector and path-length delta), the intra-block dependence template with
per-instruction latencies, and the memory-access footprint (per-access
sizes; only the addresses vary). A :class:`BlockSummary` captures all of
it once, so the runtime stream can shrink from one structure-of-arrays
item per retirement to one ``(block id, execution count)`` event per
block run — the OSACA-style compile-once/analyze-once idiom applied to
the emulation core's own superblocks.

The summary also compiles a *chain-stitch function* per (latency table,
break-on-zero) configuration: straight-line generated Python that
advances the engine's global register/memory dependence chains over
``k`` executions of the block. The generated code resolves intra-block
register dependences to locals at compile time (the dependence template
folded into the code shape), keeps block-written registers in locals
across iterations, and only touches the engine's shared structures for
memory cells (addresses are dynamic) and the final register write-back —
so stitching a block execution costs a handful of local-variable ops per
instruction instead of the interpreter-style scan in
``FusedAnalysisEngine._cp_batch``. Results are exactly equal to the
per-retirement path; the differential tests enforce it.
"""

from __future__ import annotations

from repro.analysis.critpath import _MEM_BASE, mem_cells

__all__ = ["BlockSummary", "build_summary"]

#: Composite window-item key layout; must match repro.analysis.engine.
_IDX_SHIFT = 24
_RC_SHIFT = 12

#: Generated chain-stitch source -> code object (sources are
#: deterministic per block content, so repeated runs and the many
#: configurations over one binary share compiles).
_CP_CODE_CACHE: dict = {}

#: Bump whenever the generated chain-stitch source shape changes; part
#: of the persistent block-cache key (stale on-disk sources orphan
#: instead of preloading).
SUMMARY_VERSION = 1

#: Chain-stitch compile-cache telemetry (mirrors
#: :data:`repro.sim.blocks._CODE_STATS`).
_CP_STATS = {"hits": 0, "misses": 0, "preloaded": 0}

#: When not None, freshly compiled chain-stitch sources collect here for
#: the warm-cache layer to persist (see :func:`drain_new_cp_sources`).
_CP_NEW_SOURCES: list | None = None


def cp_cache_stats() -> dict:
    """A copy of the chain-stitch compile-cache counters."""
    return dict(_CP_STATS)


def set_cp_source_recording(enabled: bool) -> None:
    """Start (or stop) collecting freshly compiled chain-stitch sources."""
    global _CP_NEW_SOURCES
    if enabled and _CP_NEW_SOURCES is None:
        _CP_NEW_SOURCES = []
    elif not enabled:
        _CP_NEW_SOURCES = None


def drain_new_cp_sources() -> list:
    """Return (and clear) chain-stitch sources compiled since last drain."""
    global _CP_NEW_SOURCES
    if not _CP_NEW_SOURCES:
        return []
    drained = _CP_NEW_SOURCES
    _CP_NEW_SOURCES = []
    return drained


def preload_cp_sources(sources) -> int:
    """Compile chain-stitch ``sources`` ahead of demand; skips cached and
    uncompilable entries (preloading must never fail a run)."""
    loaded = 0
    for source in sources:
        if not isinstance(source, str) or source in _CP_CODE_CACHE:
            continue
        try:
            code = compile(source, "<block-summary-cp>", "exec")
        except (SyntaxError, ValueError):
            continue
        if len(_CP_CODE_CACHE) > 16384:
            _CP_CODE_CACHE.clear()
        _CP_CODE_CACHE[source] = code
        loaded += 1
    _CP_STATS["preloaded"] += loaded
    return loaded


class BlockSummary:
    """Immutable per-block analysis template (see module docstring).

    Built from the decoded instructions plus one *observed* execution
    (for the access footprint — access counts and sizes per instruction
    are decode-time constants for static blocks, the same invariant the
    batched translator's constant-folded bookkeeping relies on).
    """

    __slots__ = (
        "length", "idxs", "deps", "rcounts", "wcounts", "rsizes", "wsizes",
        "n_reads", "n_writes", "keys", "rends_rel", "wends_rel",
        "rends_np", "wends_np", "_cp_fns",
    )

    def __init__(self, insts, idxs, roffs, woffs, rsizes, wsizes):
        import numpy as np

        self.length = len(insts)
        self.idxs = tuple(idxs)
        #: dependence template: (srcs, dsts, group) per instruction
        self.deps = tuple((inst.srcs, inst.dsts, inst.group)
                          for inst in insts)
        prev_r = 0
        prev_w = 0
        rcounts = []
        wcounts = []
        for r, w in zip(roffs, woffs):
            rcounts.append(r - prev_r)
            wcounts.append(w - prev_w)
            prev_r = r
            prev_w = w
        self.rcounts = tuple(rcounts)
        self.wcounts = tuple(wcounts)
        self.rsizes = tuple(rsizes)
        self.wsizes = tuple(wsizes)
        self.n_reads = roffs[-1] if roffs else 0
        self.n_writes = woffs[-1] if woffs else 0
        #: per-item composite window keys (valid when no access spans an
        #: 8-byte cell; spanning flushes bypass the summary window path)
        self.keys = tuple(
            (idx << _IDX_SHIFT) | (rc << _RC_SHIFT) | wc
            for idx, rc, wc in zip(self.idxs, rcounts, wcounts)
        )
        #: per-instruction cumulative access ends within one execution
        self.rends_rel = tuple(roffs)
        self.wends_rel = tuple(woffs)
        self.rends_np = np.array(roffs, dtype=np.int64)
        self.wends_np = np.array(woffs, dtype=np.int64)
        self._cp_fns: dict = {}

    def cp_fn(self, weights: tuple, break_on_zero: bool):
        """The chain-stitch function for this latency configuration.

        Signature of the returned function::

            fn(k, reads, writes, r, w, rp, rs, mp, ms, bp, bs)
                -> (best_plain, best_scaled, spanned)

        ``r``/``w`` index the first of this block's accesses in the
        flush's flat ``reads``/``writes`` lists; the caller advances its
        cursors by ``k * n_reads`` / ``k * n_writes`` afterwards.
        ``spanned`` is 1 when any access crossed an 8-byte cell.
        """
        key = (weights, break_on_zero)
        fn = self._cp_fns.get(key)
        if fn is None:
            fn = _compile_cp_fn(self, weights, break_on_zero)
            self._cp_fns[key] = fn
        return fn


def build_summary(insts, idxs, roffs, woffs, rsizes, wsizes) -> BlockSummary:
    """Factory kept trivial on purpose (one obvious construction site)."""
    return BlockSummary(insts, idxs, roffs, woffs, rsizes, wsizes)


# ----------------------------------------------------- stitch-fn codegen

def _max_expr(target: str, terms: list[str], add) -> list[str]:
    """Lines assigning ``target`` = max(terms) + add (``add`` literal).

    Small term counts unroll to compare chains — a ``max()`` call costs
    ~5x a local compare-and-branch, and nearly every instruction has
    2-4 dependence terms."""
    if not terms:
        return [f"{target} = {add}"]
    if len(terms) == 1:
        return [f"{target} = {terms[0]} + {add}"]
    if len(terms) == 2:
        a, b = terms
        return [f"{target} = ({a} if {a} > {b} else {b}) + {add}"]
    if len(terms) <= 6:
        a, b = terms[0], terms[1]
        lines = [f"{target} = {a} if {a} > {b} else {b}"]
        for t in terms[2:]:
            lines.append(f"if {t} > {target}: {target} = {t}")
        lines.append(f"{target} += {add}")
        return lines
    return [f"{target} = max({', '.join(terms)}) + {add}"]


def _cp_source(summary: BlockSummary, weights: tuple,
               break_on_zero: bool) -> str:
    """Generate the chain-stitch source for one block summary.

    Conventions in the generated code (chosen so the hot loop is pure
    LOAD_FAST/STORE_FAST traffic):

    * ``g{t}``/``h{t}``: plain/scaled depth of register ``t`` when the
      block writes ``t`` — loaded from ``rp``/``rs`` once before the
      loop, carried across iterations, stored back once after;
    * ``p{t}``/``q{t}``: depths of registers the block only reads,
      hoisted to locals before the loop (invariant);
    * ``d{i}``/``e{i}``: the i-th instruction's plain/scaled depth;
    * memory cells go through ``mp``/``ms`` (addresses are dynamic).
    """
    deps = summary.deps
    rsizes = summary.rsizes
    wsizes = summary.wsizes
    written: set[int] = set()
    read_regs: set[int] = set()
    for srcs, dsts, _g in deps:
        read_regs.update(srcs)
        written.update(dsts)
    if not break_on_zero:
        read_regs.update(written)

    def reg_p(t):
        return f"g{t}" if t in written else f"p{t}"

    def reg_s(t):
        return f"h{t}" if t in written else f"q{t}"

    head = ["sp = 0"]
    if summary.n_reads:
        head.append("mpg = mp.get")
        head.append("msg = ms.get")
    for t in sorted(written):
        head.append(f"g{t} = rp[{t}]")
        head.append(f"h{t} = rs[{t}]")
    for t in sorted(read_regs - written):
        head.append(f"p{t} = rp[{t}]")
        head.append(f"q{t} = rs[{t}]")

    # per-iteration best: an instruction whose result is read later in
    # the same iteration (before being overwritten) is strictly
    # dominated there — the consumer's depth is >= d_i + weight with
    # every weight >= 1 — so only undominated instructions are best
    # candidates
    n = summary.length
    dominated = [False] * n
    if all(weights[g] >= 1 for _s, _d, g in deps):
        for i in range(n):
            dom = False
            for t in deps[i][1]:
                for j in range(i + 1, n):
                    if t in deps[j][0] or (not break_on_zero
                                           and t in deps[j][1]):
                        dom = True
                        break
                    if t in deps[j][1]:  # overwritten before any read
                        break
                if dom:
                    break
            dominated[i] = dom

    body: list[str] = []
    ri = 0
    wi = 0
    for i, (srcs, dsts, group) in enumerate(deps):
        terms_p = []
        terms_s = []
        seen = set()
        for s in srcs:
            if s not in seen:
                seen.add(s)
                terms_p.append(reg_p(s))
                terms_s.append(reg_s(s))
        for _ in range(summary.rcounts[i]):
            size = rsizes[ri]
            body.append(f"a{ri} = reads[r + {ri}][0]")
            body.append(f"c{ri} = (a{ri} >> 3) + {_MEM_BASE}")
            body.append(f"t{ri} = mpg(c{ri}, 0)")
            body.append(f"u{ri} = msg(c{ri}, 0)")
            if size > 8:
                guard = None  # always spans
            elif size > 1:
                guard = f"if (a{ri} & 7) > {8 - size}:"
            else:
                guard = ""  # 1-byte access never spans
            if guard != "":
                pre = ""
                if guard is not None:
                    body.append(guard)
                    pre = "    "
                body.append(f"{pre}sp = 1")
                body.append(f"{pre}for _c in _mc(a{ri}, {size})[1:]:")
                body.append(f"{pre}    _v = mpg(_c, 0)")
                body.append(f"{pre}    if _v > t{ri}: t{ri} = _v")
                body.append(f"{pre}    _v = msg(_c, 0)")
                body.append(f"{pre}    if _v > u{ri}: u{ri} = _v")
            terms_p.append(f"t{ri}")
            terms_s.append(f"u{ri}")
            ri += 1
        if not break_on_zero:
            for t in dsts:
                if t not in seen:
                    seen.add(t)
                    terms_p.append(reg_p(t))
                    terms_s.append(reg_s(t))
        if dominated[i] and len(dsts) == 1 and not summary.wcounts[i]:
            # a dominated single-dst instruction with no memory write is
            # never a best candidate and feeds nothing but its register,
            # so write the depth straight into the chain-head local.
            # _max_expr's >2-term form clobbers the target on its first
            # line, so a self-term must sit in that first comparison —
            # move it to the front (the 1/2-term forms are whole
            # expressions and safe anywhere).
            t = dsts[0]
            tp, ts = f"g{t}", f"h{t}"
            if tp in terms_p:
                k = terms_p.index(tp)
                terms_p.insert(0, terms_p.pop(k))
                terms_s.insert(0, terms_s.pop(k))
            body.extend(_max_expr(tp, terms_p, 1))
            body.extend(_max_expr(ts, terms_s, weights[group]))
            continue
        body.extend(_max_expr(f"d{i}", terms_p, 1))
        body.extend(_max_expr(f"e{i}", terms_s, weights[group]))
        for t in dsts:
            body.append(f"g{t} = d{i}")
            body.append(f"h{t} = e{i}")
        for _ in range(summary.wcounts[i]):
            size = wsizes[wi]
            body.append(f"aw{wi} = writes[w + {wi}][0]")
            body.append(f"cw{wi} = (aw{wi} >> 3) + {_MEM_BASE}")
            body.append(f"mp[cw{wi}] = d{i}")
            body.append(f"ms[cw{wi}] = e{i}")
            if size > 8:
                guard = None
            elif size > 1:
                guard = f"if (aw{wi} & 7) > {8 - size}:"
            else:
                guard = ""
            if guard != "":
                pre = ""
                if guard is not None:
                    body.append(guard)
                    pre = "    "
                body.append(f"{pre}sp = 1")
                body.append(f"{pre}for _c in _mc(aw{wi}, {size})[1:]:")
                body.append(f"{pre}    mp[_c] = d{i}")
                body.append(f"{pre}    ms[_c] = e{i}")
            wi += 1
    cand = [i for i in range(n) if not dominated[i]]
    if len(cand) <= 8:
        for i in cand:
            body.append(f"if d{i} > bp: bp = d{i}")
            body.append(f"if e{i} > bs: bs = e{i}")
    else:
        body.append(f"_b = max({', '.join(f'd{i}' for i in cand)})")
        body.append("if _b > bp: bp = _b")
        body.append(f"_b = max({', '.join(f'e{i}' for i in cand)})")
        body.append("if _b > bs: bs = _b")
    if summary.n_reads:
        body.append(f"r += {summary.n_reads}")
    if summary.n_writes:
        body.append(f"w += {summary.n_writes}")

    tail = []
    for t in sorted(written):
        tail.append(f"rp[{t}] = g{t}")
        tail.append(f"rs[{t}] = h{t}")
    tail.append("return bp, bs, sp")

    lines = ["def _cps(k, reads, writes, r, w, rp, rs, mp, ms, bp, bs):"]
    lines.extend("    " + line for line in head)
    lines.append("    for _ in range(k):")
    lines.extend("        " + line for line in body)
    lines.extend("    " + line for line in tail)
    return "\n".join(lines)


def _compile_cp_fn(summary: BlockSummary, weights: tuple,
                   break_on_zero: bool):
    source = _cp_source(summary, weights, break_on_zero)
    code = _CP_CODE_CACHE.get(source)
    if code is None:
        _CP_STATS["misses"] += 1
        if len(_CP_CODE_CACHE) > 16384:
            _CP_CODE_CACHE.clear()
        code = compile(source, "<block-summary-cp>", "exec")
        _CP_CODE_CACHE[source] = code
        if _CP_NEW_SOURCES is not None:
            _CP_NEW_SOURCES.append(source)
    else:
        _CP_STATS["hits"] += 1
    namespace = {"_mc": mem_cells}
    exec(code, namespace)  # noqa: S102
    return namespace["_cps"]
