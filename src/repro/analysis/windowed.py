"""Windowed critical-path analysis (§6, Figure 2).

"Sliding a window of differing sizes over the full execution path, we
determine the critical path for the set of instructions in the current
window, moving the window 50% of its size further along the path once this
is done." The window models a ROB of that size with perfect branch
prediction and infinite physical registers; the mean ILP per window —
window size / mean window CP — is what Figure 2 plots against window size.

This implementation is streaming: each window size keeps a bounded buffer
of recent dependence tuples, computes a window's CP when the buffer fills,
then drops ``slide_fraction`` of it. Peak memory is O(max window size), not
O(trace length). A final partial window (the tail of the program) is
included, matching a naive offline implementation on the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.critpath import mem_cells, window_critical_path
from repro.isa.base import DecodedInst

#: The paper's window sizes (§6.1).
PAPER_WINDOW_SIZES = (4, 16, 64, 200, 500, 1000, 2000)


#: Bump when the serialized shape of :class:`WindowedCPResult` changes.
WINDOWED_SCHEMA = 1


@dataclass
class WindowedCPResult:
    """Per-window-size critical-path statistics."""

    window_size: int
    count: int = 0
    total_cp: int = 0
    max_cp: int = 0
    min_cp: int = 0
    cps: list[int] = field(default_factory=list, repr=False)

    def to_dict(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_dict`."""
        return {"v": WINDOWED_SCHEMA, "window_size": self.window_size,
                "count": self.count, "total_cp": self.total_cp,
                "max_cp": self.max_cp, "min_cp": self.min_cp,
                "cps": list(self.cps)}

    @classmethod
    def from_dict(cls, doc: dict) -> "WindowedCPResult":
        if doc.get("v") != WINDOWED_SCHEMA:
            raise ValueError(f"WindowedCPResult schema {doc.get('v')!r} != "
                             f"{WINDOWED_SCHEMA}")
        return cls(window_size=int(doc["window_size"]),
                   count=int(doc["count"]), total_cp=int(doc["total_cp"]),
                   max_cp=int(doc["max_cp"]), min_cp=int(doc["min_cp"]),
                   cps=[int(cp) for cp in doc["cps"]])

    @property
    def mean_cp(self) -> float:
        return self.total_cp / self.count if self.count else 0.0

    @property
    def mean_ilp(self) -> float:
        """Mean ILP within the window — the Figure 2 metric."""
        if self.count == 0:
            return 0.0
        return self.window_size / self.mean_cp


class _WindowState:
    __slots__ = ("size", "slide", "buffer", "result", "keep_cps")

    def __init__(self, size: int, slide_fraction: float, keep_cps: bool):
        self.size = size
        self.slide = max(1, int(size * slide_fraction))
        self.buffer: list[tuple] = []
        self.result = WindowedCPResult(window_size=size, min_cp=0)
        self.keep_cps = keep_cps

    def push(self, item: tuple) -> None:
        buf = self.buffer
        buf.append(item)
        if len(buf) >= self.size:
            self._emit(len(buf))
            del buf[: self.slide]

    def _emit(self, length: int) -> None:
        cp = window_critical_path(self.buffer)
        res = self.result
        res.count += 1
        res.total_cp += cp
        if cp > res.max_cp:
            res.max_cp = cp
        if res.min_cp == 0 or cp < res.min_cp:
            res.min_cp = cp
        if self.keep_cps:
            res.cps.append(cp)

    def finish(self) -> WindowedCPResult:
        if self.buffer:
            self._emit(len(self.buffer))
            self.buffer.clear()
        return self.result


class WindowedCPProbe:
    """Computes window CPs for several window sizes in one pass.

    Args:
        window_sizes: the ROB sizes to model (defaults to the paper's).
        slide_fraction: how far the window advances each step, as a
            fraction of its size (paper: 0.5; ablation A2 varies this).
        keep_cps: retain every window CP (for distribution plots) rather
            than only the running statistics.
    """

    needs_memory = True

    def __init__(
        self,
        window_sizes=PAPER_WINDOW_SIZES,
        slide_fraction: float = 0.5,
        keep_cps: bool = False,
    ):
        if not 0 < slide_fraction <= 1:
            raise ValueError("slide_fraction must be in (0, 1]")
        self.states = [
            _WindowState(size, slide_fraction, keep_cps) for size in window_sizes
        ]

    def on_retire(self, inst: DecodedInst, reads, writes) -> None:
        srcs = inst.srcs
        dsts = inst.dsts
        if reads:
            if len(reads) == 1:
                addr, size = reads[0]
                srcs = srcs + mem_cells(addr, size)
            else:
                srcs = srcs + tuple(
                    c for addr, size in reads for c in mem_cells(addr, size)
                )
        if writes:
            if len(writes) == 1:
                addr, size = writes[0]
                dsts = dsts + mem_cells(addr, size)
            else:
                dsts = dsts + tuple(
                    c for addr, size in writes for c in mem_cells(addr, size)
                )
        item = (srcs, dsts, inst.group)
        for state in self.states:
            state.push(item)

    def results(self) -> dict[int, WindowedCPResult]:
        return {state.size: state.finish() for state in self.states}
