"""Typed analysis configuration — the one engine surface.

:class:`AnalysisConfig` replaces the ``engine="probes"|"fused"`` strings
and loose per-call kwargs that accreted on :func:`repro.harness.
experiments.run_config` over PRs 1–3. One frozen value now names the
engine tier and every analysis parameter, validates them at construction
time, and knows how to build the matching engine/probe set — so the
harness, the executor, the trace replayer and the fuzzer all consume the
same description instead of re-interpreting kwargs.

The legacy kwargs keep working for one release behind a
``DeprecationWarning``; see :func:`repro.harness.experiments.run_config`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.windowed import PAPER_WINDOW_SIZES

__all__ = ["AnalysisConfig"]

#: Engine tiers, cheapest-to-run first. ``fused`` is the batched
#: single-pass engine (block-summary events when the run is translated
#: and every sink understands them); ``probes`` is the five legacy
#: per-retire probes — the differential oracle.
KNOWN_ENGINES = ("fused", "probes")


@dataclass(frozen=True)
class AnalysisConfig:
    """What to analyze and which engine tier to analyze it with.

    Args:
        engine: ``"fused"`` (default) or ``"probes"`` (see
            :data:`KNOWN_ENGINES`).
        windowed: also compute the §6 windowed critical paths.
        window_sizes / slide_fraction / keep_cps: as on
            :class:`repro.analysis.windowed.WindowedCPProbe`.
        break_on_zero: ablation A1 knob, as on
            :class:`repro.analysis.critpath.CriticalPathProbe`.
        check_invariants: after a fused run, re-run the legacy probes on
            the same binary and require exact result equality — the
            differential oracle inline, for when a run must be
            self-validating (slow: simulates twice).
        capture_trace: record the retirement stream alongside the
            analysis (fused only; the caller supplies the
            ``trace_writer`` sink).
    """

    engine: str = "fused"
    windowed: bool = False
    window_sizes: tuple[int, ...] = PAPER_WINDOW_SIZES
    slide_fraction: float = 0.5
    keep_cps: bool = False
    break_on_zero: bool = True
    check_invariants: bool = False
    capture_trace: bool = False

    def __post_init__(self):
        if self.engine not in KNOWN_ENGINES:
            raise ValueError(
                f"unknown analysis engine {self.engine!r}; known: "
                + ", ".join(KNOWN_ENGINES)
            )
        if not 0 < self.slide_fraction <= 1:
            raise ValueError("slide_fraction must be in (0, 1]")
        object.__setattr__(self, "window_sizes", tuple(self.window_sizes))
        if self.capture_trace and self.engine != "fused":
            raise ValueError(
                "trace recording requires the fused (batched) engine"
            )

    @property
    def shardable(self) -> bool:
        """Whether this config can run under the deterministic sharded
        executor (:mod:`repro.harness.sharding`). Only the fused engine
        shards: its :class:`AnalysisState` merge is associative, while
        the legacy per-retire probes carry unmergeable running state."""
        return self.engine == "fused"

    def build_engine(self, regions=(), model=None, *,
                     relative: bool = False):
        """A :class:`FusedAnalysisEngine` configured per this value."""
        from repro.analysis.engine import FusedAnalysisEngine

        return FusedAnalysisEngine(
            regions=regions, model=model,
            windowed=self.windowed, window_sizes=self.window_sizes,
            slide_fraction=self.slide_fraction, keep_cps=self.keep_cps,
            break_on_zero=self.break_on_zero, relative=relative,
        )

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "windowed": self.windowed,
            "window_sizes": list(self.window_sizes),
            "slide_fraction": self.slide_fraction,
            "keep_cps": self.keep_cps,
            "break_on_zero": self.break_on_zero,
            "check_invariants": self.check_invariants,
            "capture_trace": self.capture_trace,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "AnalysisConfig":
        return cls(
            engine=doc.get("engine", "fused"),
            windowed=doc.get("windowed", False),
            window_sizes=tuple(doc.get("window_sizes", PAPER_WINDOW_SIZES)),
            slide_fraction=doc.get("slide_fraction", 0.5),
            keep_cps=doc.get("keep_cps", False),
            break_on_zero=doc.get("break_on_zero", True),
            check_invariants=doc.get("check_invariants", False),
            capture_trace=doc.get("capture_trace", False),
        )
