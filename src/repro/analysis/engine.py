"""Fused single-pass analysis over batched retirement streams.

The per-probe path (:mod:`repro.analysis.pathlength` and friends) pays
five Python callbacks per retired instruction, and each one re-derives
the same dependence tuples (``srcs + mem_cells(...)``). The
:class:`FusedAnalysisEngine` is the batched replacement: it consumes the
structure-of-arrays batches produced by
:meth:`repro.sim.emucore.EmulationCore.run_batched` (or replayed from a
:class:`repro.sim.trace.Trace`) and computes *every* paper analysis —
path length, plain critical path, latency-scaled critical path,
instruction mix, and all windowed-CP sizes — in one pass:

* counting analyses (path length per region, instruction mix) reduce to
  one ``numpy.bincount`` over the static-table indices per batch, with
  the per-name histograms materialized once at the end from the static
  table (static entries are created in first-retirement order, so the
  result dicts preserve the legacy probes' insertion order);
* the plain and scaled critical paths share one loop over the batch —
  one source scan updates both depth structures;
* windowed CPs are memoized: a window's critical path depends only on
  its sequence of (static entry, cell-count) items and the *relative*
  alias pattern of its memory cells, which loops repeat almost exactly.
  The memo key is built from C-speed list slices (composite item keys
  plus cell-to-cell deltas), so repeated loop windows cost a tuple hash
  instead of a full dependence-graph walk. Hit rates on the paper
  workloads are ~99.9%.
* on top of the per-window memo there is a *batch-level* memo: the
  translated batched core flushes at block boundaries, so during a
  steady loop successive batches are byte-for-byte repeats (same length,
  same loop phase) whose cell streams advance uniformly. A
  translation-invariant signature over the batch plus the carried-over
  window tail replays the whole batch's per-window results — hundreds of
  windows — with one tuple hash.

Results are exactly equal — field by field, including dict insertion
order — to the legacy probes'; ``tests/test_fused_engine.py`` enforces
this differentially on random programs and on every workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.analysis.critpath import CriticalPathResult, mem_cells
from repro.analysis.mix import (
    _A64_COND_BRANCHES,
    _RISCV_COND_BRANCHES,
    InstructionMixResult,
)
from repro.analysis.pathlength import PathLengthResult
from repro.analysis.windowed import PAPER_WINDOW_SIZES, WindowedCPResult
from repro.isa.base import DEP_NZCV, NUM_DEP_REGS, InstructionGroup

if TYPE_CHECKING:
    from repro.asm.program import Region
    from repro.sim.config import CoreModel

#: Memory dep-ids live above the register ids (see repro.analysis.critpath).
_MEM_BASE = NUM_DEP_REGS

#: Composite item key: ``static_index << 24 | read_cells << 12 | write_cells``.
#: Cell counts are post-expansion (an access spanning k 8-byte cells counts
#: k), so equal keys imply identical per-item dependence arity.
_IDX_SHIFT = 24
_RC_SHIFT = 12
_CNT_MASK = 0xFFF

#: Stop growing the window memo once it holds this many window *items*
#: (not entries — a W=2000 key is 500x a W=4 key). Existing entries keep
#: serving hits; new misses are simply computed directly.
_MEMO_MAX_ITEMS = 4_000_000


#: Bump when the serialized shape of :class:`AnalysisResult` changes.
ANALYSIS_SCHEMA = 1

#: Bump when the serialized shape of an engine *state* document
#: (:meth:`FusedAnalysisEngine.state_doc`) changes.
STATE_SCHEMA = 1


class _InstMeta:
    """Static-table stand-in carrying a :class:`DecodedInst`'s metadata.

    Engine state crosses process boundaries as documents
    (:meth:`FusedAnalysisEngine.state_doc`), but the real static table
    holds decoded instructions whose ``execute`` closures cannot be
    pickled. ``_InstMeta`` duck-types the analysis-side surface — every
    attribute :meth:`results` and the merge path read — and nothing
    execution-side, which a merged engine never needs.
    """

    __slots__ = ("pc", "word", "mnemonic", "text", "group", "srcs",
                 "dsts", "is_load", "is_store", "is_branch")

    def __init__(self, pc, word, mnemonic, text, group, srcs, dsts,
                 is_load, is_store, is_branch):
        self.pc = pc
        self.word = word
        self.mnemonic = mnemonic
        self.text = text
        self.group = InstructionGroup(group)
        self.srcs = tuple(srcs)
        self.dsts = tuple(dsts)
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = is_branch


@dataclass
class AnalysisResult:
    """Everything one analysis pass produces, whichever engine ran it.

    This is the single result surface: the fused engine, the legacy
    probes, and trace replays all assemble one of these, and
    ``to_dict``/``from_dict`` give it one versioned serialization so
    report/cache/fuzz code never has to care which engine produced a
    result.
    """

    path: PathLengthResult
    cp: CriticalPathResult
    scaled_cp: CriticalPathResult
    mix: InstructionMixResult
    windowed: dict[int, WindowedCPResult] | None

    def to_dict(self) -> dict:
        """Versioned JSON-safe dict; exact inverse of :meth:`from_dict`."""
        return {
            "v": ANALYSIS_SCHEMA,
            "path": self.path.to_dict(),
            "cp": self.cp.to_dict(),
            "scaled_cp": self.scaled_cp.to_dict(),
            "mix": self.mix.to_dict(),
            "windowed": (
                None if self.windowed is None
                else {str(w): r.to_dict() for w, r in self.windowed.items()}
            ),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "AnalysisResult":
        if doc.get("v") != ANALYSIS_SCHEMA:
            raise ValueError(f"AnalysisResult schema {doc.get('v')!r} != "
                             f"{ANALYSIS_SCHEMA}")
        windowed = doc["windowed"]
        return cls(
            path=PathLengthResult.from_dict(doc["path"]),
            cp=CriticalPathResult.from_dict(doc["cp"]),
            scaled_cp=CriticalPathResult.from_dict(doc["scaled_cp"]),
            mix=InstructionMixResult.from_dict(doc["mix"]),
            windowed=(
                None if windowed is None
                else {int(w): WindowedCPResult.from_dict(r)
                      for w, r in windowed.items()}
            ),
        )


#: Pre-redesign name, kept for one release.
FusedResults = AnalysisResult


class _WState:
    __slots__ = ("size", "slide", "next_start", "result", "keep_cps")

    def __init__(self, size: int, slide_fraction: float, keep_cps: bool):
        self.size = size
        self.slide = max(1, int(size * slide_fraction))
        self.next_start = 0
        self.result = WindowedCPResult(window_size=size, min_cp=0)
        self.keep_cps = keep_cps

    def copy(self) -> "_WState":
        new = _WState.__new__(_WState)
        new.size = self.size
        new.slide = self.slide
        new.next_start = self.next_start
        new.keep_cps = self.keep_cps
        r = self.result
        new.result = WindowedCPResult(
            window_size=r.window_size, count=r.count, total_cp=r.total_cp,
            max_cp=r.max_cp, min_cp=r.min_cp, cps=list(r.cps))
        return new


def _events_to_soa(summaries, events, indices, read_ends, write_ends):
    """Expand a block-summary event flush to the equivalent per-item
    structure-of-arrays triple (static indices, absolute read ends,
    absolute write ends). The access streams are shared, so the result
    plugs straight into ``on_batch``."""
    ti: list = []
    re_: list = []
    we_: list = []
    tx = ti.extend
    racc = 0
    wacc = 0
    si = 0
    for i in range(0, len(events), 2):
        bid = events[i]
        k = events[i + 1]
        if bid >= 0:
            s = summaries[bid]
            tx(s.idxs * k)
            R = s.n_reads
            W = s.n_writes
            L = s.length
            if R:
                rex = re_.extend
                srel = s.rends_rel
                b = racc
                for _ in range(k):
                    rex([b + e for e in srel])
                    b += R
            else:
                re_.extend([racc] * (k * L))
            if W:
                wex = we_.extend
                srel = s.wends_rel
                b = wacc
                for _ in range(k):
                    wex([b + e for e in srel])
                    b += W
            else:
                we_.extend([wacc] * (k * L))
            racc += k * R
            wacc += k * W
        else:
            sj = si + k
            tx(indices[si:sj])
            re_.extend(read_ends[si:sj])
            we_.extend(write_ends[si:sj])
            si = sj
            racc = read_ends[sj - 1]
            wacc = write_ends[sj - 1]
    return ti, re_, we_


# ------------------------------------------------ max-plus chain values
#
# A *relative* engine does not know the chain depths at its start, so it
# tracks each dependence head as a max-plus function of the unseen
# predecessor environment: ``(const, {dep: offset})`` means
# ``max(const, max_dep(env[dep] + offset))``. These functions are closed
# under the two CP operations (max of sources, plus the instruction
# weight), and composing them is associative — which is exactly what
# makes ``AnalysisState.merge`` associative. Values are immutable by
# convention: every operation builds fresh dicts, so clones may share.

def _rel_depth(vals, wt):
    """max over max-plus values, then + ``wt``."""
    const = 0
    terms: dict = {}
    for c, t in vals:
        if c > const:
            const = c
        for s, o in t.items():
            cur = terms.get(s)
            if cur is None or o > cur:
                terms[s] = o
    return (const + wt, {s: o + wt for s, o in terms.items()})


def _rel_max2(a, b):
    """max of two max-plus values."""
    const = a[0] if a[0] >= b[0] else b[0]
    terms = dict(a[1])
    for s, o in b[1].items():
        cur = terms.get(s)
        if cur is None or o > cur:
            terms[s] = o
    return (const, terms)


def _eval_abs(value, regs, mem):
    """Evaluate a max-plus value in an absolute environment."""
    best = value[0]
    get = mem.get
    for s, o in value[1].items():
        e = regs[s] if s < NUM_DEP_REGS else get(s, 0)
        if e + o > best:
            best = e + o
    return best


def _rel_compose(value, regs, mem):
    """Compose a max-plus value over another relative environment."""
    const = value[0]
    terms: dict = {}
    get = mem.get
    for s, o in value[1].items():
        base = regs[s] if s < NUM_DEP_REGS else get(s)
        if base is None:
            cur = terms.get(s)
            if cur is None or o > cur:
                terms[s] = o
        else:
            bc, bt = base
            if bc + o > const:
                const = bc + o
            for s2, o2 in bt.items():
                cur = terms.get(s2)
                if cur is None or o2 + o > cur:
                    terms[s2] = o2 + o
    return (const, terms)


class FusedAnalysisEngine:
    """Batch sink computing all paper analyses in a single fused pass.

    Args:
        regions: kernel regions for the Figure 1 path-length breakdown.
        model: core model for the §5 scaled critical path; with ``None``
            the scaled result degenerates to the plain one.
        windowed: also compute the §6 windowed critical paths.
        window_sizes / slide_fraction / keep_cps: as on
            :class:`repro.analysis.windowed.WindowedCPProbe`.
        break_on_zero: ablation A1 knob, as on
            :class:`repro.analysis.critpath.CriticalPathProbe` (applies
            to both CP variants; the windowed analysis, like the legacy
            probe, always breaks).
        relative: start from an *unknown* chain environment instead of
            the empty one. A relative engine tracks critical-path depths
            symbolically (max-plus functions of the unseen predecessor
            state) and buffers window items without consuming them, so
            its :class:`AnalysisState` can be merged onto any prefix
            state (``AnalysisState.merge``) — the associative shard
            merge. ``results()`` requires an absolute engine.
    """

    needs_memory = True
    #: Understands the block-summary event stream (``on_events``), so the
    #: batched translated run can use :func:`run_summary_translated`.
    accepts_events = True

    def __init__(
        self,
        regions: Sequence["Region"] = (),
        model: "CoreModel | None" = None,
        *,
        windowed: bool = False,
        window_sizes: tuple[int, ...] = PAPER_WINDOW_SIZES,
        slide_fraction: float = 0.5,
        keep_cps: bool = False,
        break_on_zero: bool = True,
        relative: bool = False,
    ):
        if not 0 < slide_fraction <= 1:
            raise ValueError("slide_fraction must be in (0, 1]")
        self.regions = list(regions)
        self.model = model
        self.break_on_zero = break_on_zero
        self._relative = relative

        # static-side metadata, grown in lockstep with the core's table
        self._table: list = []
        self._srcs: list[tuple] = []
        self._dsts: list[tuple] = []
        self._meta: list[tuple] = []
        if model is None:
            self._group_weights = [1] * len(InstructionGroup)
        else:
            load = InstructionGroup.LOAD
            store = InstructionGroup.STORE
            atomic = InstructionGroup.ATOMIC
            self._group_weights = [
                1 if g in (load, store, atomic) else model.latency(g)
                for g in InstructionGroup
            ]
        self._gw_key = tuple(self._group_weights)
        self._counts = np.zeros(0, dtype=np.int64)
        self._total = 0
        #: Block-summary execution counts (summary id -> executions),
        #: folded into ``_counts`` lazily by :meth:`_flatten_counts`.
        self._block_exec: dict[int, int] = {}
        self._summaries: list | None = None
        self.event_batches = 0

        # fused plain + scaled critical-path state. Absolute engines
        # hold int depths; relative engines hold max-plus values
        # ``(const, {dep: offset})`` over the unseen predecessor state
        # (None in the register files / a missing cell = the identity).
        if relative:
            self._reg_p: list = [None] * NUM_DEP_REGS
            self._reg_s: list = [None] * NUM_DEP_REGS
            self._best_p = (0, {})
            self._best_s = (0, {})
        else:
            self._reg_p = [0] * NUM_DEP_REGS
            self._reg_s = [0] * NUM_DEP_REGS
            self._best_p = 0
            self._best_s = 0
        self._mem_p: dict[int, object] = {}
        self._mem_s: dict[int, object] = {}

        # windowed state: rolling item/cell buffers with global offsets
        self._wstates = [
            _WState(size, slide_fraction, keep_cps) for size in window_sizes
        ] if windowed else []
        #: Flush granularity hint for ``run_image(batch_size=None)``.
        #: Windowed runs want small flushes (the window memo keys on
        #: whole flush segments, and large segments kill its hit rate);
        #: without windows, bigger flushes just amortize per-flush cost.
        self.preferred_batch_size = 1024 if windowed else 4096
        self._keys: list[int] = []
        self._key_base = 0
        self._rcells: list[int] = []
        self._rdeltas: list[int] = []
        self._wcells: list[int] = []
        self._wdeltas: list[int] = []
        self._rends: list[int] = []   # per-item global read-cell ends
        self._wends: list[int] = []
        self._rc_base = 0
        self._wc_base = 0
        self._prev_rcell = 0
        self._prev_wcell = 0
        self._memo: dict = {}
        self._memo_items = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self._batch_memo: dict = {}
        self.batch_memo_hits = 0
        self.batch_memo_misses = 0
        self._count_cache: dict = {}

    # -- batch ingestion -------------------------------------------------

    def on_batch(self, table, count, indices, read_ends, write_ends,
                 reads, writes) -> None:
        """Consume one retirement batch (see ``EmulationCore.run_batched``)."""
        if count == 0:
            return
        self._ensure_meta(table)
        ti = tuple(indices)
        counts = self._count_cache.get(ti)
        if counts is None:
            counts = np.bincount(np.fromiter(indices, np.int64, count),
                                 minlength=len(self._srcs))
            if len(self._count_cache) >= 256:
                self._count_cache.clear()
            self._count_cache[ti] = counts
        n = len(counts)
        if len(self._counts) < n:
            grown = np.zeros(n, dtype=np.int64)
            grown[: len(self._counts)] = self._counts
            self._counts = grown
        self._counts[:n] += counts
        self._total += count
        if self._relative:
            self._cp_batch_relative(indices, read_ends, write_ends,
                                    reads, writes)
        else:
            self._cp_batch(indices, read_ends, write_ends, reads, writes)
        if self._wstates:
            if self._relative:
                self._window_extend_relative(ti, count, read_ends,
                                             write_ends, reads, writes)
            else:
                self._window_batch(ti, count, read_ends, write_ends,
                                   reads, writes)

    def _ensure_meta(self, table) -> None:
        srcs_t = self._srcs
        n = len(table)
        if len(srcs_t) < n:
            self._table = table
            dsts_t = self._dsts
            meta = self._meta
            gw = self._group_weights
            for j in range(len(srcs_t), n):
                inst = table[j]
                srcs_t.append(inst.srcs)
                dsts_t.append(inst.dsts)
                meta.append((inst.srcs, inst.dsts, gw[inst.group]))

    # -- block-summary event ingestion -----------------------------------

    def on_events(self, table, summaries, events, count, indices,
                  read_ends, write_ends, reads, writes) -> None:
        """Consume one block-summary event flush (the stream produced by
        ``repro.sim.blocks.run_summary_translated``). Exactly equivalent
        to ``on_batch`` over the expanded per-retirement stream; the
        differential tests enforce it."""
        if count == 0:
            return
        self.event_batches += 1
        if self._relative:
            # symbolic chain values need per-item treatment anyway, so
            # expand to the (exact) structure-of-arrays form
            ti, re_, we_ = _events_to_soa(summaries, events, indices,
                                          read_ends, write_ends)
            self.on_batch(table, count, ti, re_, we_, reads, writes)
            return
        self._ensure_meta(table)
        self._summaries = summaries
        # mix / path length: block items via execution counters (folded
        # into the count vector lazily), SoA items via one bincount
        nsoa = len(indices)
        if nsoa:
            counts = np.bincount(np.fromiter(indices, np.int64, nsoa),
                                 minlength=len(self._srcs))
            n = len(counts)
            if len(self._counts) < n:
                grown = np.zeros(n, dtype=np.int64)
                grown[: len(self._counts)] = self._counts
                self._counts = grown
            self._counts[:n] += counts
        self._total += count

        # chain stitching: one walk over the events; block executions go
        # through their compiled stitch functions, SoA segments through
        # the generic batch scan with flush-absolute access cursors
        be = self._block_exec
        wts = self._gw_key
        bz = self.break_on_zero
        reg_p = self._reg_p
        reg_s = self._reg_s
        mem_p = self._mem_p
        mem_s = self._mem_s
        windowed = bool(self._wstates)
        spanning = False
        r = 0
        w = 0
        si = 0
        for i in range(0, len(events), 2):
            bid = events[i]
            k = events[i + 1]
            if bid >= 0:
                be[bid] = be.get(bid, 0) + k
                s = summaries[bid]
                fn = s.cp_fn(wts, bz)
                bp, bs, sp = fn(k, reads, writes, r, w, reg_p, reg_s,
                                mem_p, mem_s, self._best_p, self._best_s)
                self._best_p = bp
                self._best_s = bs
                if sp:
                    spanning = True
                r += k * s.n_reads
                w += k * s.n_writes
            else:
                sj = si + k
                r1 = read_ends[sj - 1]
                w1 = write_ends[sj - 1]
                self._cp_batch(indices[si:sj], read_ends[si:sj],
                               write_ends[si:sj], reads, writes,
                               r0=r, w0=w)
                if windowed and not spanning:
                    if (any((a & 7) + z > 8 for a, z in reads[r:r1])
                            or any((a & 7) + z > 8
                                   for a, z in writes[w:w1])):
                        spanning = True
                r = r1
                w = w1
                si = sj
        if windowed:
            self._window_events(summaries, events, indices, read_ends,
                                write_ends, reads, writes, count, spanning)

    def _flatten_counts(self) -> None:
        """Fold pending block execution counters into the count vector."""
        be = self._block_exec
        if not be:
            return
        summaries = self._summaries
        counts = self._counts
        n = len(self._srcs)
        if len(counts) < n:
            grown = np.zeros(n, dtype=np.int64)
            grown[: len(counts)] = counts
            self._counts = counts = grown
        for bid, k in be.items():
            for idx in summaries[bid].idxs:
                counts[idx] += k
        be.clear()

    # -- fused plain + scaled critical path ------------------------------

    def _cp_batch(self, indices, read_ends, write_ends, reads, writes,
                  r0=0, w0=0) -> None:
        meta = self._meta
        reg_p = self._reg_p
        reg_s = self._reg_s
        mem_p = self._mem_p
        mem_s = self._mem_s
        getp = mem_p.get
        gets = mem_s.get
        best_p = self._best_p
        best_s = self._best_s
        bz = self.break_on_zero
        for idx, r1, w1 in zip(indices, read_ends, write_ends):
            srcs, dd, wt = meta[idx]
            dp = 0
            ds = 0
            for s in srcs:
                v = reg_p[s]
                if v > dp:
                    dp = v
                v = reg_s[s]
                if v > ds:
                    ds = v
            while r0 < r1:
                addr, size = reads[r0]
                r0 += 1
                cell = _MEM_BASE + (addr >> 3)
                v = getp(cell, 0)
                if v > dp:
                    dp = v
                v = gets(cell, 0)
                if v > ds:
                    ds = v
                if (addr & 7) + size > 8:
                    for extra in mem_cells(addr, size)[1:]:
                        v = getp(extra, 0)
                        if v > dp:
                            dp = v
                        v = gets(extra, 0)
                        if v > ds:
                            ds = v
            if not bz:
                for t in dd:
                    v = reg_p[t]
                    if v > dp:
                        dp = v
                    v = reg_s[t]
                    if v > ds:
                        ds = v
            dp += 1
            ds += wt
            for t in dd:
                reg_p[t] = dp
                reg_s[t] = ds
            while w0 < w1:
                addr, size = writes[w0]
                w0 += 1
                cell = _MEM_BASE + (addr >> 3)
                mem_p[cell] = dp
                mem_s[cell] = ds
                if (addr & 7) + size > 8:
                    for extra in mem_cells(addr, size)[1:]:
                        mem_p[extra] = dp
                        mem_s[extra] = ds
            if dp > best_p:
                best_p = dp
            if ds > best_s:
                best_s = ds
        self._best_p = best_p
        self._best_s = best_s

    def _cp_batch_relative(self, indices, read_ends, write_ends, reads,
                           writes, r0=0, w0=0) -> None:
        """Symbolic twin of :meth:`_cp_batch`: depths are max-plus values
        over the unseen predecessor environment (see ``_rel_depth``).
        Values are never mutated in place — clones share them."""
        meta = self._meta
        reg_p = self._reg_p
        reg_s = self._reg_s
        mem_p = self._mem_p
        mem_s = self._mem_s
        getp = mem_p.get
        gets = mem_s.get
        bz = self.break_on_zero
        # The best-depth accumulators max in a new value every retirement
        # while their term sets grow with every fresh unseen cell — a
        # fresh-dict _rel_max2 there is quadratic in the slice length.
        # Copy once per batch and accumulate in place; the tuple stored
        # back at the end is never mutated again (the next batch copies),
        # so exported references stay immutable.
        bp_c, bp_t = self._best_p
        bp_t = dict(bp_t)
        bs_c, bs_t = self._best_s
        bs_t = dict(bs_t)
        for idx, r1, w1 in zip(indices, read_ends, write_ends):
            srcs, dd, wt = meta[idx]
            vals_p = []
            vals_s = []
            for s in srcs:
                v = reg_p[s]
                vals_p.append(v if v is not None else (0, {s: 0}))
                v = reg_s[s]
                vals_s.append(v if v is not None else (0, {s: 0}))
            while r0 < r1:
                addr, size = reads[r0]
                r0 += 1
                if (addr & 7) + size > 8:
                    cells = mem_cells(addr, size)
                else:
                    cells = (_MEM_BASE + (addr >> 3),)
                for cell in cells:
                    v = getp(cell)
                    vals_p.append(v if v is not None else (0, {cell: 0}))
                    v = gets(cell)
                    vals_s.append(v if v is not None else (0, {cell: 0}))
            if not bz:
                for t in dd:
                    v = reg_p[t]
                    vals_p.append(v if v is not None else (0, {t: 0}))
                    v = reg_s[t]
                    vals_s.append(v if v is not None else (0, {t: 0}))
            dp = _rel_depth(vals_p, 1)
            ds = _rel_depth(vals_s, wt)
            for t in dd:
                reg_p[t] = dp
                reg_s[t] = ds
            while w0 < w1:
                addr, size = writes[w0]
                w0 += 1
                if (addr & 7) + size > 8:
                    cells = mem_cells(addr, size)
                else:
                    cells = (_MEM_BASE + (addr >> 3),)
                for cell in cells:
                    mem_p[cell] = dp
                    mem_s[cell] = ds
            c, t = dp
            if c > bp_c:
                bp_c = c
            for s, o in t.items():
                cur = bp_t.get(s)
                if cur is None or o > cur:
                    bp_t[s] = o
            c, t = ds
            if c > bs_c:
                bs_c = c
            for s, o in t.items():
                cur = bs_t.get(s)
                if cur is None or o > cur:
                    bs_t[s] = o
        self._best_p = (bp_c, bp_t)
        self._best_s = (bs_c, bs_t)

    # -- windowed critical paths -----------------------------------------

    @staticmethod
    def _expand_cells(accesses, n, ends):
        """Flat 8-byte-cell ids for a batch's accesses plus per-item
        cumulative cell ends. The common no-spanning case is one cell per
        access; spanning accesses expand to their full cell range."""
        if n == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(len(ends),
                                                         dtype=np.int64)
        acc = np.array(accesses, dtype=np.int64)
        addr = acc[:, 0]
        first = addr >> 3
        extra = ((addr & 7) + acc[:, 1] - 1) >> 3
        if not extra.any():
            return first, ends
        cnts = extra + 1
        cum = np.cumsum(cnts)
        starts = cum - cnts
        total = int(cum[-1])
        cells = np.repeat(first, cnts) + (
            np.arange(total, dtype=np.int64) - np.repeat(starts, cnts))
        item_ends = np.where(ends > 0, cum[ends - 1], 0)
        return cells, item_ends

    @staticmethod
    def _cell_deltas(cells, prev):
        out = []
        append = out.append
        for c in cells:
            append(c - prev)
            prev = c
        return out

    def _window_batch(self, ti, count, read_ends, write_ends,
                      reads, writes) -> None:
        """Consume the batch's complete windows, replaying whole batches
        from the batch-level memo when possible.

        The memo signature is translation-invariant: the raw static
        indices and access-count tuples pin every item's dependence
        arity, the cell-to-cell deltas plus one read-to-write stream
        offset pin the alias pattern up to translation, and the carry
        components (the still-unconsumed window tail this batch's
        windows reach back into) pin the cross-batch boundary. Equal
        signatures therefore imply identical per-state window-CP
        sequences. Keeping the signature on the *raw* batch arrays means
        a hit never materializes composite keys or numpy arrays at all.
        """
        if (any((a & 7) + w > 8 for a, w in reads)
                or any((a & 7) + w > 8 for a, w in writes)):
            self._window_batch_spanning(ti, count, read_ends, write_ends,
                                        reads, writes)
            return
        rcells = [a >> 3 for a, _ in reads]
        wcells = [a >> 3 for a, _ in writes]
        rdelta = self._cell_deltas(rcells, self._prev_rcell)
        wdelta = self._cell_deltas(wcells, self._prev_wcell)

        start_min = min(st.next_start for st in self._wstates)
        ka = start_min - self._key_base
        crlo = (self._rends[ka - 1] if ka else self._rc_base) - self._rc_base
        cwlo = (self._wends[ka - 1] if ka else self._wc_base) - self._wc_base
        ncr = len(self._rcells) - crlo
        ncw = len(self._wcells) - cwlo
        # first cell of each stream over carry + batch, for the offset
        if ncr:
            first_r = self._rcells[crlo]
        elif rcells:
            first_r = rcells[0]
        else:
            first_r = None
        if ncw:
            first_w = self._wcells[cwlo]
        elif wcells:
            first_w = wcells[0]
        else:
            first_w = None
        cross = (first_w - first_r
                 if first_r is not None and first_w is not None else None)
        # batch delta [0] links the batch to the carry's last cell; when
        # the carry stream is empty it links to a pre-carry cell no
        # window can see, so it is dropped (the batch's first cell then
        # *is* the stream's translation base)
        sig = (
            tuple(self._keys[ka:]),
            tuple(st.next_start - start_min for st in self._wstates),
            tuple(self._rdeltas[crlo + 1:]),
            tuple(self._wdeltas[cwlo + 1:]),
            ti,
            tuple(read_ends),
            tuple(write_ends),
            tuple(rdelta if ncr else rdelta[1:]),
            tuple(wdelta if ncw else wdelta[1:]),
            cross,
        )

        item_base = self._key_base + len(self._keys)
        rtot = self._rc_base + len(self._rcells)
        wtot = self._wc_base + len(self._wcells)
        replay = self._batch_memo.get(sig)
        if replay is not None:
            self.batch_memo_hits += 1
            self._apply_replay(replay)
            min_next = min(st.next_start for st in self._wstates)
            skip = min_next - item_base
            if skip >= 0:
                # every pre-batch item was consumed: rebuild the rolling
                # buffers as exactly the unconsumed batch tail (extending
                # with the full batch only to trim it later would touch
                # ~50x more items than the tail holds)
                pr = read_ends[skip - 1] if skip else 0
                pw = write_ends[skip - 1] if skip else 0
                keys = []
                kap = keys.append
                r0 = pr
                w0 = pw
                for p in range(skip, count):
                    r1 = read_ends[p]
                    w1 = write_ends[p]
                    kap((ti[p] << _IDX_SHIFT) | ((r1 - r0) << _RC_SHIFT)
                        | (w1 - w0))
                    r0 = r1
                    w0 = w1
                self._keys = keys
                self._rends = [rtot + r for r in read_ends[skip:]]
                self._wends = [wtot + w for w in write_ends[skip:]]
                self._rcells = rcells[pr:]
                self._rdeltas = rdelta[pr:]
                self._wcells = wcells[pw:]
                self._wdeltas = wdelta[pw:]
                self._key_base = min_next
                self._rc_base = rtot + pr
                self._wc_base = wtot + pw
                if rcells:
                    self._prev_rcell = rcells[-1]
                if wcells:
                    self._prev_wcell = wcells[-1]
                return
            self._extend_buffers(ti, count, read_ends, write_ends,
                                 rcells, wcells, rdelta, wdelta)
            self._trim()
            return

        self.batch_memo_misses += 1
        self._extend_buffers(ti, count, read_ends, write_ends,
                             rcells, wcells, rdelta, wdelta)
        recorded = self._consume_windows()
        if len(self._batch_memo) >= 256:
            self._batch_memo.clear()
        self._batch_memo[sig] = recorded
        self._trim()

    def _apply_replay(self, replay) -> None:
        """Apply a batch-memo replay record to every window state."""
        for st, (cps, total, mx, mn) in zip(self._wstates, replay):
            n = len(cps)
            if n:
                res = st.result
                res.count += n
                res.total_cp += total
                if mx > res.max_cp:
                    res.max_cp = mx
                if res.min_cp == 0 or mn < res.min_cp:
                    res.min_cp = mn
                if st.keep_cps:
                    res.cps.extend(cps)
                st.next_start += n * st.slide

    def _window_events(self, summaries, events, indices, read_ends,
                       write_ends, reads, writes, count, spanning) -> None:
        """Event-stream twin of :meth:`_window_batch`: advance the window
        states over one block-summary flush. Per-item keys and cell ends
        come from the summaries' precomputed templates, so a memo hit
        never materializes per-retirement items at all, and a miss emits
        them wholesale (``_emit_items``) instead of item by item."""
        if spanning:
            # cell counts differ from access counts, so the summary key
            # templates are invalid: expand to SoA and take the exact
            # numpy spanning path
            ti, re_, we_ = _events_to_soa(summaries, events, indices,
                                          read_ends, write_ends)
            self._window_batch_spanning(tuple(ti), count, re_, we_,
                                        reads, writes)
            return
        rcells = [a >> 3 for a, _ in reads]
        wcells = [a >> 3 for a, _ in writes]
        rdelta = self._cell_deltas(rcells, self._prev_rcell)
        wdelta = self._cell_deltas(wcells, self._prev_wcell)

        start_min = min(st.next_start for st in self._wstates)
        ka = start_min - self._key_base
        crlo = (self._rends[ka - 1] if ka else self._rc_base) - self._rc_base
        cwlo = (self._wends[ka - 1] if ka else self._wc_base) - self._wc_base
        ncr = len(self._rcells) - crlo
        ncw = len(self._wcells) - cwlo
        if ncr:
            first_r = self._rcells[crlo]
        elif rcells:
            first_r = rcells[0]
        else:
            first_r = None
        if ncw:
            first_w = self._wcells[cwlo]
        elif wcells:
            first_w = wcells[0]
        else:
            first_w = None
        cross = (first_w - first_r
                 if first_r is not None and first_w is not None else None)
        # same translation-invariance argument as the batch signature;
        # the event list replaces the per-item index/end tuples for the
        # block-run portion of the flush (11 components vs the batch
        # path's 10, so the two families can never collide in the memo)
        sig = (
            tuple(self._keys[ka:]),
            tuple(st.next_start - start_min for st in self._wstates),
            tuple(self._rdeltas[crlo + 1:]),
            tuple(self._wdeltas[cwlo + 1:]),
            tuple(events),
            tuple(indices),
            tuple(read_ends),
            tuple(write_ends),
            tuple(rdelta if ncr else rdelta[1:]),
            tuple(wdelta if ncw else wdelta[1:]),
            cross,
        )

        item_base = self._key_base + len(self._keys)
        rtot = self._rc_base + len(self._rcells)
        wtot = self._wc_base + len(self._wcells)
        replay = self._batch_memo.get(sig)
        if replay is not None:
            self.batch_memo_hits += 1
            self._apply_replay(replay)
            min_next = min(st.next_start for st in self._wstates)
            skip = min_next - item_base
            if skip >= 0:
                keys, rends, wends, pr, pw = self._emit_items(
                    summaries, events, indices, read_ends, write_ends,
                    skip, rtot, wtot)
                self._keys = keys
                self._rends = rends
                self._wends = wends
                self._rcells = rcells[pr:]
                self._rdeltas = rdelta[pr:]
                self._wcells = wcells[pw:]
                self._wdeltas = wdelta[pw:]
                self._key_base = min_next
                self._rc_base = rtot + pr
                self._wc_base = wtot + pw
                if rcells:
                    self._prev_rcell = rcells[-1]
                if wcells:
                    self._prev_wcell = wcells[-1]
                return
            self._extend_from_events(summaries, events, indices,
                                     read_ends, write_ends, rcells,
                                     wcells, rdelta, wdelta, rtot, wtot)
            self._trim()
            return

        self.batch_memo_misses += 1
        self._extend_from_events(summaries, events, indices, read_ends,
                                 write_ends, rcells, wcells, rdelta,
                                 wdelta, rtot, wtot)
        recorded = self._consume_windows()
        if len(self._batch_memo) >= 256:
            self._batch_memo.clear()
        self._batch_memo[sig] = recorded
        self._trim()

    def _emit_items(self, summaries, events, indices, read_ends,
                    write_ends, skip, rtot, wtot):
        """Composite keys and global cell ends for flush items
        ``[skip, count)``; returns ``(keys, rends, wends, pr, pw)`` where
        ``pr``/``pw`` are the flush-local access counts at item ``skip``.
        Valid only for non-spanning flushes (cell count == access
        count). Block runs emit whole key templates per execution; the
        end lists use one vectorized outer add per long run."""
        keys: list = []
        rends: list = []
        wends: list = []
        pos = 0
        racc = 0
        wacc = 0
        si = 0
        pr = pw = None
        for i in range(0, len(events), 2):
            bid = events[i]
            k = events[i + 1]
            if bid >= 0:
                s = summaries[bid]
                L = s.length
                R = s.n_reads
                W = s.n_writes
                items = k * L
                if pos + items <= skip:
                    pos += items
                    racc += k * R
                    wacc += k * W
                    continue
                q, rem = divmod(skip - pos if skip > pos else 0, L)
                if pr is None:
                    pr = racc + q * R + (s.rends_rel[rem - 1] if rem else 0)
                    pw = wacc + q * W + (s.wends_rel[rem - 1] if rem else 0)
                if rem:
                    # straddled execution: emit its tail item by item
                    keys.extend(s.keys[rem:])
                    br = rtot + racc + q * R
                    bw = wtot + wacc + q * W
                    rends.extend([br + e for e in s.rends_rel[rem:]])
                    wends.extend([bw + e for e in s.wends_rel[rem:]])
                    q += 1
                nk = k - q
                if nk:
                    keys.extend(s.keys * nk)
                    if R == 0:
                        rends.extend([rtot + racc] * (nk * L))
                    elif nk * L >= 64:
                        offs = (rtot + racc
                                + np.arange(q, k, dtype=np.int64) * R)
                        rends.extend(
                            (offs[:, None] + s.rends_np).ravel().tolist())
                    else:
                        rex = rends.extend
                        srel = s.rends_rel
                        b = rtot + racc + q * R
                        for _ in range(nk):
                            rex([b + e for e in srel])
                            b += R
                    if W == 0:
                        wends.extend([wtot + wacc] * (nk * L))
                    elif nk * L >= 64:
                        offs = (wtot + wacc
                                + np.arange(q, k, dtype=np.int64) * W)
                        wends.extend(
                            (offs[:, None] + s.wends_np).ravel().tolist())
                    else:
                        wex = wends.extend
                        srel = s.wends_rel
                        b = wtot + wacc + q * W
                        for _ in range(nk):
                            wex([b + e for e in srel])
                            b += W
                pos += items
                racc += k * R
                wacc += k * W
            else:
                sj = si + k
                if pos + k <= skip:
                    si = sj
                    pos += k
                    racc = read_ends[sj - 1]
                    wacc = write_ends[sj - 1]
                    continue
                lo = si + (skip - pos if skip > pos else 0)
                r0 = read_ends[lo - 1] if lo > si else racc
                w0 = write_ends[lo - 1] if lo > si else wacc
                if pr is None:
                    pr = r0
                    pw = w0
                kap = keys.append
                rap = rends.append
                wap = wends.append
                for p in range(lo, sj):
                    r1 = read_ends[p]
                    w1 = write_ends[p]
                    kap((indices[p] << _IDX_SHIFT)
                        | ((r1 - r0) << _RC_SHIFT) | (w1 - w0))
                    rap(rtot + r1)
                    wap(wtot + w1)
                    r0 = r1
                    w0 = w1
                si = sj
                pos += k
                racc = read_ends[sj - 1]
                wacc = write_ends[sj - 1]
        if pr is None:
            pr = racc
            pw = wacc
        return keys, rends, wends, pr, pw

    def _extend_from_events(self, summaries, events, indices, read_ends,
                            write_ends, rcells, wcells, rdelta, wdelta,
                            rtot, wtot) -> None:
        keys, rends, wends, _pr, _pw = self._emit_items(
            summaries, events, indices, read_ends, write_ends, 0,
            rtot, wtot)
        self._keys.extend(keys)
        self._rends.extend(rends)
        self._wends.extend(wends)
        if rcells:
            self._prev_rcell = rcells[-1]
            self._rcells.extend(rcells)
            self._rdeltas.extend(rdelta)
        if wcells:
            self._prev_wcell = wcells[-1]
            self._wcells.extend(wcells)
            self._wdeltas.extend(wdelta)

    def _window_batch_spanning(self, ti, count, read_ends, write_ends,
                               reads, writes) -> None:
        """Rare path: some access in the batch spans an 8-byte-cell
        boundary, so post-expansion cell counts differ from the raw
        access counts and the raw-array signature no longer determines
        the composite keys. Expand via numpy and consume windows
        directly, bypassing the batch memo."""
        self._extend_spanning(ti, count, read_ends, write_ends,
                              reads, writes)
        self._consume_windows()
        self._trim()

    def _window_extend_relative(self, ti, count, read_ends, write_ends,
                                reads, writes) -> None:
        """Relative engines only buffer window items — windows are
        consumed after the state is merged onto an absolute prefix, when
        the items reaching back across the boundary are known."""
        if (any((a & 7) + z > 8 for a, z in reads)
                or any((a & 7) + z > 8 for a, z in writes)):
            self._extend_spanning(ti, count, read_ends, write_ends,
                                  reads, writes)
            return
        rcells = [a >> 3 for a, _ in reads]
        wcells = [a >> 3 for a, _ in writes]
        rdelta = self._cell_deltas(rcells, self._prev_rcell)
        wdelta = self._cell_deltas(wcells, self._prev_wcell)
        self._extend_buffers(ti, count, read_ends, write_ends,
                             rcells, wcells, rdelta, wdelta)

    def _extend_spanning(self, ti, count, read_ends, write_ends,
                         reads, writes) -> None:
        rend = np.fromiter(read_ends, np.int64, count)
        wend = np.fromiter(write_ends, np.int64, count)
        rc_a, rends_items = self._expand_cells(reads, read_ends[count - 1],
                                               rend)
        wc_a, wends_items = self._expand_cells(writes, write_ends[count - 1],
                                               wend)
        idx_arr = np.fromiter(ti, np.int64, count)
        keys = ((idx_arr << _IDX_SHIFT)
                | (np.diff(rends_items, prepend=0) << _RC_SHIFT)
                | np.diff(wends_items, prepend=0)).tolist()
        rcells = rc_a.tolist()
        wcells = wc_a.tolist()
        rdelta = self._cell_deltas(rcells, self._prev_rcell)
        wdelta = self._cell_deltas(wcells, self._prev_wcell)
        rtot = self._rc_base + len(self._rcells)
        wtot = self._wc_base + len(self._wcells)
        self._keys.extend(keys)
        self._rends.extend((rends_items + rtot).tolist())
        self._wends.extend((wends_items + wtot).tolist())
        if rcells:
            self._prev_rcell = rcells[-1]
            self._rcells.extend(rcells)
            self._rdeltas.extend(rdelta)
        if wcells:
            self._prev_wcell = wcells[-1]
            self._wcells.extend(wcells)
            self._wdeltas.extend(wdelta)

    def _extend_buffers(self, ti, count, read_ends, write_ends,
                        rcells, wcells, rdelta, wdelta) -> None:
        rtot = self._rc_base + len(self._rcells)
        wtot = self._wc_base + len(self._wcells)
        keys = self._keys
        kap = keys.append
        r0 = 0
        w0 = 0
        for p in range(count):
            r1 = read_ends[p]
            w1 = write_ends[p]
            kap((ti[p] << _IDX_SHIFT) | ((r1 - r0) << _RC_SHIFT) | (w1 - w0))
            r0 = r1
            w0 = w1
        self._rends.extend([rtot + r for r in read_ends])
        self._wends.extend([wtot + w for w in write_ends])
        if rcells:
            self._prev_rcell = rcells[-1]
            self._rcells.extend(rcells)
            self._rdeltas.extend(rdelta)
        if wcells:
            self._prev_wcell = wcells[-1]
            self._wcells.extend(wcells)
            self._wdeltas.extend(wdelta)

    def _consume_windows(self) -> list:
        """Advance every window state over the buffered items, returning
        the per-state ``(cps, sum, max, min)`` replay records."""
        total_items = self._key_base + len(self._keys)
        recorded = []
        for st in self._wstates:
            size = st.size
            slide = st.slide
            res = st.result
            keep = st.keep_cps
            cps = []
            while st.next_start + size <= total_items:
                cp = self._window_cp_memo(st.next_start, size)
                cps.append(cp)
                res.count += 1
                res.total_cp += cp
                if cp > res.max_cp:
                    res.max_cp = cp
                if res.min_cp == 0 or cp < res.min_cp:
                    res.min_cp = cp
                if keep:
                    res.cps.append(cp)
                st.next_start += slide
            recorded.append((tuple(cps), sum(cps),
                             max(cps, default=0), min(cps, default=0)))
        return recorded

    def _window_cp_memo(self, start: int, size: int) -> int:
        ka = start - self._key_base
        kb = ka + size
        rends = self._rends
        wends = self._wends
        rlo = (rends[ka - 1] if ka else self._rc_base) - self._rc_base
        rhi = rends[kb - 1] - self._rc_base
        wlo = (wends[ka - 1] if ka else self._wc_base) - self._wc_base
        whi = wends[kb - 1] - self._wc_base
        # a window's CP is invariant under translating all its cells; the
        # key captures the item sequence, each cell stream's internal
        # deltas, and the read-to-write stream offset
        if rhi > rlo and whi > wlo:
            cross = self._wcells[wlo] - self._rcells[rlo]
        else:
            cross = None
        key = (tuple(self._keys[ka:kb]),
               tuple(self._rdeltas[rlo + 1: rhi]),
               tuple(self._wdeltas[wlo + 1: whi]),
               cross)
        cp = self._memo.get(key)
        if cp is not None:
            self.memo_hits += 1
            return cp
        self.memo_misses += 1
        cp = self._window_cp(ka, kb, rlo, wlo)
        if self._memo_items < _MEMO_MAX_ITEMS:
            self._memo[key] = cp
            self._memo_items += size
        return cp

    def _window_cp(self, ka: int, kb: int, rlo: int, wlo: int) -> int:
        """Direct window CP from the rolling buffers (memo misses and the
        final partial window). Matches ``window_critical_path`` on the
        legacy probe's (srcs + cells, dsts + cells) items exactly."""
        depth: dict[int, int] = {}
        get = depth.get
        keys = self._keys
        srcs_t = self._srcs
        dsts_t = self._dsts
        rcells = self._rcells
        wcells = self._wcells
        r = rlo
        w = wlo
        best = 0
        for p in range(ka, kb):
            k = keys[p]
            idx = k >> _IDX_SHIFT
            d = 0
            for s in srcs_t[idx]:
                v = get(s, 0)
                if v > d:
                    d = v
            for _ in range((k >> _RC_SHIFT) & _CNT_MASK):
                v = get(_MEM_BASE + rcells[r], 0)
                r += 1
                if v > d:
                    d = v
            d += 1
            for t in dsts_t[idx]:
                depth[t] = d
            for _ in range(k & _CNT_MASK):
                depth[_MEM_BASE + wcells[w]] = d
                w += 1
            if d > best:
                best = d
        return best

    def _trim(self) -> None:
        """Drop buffer prefixes no window can reach anymore."""
        needed = min(st.next_start for st in self._wstates)
        drop = needed - self._key_base
        if drop < 4096:
            return
        new_rc = self._rends[drop - 1]
        new_wc = self._wends[drop - 1]
        del self._keys[:drop]
        del self._rends[:drop]
        del self._wends[:drop]
        rdrop = new_rc - self._rc_base
        wdrop = new_wc - self._wc_base
        del self._rcells[:rdrop]
        del self._rdeltas[:rdrop]
        del self._wcells[:wdrop]
        del self._wdeltas[:wdrop]
        self._key_base = needed
        self._rc_base = new_rc
        self._wc_base = new_wc

    # -- result assembly -------------------------------------------------

    def results(self) -> AnalysisResult:
        """Finalize (emit partial tail windows) and assemble the result
        objects. Safe to call more than once."""
        if self._relative:
            raise RuntimeError(
                "a relative engine has no absolute results; merge its "
                "AnalysisState onto an absolute prefix state first")
        self._flatten_counts()
        windowed = None
        if self._wstates:
            windowed = {}
            total_items = self._key_base + len(self._keys)
            for st in self._wstates:
                if st.next_start < total_items:
                    ka = st.next_start - self._key_base
                    rlo = ((self._rends[ka - 1] if ka else self._rc_base)
                           - self._rc_base)
                    wlo = ((self._wends[ka - 1] if ka else self._wc_base)
                           - self._wc_base)
                    cp = self._window_cp(ka, total_items - self._key_base,
                                         rlo, wlo)
                    res = st.result
                    res.count += 1
                    res.total_cp += cp
                    if cp > res.max_cp:
                        res.max_cp = cp
                    if res.min_cp == 0 or cp < res.min_cp:
                        res.min_cp = cp
                    if st.keep_cps:
                        res.cps.append(cp)
                    st.next_start = total_items
                windowed[st.size] = st.result

        per_region: dict[str, int] = {}
        by_mnemonic: dict[str, int] = {}
        by_group: dict[InstructionGroup, int] = {}
        branches = cond = flags = loads = stores = 0
        counts = self._counts
        table = self._table
        regions = self.regions
        for j in range(len(counts)):
            n = int(counts[j])
            if n == 0:
                continue
            inst = table[j]
            pc = inst.pc
            name = "other"
            for region in regions:
                if region.start <= pc < region.end:
                    name = region.name
                    break
            per_region[name] = per_region.get(name, 0) + n
            m = inst.mnemonic
            by_mnemonic[m] = by_mnemonic.get(m, 0) + n
            g = inst.group
            by_group[g] = by_group.get(g, 0) + n
            if inst.is_branch:
                branches += n
                if (m in _RISCV_COND_BRANCHES or m in _A64_COND_BRANCHES
                        or m.startswith("b.")):
                    cond += n
            elif DEP_NZCV in inst.dsts:
                flags += n
            if inst.is_load:
                loads += n
            if inst.is_store:
                stores += n

        total = self._total
        return AnalysisResult(
            path=PathLengthResult(total=total, per_region=per_region),
            cp=CriticalPathResult(critical_path=self._best_p,
                                  instructions=total),
            scaled_cp=CriticalPathResult(critical_path=self._best_s,
                                         instructions=total),
            mix=InstructionMixResult(
                total=total, by_mnemonic=by_mnemonic, by_group=by_group,
                branches=branches, conditional_branches=cond,
                flag_setters=flags, loads=loads, stores=stores,
            ),
            windowed=windowed,
        )

    # -- mergeable state -------------------------------------------------

    def state(self) -> "AnalysisState":
        """This engine's mergeable state handle."""
        return AnalysisState(self)

    def clone(self) -> "FusedAnalysisEngine":
        """Independent copy of this engine's accumulated state. Pure
        caches (the window-CP and batch memos, the bincount cache, the
        summaries' stitch functions) are shared by reference — they are
        deterministic functions of their keys, so sharing is safe."""
        new = FusedAnalysisEngine.__new__(FusedAnalysisEngine)
        new.__dict__.update(self.__dict__)
        new.regions = list(self.regions)
        new._counts = self._counts.copy()
        new._block_exec = dict(self._block_exec)
        new._reg_p = list(self._reg_p)
        new._reg_s = list(self._reg_s)
        new._mem_p = dict(self._mem_p)
        new._mem_s = dict(self._mem_s)
        new._srcs = list(self._srcs)
        new._dsts = list(self._dsts)
        new._meta = list(self._meta)
        new._wstates = [st.copy() for st in self._wstates]
        new._keys = list(self._keys)
        new._rcells = list(self._rcells)
        new._rdeltas = list(self._rdeltas)
        new._wcells = list(self._wcells)
        new._wdeltas = list(self._wdeltas)
        new._rends = list(self._rends)
        new._wends = list(self._wends)
        return new

    def absorb(self, other: "FusedAnalysisEngine") -> None:
        """Merge a *relative* engine's state onto this one in place.

        ``other`` must be a relative engine that consumed the stream
        suffix immediately following this engine's prefix with the same
        analysis parameters; it is left semantically intact. Engines
        sharing one core's static table merge index-for-index; engines
        with distinct tables (other cores, other processes — see
        :meth:`state_doc`) are re-keyed by ``(pc, word)`` identity
        first (:meth:`_rebase`). Counting
        state adds, chain heads compose through the max-plus values
        evaluated against this engine's pre-merge environment, and the
        window buffers concatenate (the relative side never consumes a
        window). Because max-plus composition is associative and the
        counting parts are commutative monoids, the induced
        :meth:`AnalysisState.merge` is associative.
        """
        if not other._relative:
            raise ValueError("can only absorb a relative engine state")
        if other.break_on_zero != self.break_on_zero:
            raise ValueError("break_on_zero mismatch")
        if other._gw_key != self._gw_key:
            raise ValueError("latency model mismatch")
        if ([(st.size, st.slide) for st in self._wstates]
                != [(st.size, st.slide) for st in other._wstates]):
            raise ValueError("window configuration mismatch")
        for st in other._wstates:
            if st.next_start or st.result.count:
                raise ValueError("suffix window state already consumed")

        self._flatten_counts()
        other._flatten_counts()
        oc = other._counts
        if other._table is self._table:
            # in-process fast path: both engines index one shared core
            # table, so `other` is an extension-compatible view of it
            remap = None
            self._ensure_meta(other._table)
            n = len(oc)
            if len(self._counts) < n:
                grown = np.zeros(n, dtype=np.int64)
                grown[: len(self._counts)] = self._counts
                self._counts = grown
            if n:
                self._counts[:n] += oc
        else:
            # cross-core/cross-process: the suffix engine built its own
            # table in its own first-retirement order — re-key every
            # index by (pc, word) identity
            remap = self._rebase(other)
            n = len(self._srcs)
            if len(self._counts) < n:
                grown = np.zeros(n, dtype=np.int64)
                grown[: len(self._counts)] = self._counts
                self._counts = grown
            if len(oc):
                np.add.at(self._counts,
                          np.asarray(remap[:len(oc)], dtype=np.int64), oc)
        self._total += other._total

        # chains: evaluate every value of `other` against this engine's
        # pre-merge environment first, then install the results
        rel = self._relative
        reg_p = self._reg_p
        reg_s = self._reg_s
        mem_p = self._mem_p
        mem_s = self._mem_s
        if rel:
            def evp(v):
                return _rel_compose(v, reg_p, mem_p)

            def evs(v):
                return _rel_compose(v, reg_s, mem_s)
        else:
            def evp(v):
                return _eval_abs(v, reg_p, mem_p)

            def evs(v):
                return _eval_abs(v, reg_s, mem_s)
        new_rp = {}
        new_rs = {}
        for s in range(NUM_DEP_REGS):
            v = other._reg_p[s]
            if v is not None:
                new_rp[s] = evp(v)
            v = other._reg_s[s]
            if v is not None:
                new_rs[s] = evs(v)
        new_mp = {cell: evp(v) for cell, v in other._mem_p.items()}
        new_ms = {cell: evs(v) for cell, v in other._mem_s.items()}
        bp = evp(other._best_p)
        bs = evs(other._best_s)
        for s, v in new_rp.items():
            reg_p[s] = v
        for s, v in new_rs.items():
            reg_s[s] = v
        mem_p.update(new_mp)
        mem_s.update(new_ms)
        if rel:
            self._best_p = _rel_max2(self._best_p, bp)
            self._best_s = _rel_max2(self._best_s, bs)
        else:
            if bp > self._best_p:
                self._best_p = bp
            if bs > self._best_s:
                self._best_s = bs

        # windows: the suffix's buffered items continue this engine's
        # item stream; shift its cell ends by our totals and re-link the
        # first cell delta across the boundary
        if self._wstates:
            base_r = self._rc_base + len(self._rcells)
            base_w = self._wc_base + len(self._wcells)
            if remap is None:
                self._keys.extend(other._keys)
            else:
                # item keys carry the static index in their high bits
                mask = (1 << _IDX_SHIFT) - 1
                self._keys.extend(
                    (remap[k >> _IDX_SHIFT] << _IDX_SHIFT) | (k & mask)
                    for k in other._keys)
            self._rends.extend([base_r + e for e in other._rends])
            self._wends.extend([base_w + e for e in other._wends])
            if other._rcells:
                self._rdeltas.append(other._rcells[0] - self._prev_rcell)
                self._rdeltas.extend(other._rdeltas[1:])
                self._rcells.extend(other._rcells)
                self._prev_rcell = other._rcells[-1]
            if other._wcells:
                self._wdeltas.append(other._wcells[0] - self._prev_wcell)
                self._wdeltas.extend(other._wdeltas[1:])
                self._wcells.extend(other._wcells)
                self._prev_wcell = other._wcells[-1]
            if not rel:
                self._consume_windows()
                self._trim()

    def _rebase(self, other: "FusedAnalysisEngine") -> list[int]:
        """Map ``other``'s static indices onto this engine's table.

        Two engines that consumed slices on different cores (or in
        different processes) each hold a table in their *own*
        first-retirement order; instructions are identified across them
        by ``(pc, word)`` — exact, since code is not self-modifying.
        Unseen instructions are appended to this engine's table in
        ``other``'s order, which is precisely the order a serial run
        would first retire them in, so the merged table (and therefore
        every insertion-ordered result dict) matches serial
        byte-for-byte. The table is copied before any append: clones
        share tables by reference (possibly a live core's), and a merge
        must never mutate one it doesn't own.
        """
        table = self._table
        index: dict = {}
        for j in range(len(table)):
            inst = table[j]
            index.setdefault((inst.pc, inst.word), j)
        owned = False
        remap: list[int] = []
        osrcs = other._srcs
        odsts = other._dsts
        ometa = other._meta
        otable = other._table
        for j in range(len(osrcs)):
            inst = otable[j]
            key = (inst.pc, inst.word)
            idx = index.get(key)
            if idx is None:
                if not owned:
                    self._table = table = list(table)
                    owned = True
                idx = len(table)
                index[key] = idx
                table.append(inst)
                self._srcs.append(osrcs[j])
                self._dsts.append(odsts[j])
                self._meta.append(ometa[j])
            remap.append(idx)
        return remap

    # -- cross-process state transport -----------------------------------

    def state_doc(self) -> dict:
        """This engine's accumulated state as a process-portable document.

        Everything :meth:`absorb` and :meth:`results` need, in plain
        containers: the static table is flattened to metadata tuples
        (decoded ``execute`` closures cannot cross a pipe; see
        :class:`_InstMeta`), numpy counts become a list, and pure caches
        are dropped — the receiving side rebuilds cold ones. Inverse of
        :meth:`load_state_doc`.
        """
        self._flatten_counts()
        n = len(self._srcs)
        table = [
            (inst.pc, inst.word, inst.mnemonic, inst.text,
             int(inst.group), tuple(inst.srcs), tuple(inst.dsts),
             inst.is_load, inst.is_store, inst.is_branch)
            for inst in self._table[:n]
        ]
        return {
            "v": STATE_SCHEMA,
            "relative": self._relative,
            "break_on_zero": self.break_on_zero,
            "gw_key": self._gw_key,
            "windows": [(st.size, st.slide) for st in self._wstates],
            "table": table,
            "counts": self._counts.tolist(),
            "total": self._total,
            "reg_p": list(self._reg_p),
            "reg_s": list(self._reg_s),
            "best_p": self._best_p,
            "best_s": self._best_s,
            "mem_p": dict(self._mem_p),
            "mem_s": dict(self._mem_s),
            "wstates": [
                (st.next_start, st.result.count, st.result.total_cp,
                 st.result.max_cp, st.result.min_cp, list(st.result.cps))
                for st in self._wstates
            ],
            "keys": list(self._keys),
            "key_base": self._key_base,
            "rcells": list(self._rcells),
            "rdeltas": list(self._rdeltas),
            "wcells": list(self._wcells),
            "wdeltas": list(self._wdeltas),
            "rends": list(self._rends),
            "wends": list(self._wends),
            "rc_base": self._rc_base,
            "wc_base": self._wc_base,
            "prev_rcell": self._prev_rcell,
            "prev_wcell": self._prev_wcell,
        }

    def load_state_doc(self, doc: dict) -> None:
        """Adopt a :meth:`state_doc` document into this (fresh) engine.

        The engine must have been constructed with the same analysis
        parameters the document's producer used (the harness builds both
        sides from one :class:`~repro.analysis.config.AnalysisConfig`)
        and must not have consumed anything yet.
        """
        if doc.get("v") != STATE_SCHEMA:
            raise ValueError(
                f"engine state schema {doc.get('v')!r} != {STATE_SCHEMA}")
        if bool(doc["relative"]) != self._relative:
            raise ValueError("relative-mode mismatch")
        if doc["break_on_zero"] != self.break_on_zero:
            raise ValueError("break_on_zero mismatch")
        if tuple(doc["gw_key"]) != self._gw_key:
            raise ValueError("latency model mismatch")
        if ([tuple(w) for w in doc["windows"]]
                != [(st.size, st.slide) for st in self._wstates]):
            raise ValueError("window configuration mismatch")
        if self._total or self._keys or len(self._counts):
            raise ValueError("can only load state into a fresh engine")
        self._table = [_InstMeta(*t) for t in doc["table"]]
        self._srcs = []
        self._dsts = []
        self._meta = []
        self._ensure_meta(self._table)
        self._counts = np.asarray(doc["counts"], dtype=np.int64)
        self._total = doc["total"]
        self._reg_p = list(doc["reg_p"])
        self._reg_s = list(doc["reg_s"])
        self._best_p = doc["best_p"]
        self._best_s = doc["best_s"]
        self._mem_p = dict(doc["mem_p"])
        self._mem_s = dict(doc["mem_s"])
        for st, (next_start, count, total_cp, max_cp, min_cp, cps) in zip(
                self._wstates, doc["wstates"]):
            st.next_start = next_start
            st.result = WindowedCPResult(
                window_size=st.size, count=count, total_cp=total_cp,
                max_cp=max_cp, min_cp=min_cp, cps=list(cps))
        self._keys = list(doc["keys"])
        self._key_base = doc["key_base"]
        self._rcells = list(doc["rcells"])
        self._rdeltas = list(doc["rdeltas"])
        self._wcells = list(doc["wcells"])
        self._wdeltas = list(doc["wdeltas"])
        self._rends = list(doc["rends"])
        self._wends = list(doc["wends"])
        self._rc_base = doc["rc_base"]
        self._wc_base = doc["wc_base"]
        self._prev_rcell = doc["prev_rcell"]
        self._prev_wcell = doc["prev_wcell"]


class AnalysisState:
    """A mergeable handle on a :class:`FusedAnalysisEngine`'s state.

    ``merge`` stitches a *relative* suffix state (an engine built with
    ``relative=True`` that consumed some contiguous slice of the
    retirement stream) onto this state, returning a new state equal to
    having run one engine over the concatenated stream. The operation is
    associative — ``(a.merge(b)).merge(c) == a.merge(b.merge(c))`` —
    and splitting a run at any block boundary and merging the shard
    states reproduces the serial result exactly; the property tests in
    ``tests/test_block_summaries.py`` enforce both. Neither operand is
    consumed: merging clones the left engine first.
    """

    def __init__(self, engine: FusedAnalysisEngine):
        self._engine = engine

    @property
    def engine(self) -> FusedAnalysisEngine:
        return self._engine

    @property
    def relative(self) -> bool:
        return self._engine._relative

    def merge(self, other: "AnalysisState") -> "AnalysisState":
        merged = self._engine.clone()
        merged.absorb(other._engine)
        return AnalysisState(merged)

    def results(self) -> AnalysisResult:
        """Absolute results; raises for a relative (suffix) state."""
        return self._engine.results()

    def to_doc(self) -> dict:
        """Process-portable form (:meth:`FusedAnalysisEngine.state_doc`)."""
        return self._engine.state_doc()

    @classmethod
    def from_doc(cls, doc: dict,
                 engine: FusedAnalysisEngine) -> "AnalysisState":
        """Rehydrate a state document into ``engine`` (a freshly built
        engine with the producing side's analysis parameters) and wrap
        it. The shard workers ship their slice states through pipes this
        way; the parent merges them exactly as in-process states."""
        engine.load_state_doc(doc)
        return cls(engine)
