"""Shared reporting arithmetic and text-table rendering.

The paper reports, per benchmark × compiler × ISA: path length, critical
path, ILP (= path / CP) and estimated runtime at 2 GHz (= CP / clock).
These helpers keep that arithmetic in one place so tables cannot disagree
with each other, and render aligned text tables in the style of the
artifact's ``basicCPResult.txt`` / ``scaledCPResult.txt`` outputs.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def ilp(path_length: int, critical_path: int) -> float:
    """Instruction-level parallelism (§4.2): path length / critical path."""
    if critical_path <= 0:
        return 0.0
    return path_length / critical_path


def runtime_ms(critical_path: int, clock_ghz: float = 2.0) -> float:
    """Estimated runtime in milliseconds at ``clock_ghz`` (equation 1 with
    CPI·PathLength = CP)."""
    return critical_path / (clock_ghz * 1e9) * 1e3


def normalize(values: Mapping[str, float], baseline_key: str) -> dict[str, float]:
    """Normalize a mapping of results to one entry (Figure 1 normalizes every
    bar to GCC 9.2 targeting Armv8-a)."""
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError(f"baseline {baseline_key!r} is zero")
    return {key: value / baseline for key, value in values.items()}


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned text table (right-aligned numbers, left-aligned
    first column)."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            if abs(cell) >= 10:
                return f"{cell:.1f}"
            return f"{cell:.4g}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [cells[i].rjust(widths[i]) for i in range(1, len(cells))]
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)
