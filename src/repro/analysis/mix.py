"""Instruction-mix and branch accounting (the §3.3 STREAM deep-dive).

The paper's qualitative STREAM analysis rests on two countable facts:

* RISC-V executes ~15% branches on STREAM, and every conditional branch is
  a single fused compare-and-branch instruction;
* every AArch64 conditional branch needs a preceding NZCV-setting
  instruction (``cmp``/``subs``/...), so with all else equal AArch64 pays
  up to that branch fraction in extra path length.

This probe counts instructions by mnemonic and by group, plus the
flag-setter and conditional-branch populations needed to reproduce that
argument quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.base import DEP_NZCV, DecodedInst, InstructionGroup


#: Bump when the serialized shape of :class:`InstructionMixResult` changes.
MIX_SCHEMA = 1


@dataclass
class InstructionMixResult:
    """Histograms plus branch/flag accounting for one run."""

    total: int = 0
    by_mnemonic: dict[str, int] = field(default_factory=dict)
    by_group: dict[InstructionGroup, int] = field(default_factory=dict)
    branches: int = 0
    conditional_branches: int = 0
    flag_setters: int = 0
    loads: int = 0
    stores: int = 0

    def to_dict(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_dict`. Instruction
        groups are stored by name."""
        return {
            "v": MIX_SCHEMA,
            "total": self.total,
            "by_mnemonic": dict(self.by_mnemonic),
            "by_group": {group.name: count
                         for group, count in self.by_group.items()},
            "branches": self.branches,
            "conditional_branches": self.conditional_branches,
            "flag_setters": self.flag_setters,
            "loads": self.loads,
            "stores": self.stores,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "InstructionMixResult":
        if doc.get("v") != MIX_SCHEMA:
            raise ValueError(f"InstructionMixResult schema {doc.get('v')!r} "
                             f"!= {MIX_SCHEMA}")
        return cls(
            total=int(doc["total"]),
            by_mnemonic={str(k): int(n)
                         for k, n in doc["by_mnemonic"].items()},
            by_group={InstructionGroup[name]: int(n)
                      for name, n in doc["by_group"].items()},
            branches=int(doc["branches"]),
            conditional_branches=int(doc["conditional_branches"]),
            flag_setters=int(doc["flag_setters"]),
            loads=int(doc["loads"]),
            stores=int(doc["stores"]),
        )

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.total if self.total else 0.0

    @property
    def conditional_branch_fraction(self) -> float:
        return self.conditional_branches / self.total if self.total else 0.0

    @property
    def flag_setter_fraction(self) -> float:
        """Fraction of instructions that exist to set NZCV — the AArch64
        compare overhead the paper's §7 conclusion quantifies as "up to
        15%"."""
        return self.flag_setters / self.total if self.total else 0.0

    def top_mnemonics(self, n: int = 10) -> list[tuple[str, int]]:
        return sorted(self.by_mnemonic.items(), key=lambda kv: -kv[1])[:n]


#: RISC-V conditional branches are fused compare-and-branch instructions.
_RISCV_COND_BRANCHES = {"beq", "bne", "blt", "bge", "bltu", "bgeu"}
#: AArch64 conditional control flow.
_A64_COND_BRANCHES = {"cbz", "cbnz", "tbz", "tbnz"}


class InstructionMixProbe:
    """Counts mnemonics, groups, branches and NZCV-setting instructions."""

    needs_memory = False

    def __init__(self):
        self.result_ = InstructionMixResult()

    def on_retire(self, inst: DecodedInst, reads, writes) -> None:
        res = self.result_
        res.total += 1
        mnemonic = inst.mnemonic
        res.by_mnemonic[mnemonic] = res.by_mnemonic.get(mnemonic, 0) + 1
        res.by_group[inst.group] = res.by_group.get(inst.group, 0) + 1
        if inst.is_branch:
            res.branches += 1
            if (
                mnemonic in _RISCV_COND_BRANCHES
                or mnemonic in _A64_COND_BRANCHES
                or mnemonic.startswith("b.")
            ):
                res.conditional_branches += 1
        elif DEP_NZCV in inst.dsts:
            res.flag_setters += 1
        if inst.is_load:
            res.loads += 1
        if inst.is_store:
            res.stores += 1

    def result(self) -> InstructionMixResult:
        return self.result_
