"""kernelc lexer.

Tokens: identifiers/keywords, integer and floating literals, string
literals (region names), and the C operator/punctuation set the language
uses. ``//`` and ``/* */`` comments are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import CompilerError

KEYWORDS = {
    "long", "double", "void", "global", "func", "if", "else", "while",
    "for", "return", "region", "break", "continue",
}

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


@dataclass(frozen=True)
class Token:
    kind: str          # "ident" | "keyword" | "int" | "float" | "string" | "op" | "eof"
    text: str
    line: int
    value: object = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind},{self.text!r},l{self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenize kernelc source; raises :class:`CompilerError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompilerError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch == '"':
            end = source.find('"', i + 1)
            if end < 0 or "\n" in source[i:end]:
                raise CompilerError("unterminated string literal", line)
            tokens.append(Token("string", source[i : end + 1], line,
                                source[i + 1 : end]))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                text = source[i:j]
                tokens.append(Token("int", text, line, int(text, 16)))
                i = j
                continue
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                is_float = True
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            if is_float:
                tokens.append(Token("float", text, line, float(text)))
            else:
                tokens.append(Token("int", text, line, int(text)))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise CompilerError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
