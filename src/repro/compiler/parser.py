"""kernelc recursive-descent parser.

Grammar (informally)::

    program    := (global | func)*
    global     := "global" type IDENT ("[" INT "]")? ("=" init)? ";"
    init       := literal | "{" literal ("," literal)* "}"
    func       := "func" type IDENT "(" params? ")" block
    params     := type IDENT ("," type IDENT)*
    block      := "{" stmt* "}"
    stmt       := decl | assign | if | while | for | return | region
                | break | continue | call ";"
    decl       := type IDENT ("=" expr)? ";"
    assign     := lvalue "=" expr ";"
    if         := "if" "(" expr ")" block ("else" (block | if))?
    while      := "while" "(" expr ")" block
    for        := "for" "(" (decl | assign) expr ";" assign-no-semi ")" block
    region     := "region" STRING block
    expr       := ternary-free C expression grammar down to primary

Precedence follows C: ``||`` < ``&&`` < ``|`` < ``^`` < ``&`` <
equality < relational < shift < additive < multiplicative < unary.
"""

from __future__ import annotations

from repro.common import CompilerError
from repro.compiler import ast_nodes as A
from repro.compiler.lexer import Token, tokenize


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if not self.check(kind, text):
            want = text or kind
            raise CompilerError(
                f"expected {want!r}, got {token.text!r}", token.line
            )
        return self.advance()

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> A.Program:
        program = A.Program()
        while not self.check("eof"):
            if self.check("keyword", "global"):
                program.globals.append(self.parse_global())
            elif self.check("keyword", "func"):
                program.functions.append(self.parse_func())
            else:
                token = self.peek()
                raise CompilerError(
                    f"expected 'global' or 'func', got {token.text!r}", token.line
                )
        return program

    def _parse_type(self) -> str:
        token = self.peek()
        if token.kind == "keyword" and token.text in ("long", "double", "void"):
            self.advance()
            return token.text
        raise CompilerError(f"expected a type, got {token.text!r}", token.line)

    def _parse_literal(self, value_type: str):
        negative = bool(self.accept("op", "-"))
        token = self.peek()
        if token.kind == "int":
            self.advance()
            value = -token.value if negative else token.value
            return float(value) if value_type == "double" else value
        if token.kind == "float":
            self.advance()
            value = -token.value if negative else token.value
            if value_type == "long":
                raise CompilerError("float literal initializing a long", token.line)
            return value
        raise CompilerError(f"expected literal, got {token.text!r}", token.line)

    def parse_global(self) -> A.GlobalDecl:
        start = self.expect("keyword", "global")
        var_type = self._parse_type()
        if var_type == "void":
            raise CompilerError("globals cannot be void", start.line)
        name = self.expect("ident").text
        array_size = None
        if self.accept("op", "["):
            array_size = self.expect("int").value
            self.expect("op", "]")
            if array_size <= 0:
                raise CompilerError(f"array size must be positive", start.line)
        decl = A.GlobalDecl(start.line, var_type, name, array_size)
        if self.accept("op", "="):
            if self.accept("op", "{"):
                values = [self._parse_literal(var_type)]
                while self.accept("op", ","):
                    values.append(self._parse_literal(var_type))
                self.expect("op", "}")
                if array_size is None:
                    raise CompilerError("brace initializer on a scalar", start.line)
                if len(values) > array_size:
                    raise CompilerError("too many initializer values", start.line)
                decl.init_list = values
            else:
                if array_size is not None:
                    raise CompilerError("array needs a brace initializer", start.line)
                decl.init_scalar = self._parse_literal(var_type)
        self.expect("op", ";")
        return decl

    def parse_func(self) -> A.FuncDecl:
        start = self.expect("keyword", "func")
        return_type = self._parse_type()
        name = self.expect("ident").text
        self.expect("op", "(")
        params: list[tuple[str, str]] = []
        if not self.check("op", ")"):
            while True:
                ptype = self._parse_type()
                if ptype == "void":
                    raise CompilerError("void parameter", start.line)
                pname = self.expect("ident").text
                params.append((ptype, pname))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.parse_block()
        return A.FuncDecl(start.line, return_type, name, params, body)

    # -- statements ----------------------------------------------------------

    def parse_block(self) -> list[A.Stmt]:
        self.expect("op", "{")
        stmts: list[A.Stmt] = []
        while not self.check("op", "}"):
            stmts.append(self.parse_stmt())
        self.expect("op", "}")
        return stmts

    def parse_stmt(self) -> A.Stmt:
        token = self.peek()
        if token.kind == "keyword":
            if token.text in ("long", "double"):
                return self._parse_decl()
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "for":
                return self._parse_for()
            if token.text == "return":
                return self._parse_return()
            if token.text == "region":
                return self._parse_region()
            if token.text == "break":
                self.advance()
                self.expect("op", ";")
                return A.BreakStmt(line=token.line)
            if token.text == "continue":
                self.advance()
                self.expect("op", ";")
                return A.ContinueStmt(line=token.line)
        if token.kind == "op" and token.text == "{":
            return A.BlockStmt(line=token.line, body=self.parse_block())
        # assignment or expression (call) statement
        stmt = self._parse_assign_or_expr()
        self.expect("op", ";")
        return stmt

    def _parse_decl(self) -> A.DeclStmt:
        token = self.peek()
        var_type = self._parse_type()
        name = self.expect("ident").text
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return A.DeclStmt(line=token.line, var_type=var_type, name=name, init=init)

    def _parse_assign_or_expr(self) -> A.Stmt:
        token = self.peek()
        expr = self.parse_expr()
        if self.check("op", "="):
            if not isinstance(expr, (A.VarRef, A.ArrayRef)):
                raise CompilerError("invalid assignment target", token.line)
            self.advance()
            value = self.parse_expr()
            return A.AssignStmt(line=token.line, target=expr, value=value)
        for compound in ("+=", "-=", "*=", "/="):
            if self.check("op", compound):
                if not isinstance(expr, (A.VarRef, A.ArrayRef)):
                    raise CompilerError("invalid assignment target", token.line)
                self.advance()
                rhs = self.parse_expr()
                # desugar: x OP= e  ->  x = x OP e (the read uses a fresh
                # node so later passes that key on node identity stay sound)
                read = _clone_lvalue(expr)
                value = A.Binary(line=token.line, op=compound[0],
                                 left=read, right=rhs)
                return A.AssignStmt(line=token.line, target=expr, value=value)
        if not isinstance(expr, A.Call):
            raise CompilerError("expression statement must be a call", token.line)
        return A.ExprStmt(line=token.line, expr=expr)

    def _parse_if(self) -> A.IfStmt:
        token = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: list[A.Stmt] = []
        if self.accept("keyword", "else"):
            if self.check("keyword", "if"):
                else_body = [self._parse_if()]
            else:
                else_body = self.parse_block()
        return A.IfStmt(line=token.line, cond=cond, then_body=then_body,
                        else_body=else_body)

    def _parse_while(self) -> A.WhileStmt:
        token = self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_block()
        return A.WhileStmt(line=token.line, cond=cond, body=body)

    def _parse_for(self) -> A.ForStmt:
        token = self.expect("keyword", "for")
        self.expect("op", "(")
        if self.check("keyword", "long") or self.check("keyword", "double"):
            init = self._parse_decl()  # consumes the ';'
        else:
            init = self._parse_assign_or_expr()
            self.expect("op", ";")
        cond = self.parse_expr()
        self.expect("op", ";")
        update = self._parse_assign_or_expr()
        self.expect("op", ")")
        body = self.parse_block()
        return A.ForStmt(line=token.line, init=init, cond=cond, update=update,
                         body=body)

    def _parse_return(self) -> A.ReturnStmt:
        token = self.expect("keyword", "return")
        value = None
        if not self.check("op", ";"):
            value = self.parse_expr()
        self.expect("op", ";")
        return A.ReturnStmt(line=token.line, value=value)

    def _parse_region(self) -> A.RegionStmt:
        token = self.expect("keyword", "region")
        name = self.expect("string").value
        body = self.parse_block()
        return A.RegionStmt(line=token.line, name=name, body=body)

    # -- expressions -----------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self._parse_logical_or()

    def _parse_logical_or(self) -> A.Expr:
        left = self._parse_logical_and()
        while self.check("op", "||"):
            line = self.advance().line
            right = self._parse_logical_and()
            left = A.Logical(line=line, op="||", left=left, right=right)
        return left

    def _parse_logical_and(self) -> A.Expr:
        left = self._parse_bitor()
        while self.check("op", "&&"):
            line = self.advance().line
            right = self._parse_bitor()
            left = A.Logical(line=line, op="&&", left=left, right=right)
        return left

    def _binary_level(self, ops: tuple[str, ...], next_level):
        left = next_level()
        while self.peek().kind == "op" and self.peek().text in ops:
            token = self.advance()
            right = next_level()
            left = A.Binary(line=token.line, op=token.text, left=left, right=right)
        return left

    def _parse_bitor(self) -> A.Expr:
        return self._binary_level(("|",), self._parse_bitxor)

    def _parse_bitxor(self) -> A.Expr:
        return self._binary_level(("^",), self._parse_bitand)

    def _parse_bitand(self) -> A.Expr:
        return self._binary_level(("&",), self._parse_equality)

    def _parse_equality(self) -> A.Expr:
        return self._binary_level(("==", "!="), self._parse_relational)

    def _parse_relational(self) -> A.Expr:
        return self._binary_level(("<", ">", "<=", ">="), self._parse_shift)

    def _parse_shift(self) -> A.Expr:
        return self._binary_level(("<<", ">>"), self._parse_additive)

    def _parse_additive(self) -> A.Expr:
        return self._binary_level(("+", "-"), self._parse_multiplicative)

    def _parse_multiplicative(self) -> A.Expr:
        return self._binary_level(("*", "/", "%"), self._parse_unary)

    def _parse_unary(self) -> A.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.advance()
            operand = self._parse_unary()
            return A.Unary(line=token.line, op=token.text, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> A.Expr:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return A.IntLit(line=token.line, value=token.value)
        if token.kind == "float":
            self.advance()
            return A.FloatLit(line=token.line, value=token.value)
        if token.kind == "op" and token.text == "(":
            # cast or parenthesized expression
            nxt = self.tokens[self.pos + 1]
            if nxt.kind == "keyword" and nxt.text in ("long", "double"):
                self.advance()
                target = self._parse_type()
                self.expect("op", ")")
                operand = self._parse_unary()
                return A.Cast(line=token.line, target=target, operand=operand)
            self.advance()
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        if token.kind == "ident":
            self.advance()
            if self.check("op", "("):
                self.advance()
                args: list[A.Expr] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return A.Call(line=token.line, name=token.text, args=args)
            if self.check("op", "["):
                self.advance()
                index = self.parse_expr()
                self.expect("op", "]")
                return A.ArrayRef(line=token.line, name=token.text, index=index)
            return A.VarRef(line=token.line, name=token.text)
        raise CompilerError(f"unexpected token {token.text!r}", token.line)


def _clone_expr(expr: A.Expr) -> A.Expr:
    """Deep-copy an expression tree (used by compound-assignment desugaring)."""
    if isinstance(expr, A.IntLit):
        return A.IntLit(line=expr.line, value=expr.value)
    if isinstance(expr, A.FloatLit):
        return A.FloatLit(line=expr.line, value=expr.value)
    if isinstance(expr, A.VarRef):
        return A.VarRef(line=expr.line, name=expr.name)
    if isinstance(expr, A.ArrayRef):
        return A.ArrayRef(line=expr.line, name=expr.name,
                          index=_clone_expr(expr.index))
    if isinstance(expr, A.Unary):
        return A.Unary(line=expr.line, op=expr.op,
                       operand=_clone_expr(expr.operand))
    if isinstance(expr, A.Binary):
        return A.Binary(line=expr.line, op=expr.op,
                        left=_clone_expr(expr.left),
                        right=_clone_expr(expr.right))
    if isinstance(expr, A.Logical):
        return A.Logical(line=expr.line, op=expr.op,
                         left=_clone_expr(expr.left),
                         right=_clone_expr(expr.right))
    if isinstance(expr, A.Cast):
        return A.Cast(line=expr.line, target=expr.target,
                      operand=_clone_expr(expr.operand))
    if isinstance(expr, A.Call):
        return A.Call(line=expr.line, name=expr.name,
                      args=[_clone_expr(a) for a in expr.args])
    raise CompilerError(f"cannot clone {type(expr).__name__}", expr.line)


def _clone_lvalue(expr: A.Expr) -> A.Expr:
    return _clone_expr(expr)


def parse(source: str) -> A.Program:
    """Parse kernelc source text into an AST."""
    return Parser(tokenize(source)).parse_program()
