"""kernelc semantic analysis.

Annotates every expression with its type (inserting implicit long→double
promotions as explicit :class:`~repro.compiler.ast_nodes.Cast` nodes),
builds the symbol tables the back ends consume, validates calls and
lvalues, and recognizes canonical induction-variable ``for`` loops (the
pattern the loop-lowering code generators strength-reduce).

Builtins (all over doubles, matching the C math functions the workloads
use): ``sqrt``, ``fabs``, ``fmin``, ``fmax``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import CompilerError
from repro.compiler import ast_nodes as A

BUILTINS: dict[str, tuple[str, tuple[str, ...]]] = {
    "sqrt": (A.DOUBLE, (A.DOUBLE,)),
    "fabs": (A.DOUBLE, (A.DOUBLE,)),
    "fmin": (A.DOUBLE, (A.DOUBLE, A.DOUBLE)),
    "fmax": (A.DOUBLE, (A.DOUBLE, A.DOUBLE)),
}


@dataclass
class GlobalInfo:
    type: str
    is_array: bool
    size: int  # elements (1 for scalars)


@dataclass
class SymbolTable:
    globals: dict[str, GlobalInfo] = field(default_factory=dict)
    functions: dict[str, A.FuncDecl] = field(default_factory=dict)


def assigned_names(stmts: list[A.Stmt]) -> set[str]:
    """Names of variables and arrays assigned anywhere in ``stmts``
    (recursively). Used for loop-invariance checks."""
    names: set[str] = set()

    def visit(stmt_list: list[A.Stmt]) -> None:
        for stmt in stmt_list:
            if isinstance(stmt, A.AssignStmt):
                target = stmt.target
                if isinstance(target, A.VarRef):
                    names.add(target.name)
                elif isinstance(target, A.ArrayRef):
                    names.add(target.name)
            elif isinstance(stmt, A.DeclStmt):
                names.add(stmt.name)
            elif isinstance(stmt, A.IfStmt):
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, A.WhileStmt):
                visit(stmt.body)
            elif isinstance(stmt, A.ForStmt):
                if stmt.init is not None:
                    visit([stmt.init])
                if stmt.update is not None:
                    visit([stmt.update])
                visit(stmt.body)
            elif isinstance(stmt, (A.RegionStmt, A.BlockStmt)):
                visit(stmt.body)
            elif isinstance(stmt, A.ExprStmt):
                # calls may assign globals inside the callee; callers that
                # care check calls_in() separately
                pass

    visit(stmts)
    return names


def contains_call(stmts: list[A.Stmt]) -> bool:
    """True if any statement (recursively) performs a function call."""
    found = False

    def expr_has_call(expr: A.Expr | None) -> bool:
        if expr is None:
            return False
        if isinstance(expr, A.Call):
            if expr.name not in BUILTINS:
                return True
            return any(expr_has_call(a) for a in expr.args)
        if isinstance(expr, (A.Unary, A.Cast)):
            return expr_has_call(expr.operand)
        if isinstance(expr, (A.Binary, A.Logical)):
            return expr_has_call(expr.left) or expr_has_call(expr.right)
        if isinstance(expr, A.ArrayRef):
            return expr_has_call(expr.index)
        return False

    def visit(stmt_list: list[A.Stmt]) -> bool:
        for stmt in stmt_list:
            if isinstance(stmt, A.AssignStmt):
                if expr_has_call(stmt.value) or (
                    isinstance(stmt.target, A.ArrayRef)
                    and expr_has_call(stmt.target.index)
                ):
                    return True
            elif isinstance(stmt, A.DeclStmt) and expr_has_call(stmt.init):
                return True
            elif isinstance(stmt, A.ExprStmt):
                if expr_has_call(stmt.expr):
                    return True
            elif isinstance(stmt, A.ReturnStmt) and expr_has_call(stmt.value):
                return True
            elif isinstance(stmt, A.IfStmt):
                if expr_has_call(stmt.cond) or visit(stmt.then_body) or visit(stmt.else_body):
                    return True
            elif isinstance(stmt, A.WhileStmt):
                if expr_has_call(stmt.cond) or visit(stmt.body):
                    return True
            elif isinstance(stmt, A.ForStmt):
                inner = ([stmt.init] if stmt.init else []) + ([stmt.update] if stmt.update else [])
                if expr_has_call(stmt.cond) or visit(inner) or visit(stmt.body):
                    return True
            elif isinstance(stmt, (A.RegionStmt, A.BlockStmt)):
                if visit(stmt.body):
                    return True
        return False

    return visit(stmts)


class _Analyzer:
    def __init__(self, program: A.Program):
        self.program = program
        self.symbols = SymbolTable()
        self.scope: dict[str, str] = {}      # local name -> type
        self.current: A.FuncDecl | None = None
        self.loop_depth = 0

    def run(self) -> SymbolTable:
        for decl in self.program.globals:
            if decl.name in self.symbols.globals:
                raise CompilerError(f"duplicate global {decl.name!r}", decl.line)
            self.symbols.globals[decl.name] = GlobalInfo(
                decl.var_type, decl.array_size is not None, decl.array_size or 1
            )
        for func in self.program.functions:
            if func.name in self.symbols.functions or func.name in BUILTINS:
                raise CompilerError(f"duplicate function {func.name!r}", func.line)
            self.symbols.functions[func.name] = func
        if "main" not in self.symbols.functions:
            raise CompilerError("program has no 'main' function")
        for func in self.program.functions:
            self._check_function(func)
        return self.symbols

    # -- functions / statements ----------------------------------------------

    def _check_function(self, func: A.FuncDecl) -> None:
        self.current = func
        self.scope = {}
        for ptype, pname in func.params:
            if pname in self.scope:
                raise CompilerError(f"duplicate parameter {pname!r}", func.line)
            self.scope[pname] = ptype
        self._check_block(func.body)

    def _check_block(self, stmts: list[A.Stmt]) -> None:
        """Blocks are lexical scopes: declarations vanish at the brace.
        Shadowing an outer name is rejected (mirrors the back end's
        binding rules)."""
        saved = dict(self.scope)
        for stmt in stmts:
            self._check_stmt(stmt)
        self.scope = saved

    def _check_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.DeclStmt):
            if stmt.name in self.scope:
                raise CompilerError(f"redeclaration of {stmt.name!r}", stmt.line)
            if stmt.var_type == A.VOID:
                raise CompilerError("void variable", stmt.line)
            if stmt.init is not None:
                stmt.init = self._coerce(self._check_expr(stmt.init), stmt.var_type,
                                         stmt.line)
            self.scope[stmt.name] = stmt.var_type
        elif isinstance(stmt, A.AssignStmt):
            target_type = self._check_lvalue(stmt.target)
            stmt.value = self._coerce(self._check_expr(stmt.value), target_type,
                                      stmt.line)
        elif isinstance(stmt, A.IfStmt):
            stmt.cond = self._check_cond(stmt.cond)
            self._check_block(stmt.then_body)
            self._check_block(stmt.else_body)
        elif isinstance(stmt, A.WhileStmt):
            stmt.cond = self._check_cond(stmt.cond)
            self.loop_depth += 1
            self._check_block(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, A.ForStmt):
            saved = dict(self.scope)  # the init declaration is loop-scoped
            self._check_stmt(stmt.init)
            stmt.cond = self._check_cond(stmt.cond)
            self._check_stmt(stmt.update)
            self.loop_depth += 1
            self._check_block(stmt.body)
            self.loop_depth -= 1
            self._detect_canonical_iv(stmt)
            self.scope = saved
        elif isinstance(stmt, A.ReturnStmt):
            assert self.current is not None
            if self.current.return_type == A.VOID:
                if stmt.value is not None:
                    raise CompilerError("void function returns a value", stmt.line)
            else:
                if stmt.value is None:
                    raise CompilerError("non-void function returns nothing", stmt.line)
                stmt.value = self._coerce(self._check_expr(stmt.value),
                                          self.current.return_type, stmt.line)
        elif isinstance(stmt, A.ExprStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, (A.RegionStmt, A.BlockStmt)):
            self._check_block(stmt.body)
        elif isinstance(stmt, (A.BreakStmt, A.ContinueStmt)):
            if self.loop_depth == 0:
                raise CompilerError("break/continue outside a loop", stmt.line)
        else:  # pragma: no cover
            raise CompilerError(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _detect_canonical_iv(self, stmt: A.ForStmt) -> None:
        """Record (iv_name, iv_step) when the loop is the canonical
        ``for (long j = e0; j < e1; j = j + C)`` shape with j unmodified in
        the body."""
        init, cond, update = stmt.init, stmt.cond, stmt.update
        if isinstance(init, A.DeclStmt) and init.var_type == A.LONG:
            name = init.name
        elif isinstance(init, A.AssignStmt) and isinstance(init.target, A.VarRef):
            if init.target.type != A.LONG:
                return
            name = init.target.name
        else:
            return
        if not (
            isinstance(cond, A.Binary)
            and cond.op in ("<", "<=")
            and isinstance(cond.left, A.VarRef)
            and cond.left.name == name
        ):
            return
        if not (
            isinstance(update, A.AssignStmt)
            and isinstance(update.target, A.VarRef)
            and update.target.name == name
            and isinstance(update.value, A.Binary)
            and update.value.op == "+"
        ):
            return
        add = update.value
        if (
            isinstance(add.left, A.VarRef) and add.left.name == name
            and isinstance(add.right, A.IntLit)
        ):
            step = add.right.value
        elif (
            isinstance(add.right, A.VarRef) and add.right.name == name
            and isinstance(add.left, A.IntLit)
        ):
            step = add.left.value
        else:
            return
        if step <= 0:
            return
        if name in assigned_names(stmt.body):
            return
        stmt.iv_name = name
        stmt.iv_step = step

    # -- expressions -----------------------------------------------------

    def _check_lvalue(self, expr: A.Expr) -> str:
        if isinstance(expr, A.VarRef):
            var_type = self._lookup_var(expr)
            expr.type = var_type
            return var_type
        if isinstance(expr, A.ArrayRef):
            info = self.symbols.globals.get(expr.name)
            if info is None or not info.is_array:
                raise CompilerError(f"{expr.name!r} is not a global array", expr.line)
            expr.index = self._coerce(self._check_expr(expr.index), A.LONG, expr.line)
            expr.type = info.type
            return info.type
        raise CompilerError("invalid assignment target", expr.line)

    def _lookup_var(self, expr: A.VarRef) -> str:
        if expr.name in self.scope:
            return self.scope[expr.name]
        info = self.symbols.globals.get(expr.name)
        if info is not None:
            if info.is_array:
                raise CompilerError(
                    f"array {expr.name!r} used without an index", expr.line
                )
            return info.type
        raise CompilerError(f"undefined variable {expr.name!r}", expr.line)

    def _check_cond(self, expr: A.Expr) -> A.Expr:
        checked = self._check_expr(expr)
        if checked.type == A.DOUBLE:
            raise CompilerError(
                "condition must be integer-valued (compare doubles explicitly)",
                expr.line,
            )
        return checked

    def _coerce(self, expr: A.Expr, target: str, line: int) -> A.Expr:
        if expr.type == target:
            return expr
        if expr.type == A.LONG and target == A.DOUBLE:
            cast = A.Cast(line=line, target=A.DOUBLE, operand=expr)
            cast.type = A.DOUBLE
            return cast
        raise CompilerError(
            f"cannot implicitly convert {expr.type} to {target}", line
        )

    def _check_expr(self, expr: A.Expr) -> A.Expr:
        if isinstance(expr, A.IntLit):
            expr.type = A.LONG
        elif isinstance(expr, A.FloatLit):
            expr.type = A.DOUBLE
        elif isinstance(expr, A.VarRef):
            expr.type = self._lookup_var(expr)
        elif isinstance(expr, A.ArrayRef):
            info = self.symbols.globals.get(expr.name)
            if info is None or not info.is_array:
                raise CompilerError(f"{expr.name!r} is not a global array", expr.line)
            expr.index = self._coerce(self._check_expr(expr.index), A.LONG, expr.line)
            expr.type = info.type
        elif isinstance(expr, A.Unary):
            operand = self._check_expr(expr.operand)
            if expr.op == "-":
                expr.type = operand.type
            elif expr.op in ("!", "~"):
                if operand.type != A.LONG:
                    raise CompilerError(f"{expr.op} needs a long operand", expr.line)
                expr.type = A.LONG
            expr.operand = operand
        elif isinstance(expr, A.Binary):
            left = self._check_expr(expr.left)
            right = self._check_expr(expr.right)
            if expr.op in ("&", "|", "^", "<<", ">>", "%"):
                if left.type != A.LONG or right.type != A.LONG:
                    raise CompilerError(f"{expr.op} needs long operands", expr.line)
                expr.type = A.LONG
            elif expr.op in ("<", ">", "<=", ">=", "==", "!="):
                if left.type != right.type:
                    left, right = self._promote_pair(left, right, expr.line)
                expr.type = A.LONG
            else:  # + - * /
                if left.type != right.type:
                    left, right = self._promote_pair(left, right, expr.line)
                expr.type = left.type
            expr.left, expr.right = left, right
        elif isinstance(expr, A.Logical):
            expr.left = self._check_cond(expr.left)
            expr.right = self._check_cond(expr.right)
            expr.type = A.LONG
        elif isinstance(expr, A.Cast):
            expr.operand = self._check_expr(expr.operand)
            if expr.target == A.VOID:
                raise CompilerError("cannot cast to void", expr.line)
            expr.type = expr.target
        elif isinstance(expr, A.Call):
            if expr.name in BUILTINS:
                ret, param_types = BUILTINS[expr.name]
                if len(expr.args) != len(param_types):
                    raise CompilerError(
                        f"{expr.name} expects {len(param_types)} args", expr.line
                    )
                expr.args = [
                    self._coerce(self._check_expr(arg), ptype, expr.line)
                    for arg, ptype in zip(expr.args, param_types)
                ]
                expr.type = ret
            else:
                func = self.symbols.functions.get(expr.name)
                if func is None:
                    raise CompilerError(f"undefined function {expr.name!r}", expr.line)
                if len(expr.args) != len(func.params):
                    raise CompilerError(
                        f"{expr.name} expects {len(func.params)} args", expr.line
                    )
                expr.args = [
                    self._coerce(self._check_expr(arg), ptype, expr.line)
                    for arg, (ptype, _pname) in zip(expr.args, func.params)
                ]
                expr.type = func.return_type
        else:  # pragma: no cover
            raise CompilerError(f"unknown expression {type(expr).__name__}", expr.line)
        return expr

    def _promote_pair(self, left: A.Expr, right: A.Expr, line: int):
        if left.type == A.LONG and right.type == A.DOUBLE:
            return self._coerce(left, A.DOUBLE, line), right
        if left.type == A.DOUBLE and right.type == A.LONG:
            return left, self._coerce(right, A.DOUBLE, line)
        raise CompilerError("incompatible operand types", line)


def analyze(program: A.Program) -> SymbolTable:
    """Type-check and annotate ``program``; returns its symbol table."""
    return _Analyzer(program).run()
