"""kernelc abstract syntax tree.

Types are just the strings ``"long"``, ``"double"`` and ``"void"`` —
enough for a two-type language — attached to expression nodes by the
semantic pass (:mod:`repro.compiler.sema`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

LONG = "long"
DOUBLE = "double"
VOID = "void"


# --- expressions --------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0
    type: str = ""  # filled in by sema


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class ArrayRef(Expr):
    name: str = ""
    index: Expr | None = None


@dataclass
class Unary(Expr):
    op: str = ""          # "-" | "!" | "~"
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""          # arithmetic, comparison, bitwise, shift
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Logical(Expr):
    op: str = ""          # "&&" | "||"
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Cast(Expr):
    target: str = ""
    operand: Expr | None = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


# --- statements ---------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    var_type: str = ""
    name: str = ""
    init: Expr | None = None


@dataclass
class AssignStmt(Stmt):
    target: Expr | None = None   # VarRef or ArrayRef
    value: Expr | None = None


@dataclass
class IfStmt(Stmt):
    cond: Expr | None = None
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    cond: Expr | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class ForStmt(Stmt):
    """``for (long j = init; j < bound; j = j + step) body``.

    The parser accepts the general C shape (decl-or-assign; cond; assign)
    but records the canonical induction-variable pattern when it matches,
    which is what the loop-lowering code generators key on.
    """

    init: Stmt | None = None
    cond: Expr | None = None
    update: Stmt | None = None
    body: list[Stmt] = field(default_factory=list)
    # canonical-IV metadata, filled by sema when the loop matches
    iv_name: str | None = None
    iv_step: int | None = None


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None     # calls in statement position


@dataclass
class RegionStmt(Stmt):
    name: str = ""
    body: list[Stmt] = field(default_factory=list)


@dataclass
class BlockStmt(Stmt):
    """A bare ``{ ... }`` block: pure lexical scope (frees its locals)."""

    body: list[Stmt] = field(default_factory=list)


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# --- top level ---------------------------------------------------------------

@dataclass
class GlobalDecl:
    line: int
    var_type: str
    name: str
    array_size: int | None = None          # None for scalars
    init_scalar: float | int | None = None
    init_list: list[float] | list[int] | None = None


@dataclass
class FuncDecl:
    line: int
    return_type: str
    name: str
    params: list[tuple[str, str]] = field(default_factory=list)  # (type, name)
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Program:
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FuncDecl] = field(default_factory=list)

    def function(self, name: str) -> FuncDecl:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)
