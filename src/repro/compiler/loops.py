"""Canonical-loop lowering: induction variables, invariant hoisting,
strength reduction.

For a loop sema marked canonical — ``for (long j = e0; j < e1; j = j + s)``
with ``j`` unmodified in the body — the lowering:

1. evaluates ``e0``/``e1`` in the preheader (bound hoisting);
2. finds *reducible* array accesses, i.e. ``arr[j + inv + c]`` where ``inv``
   is loop-invariant and ``c`` a small constant, and groups them into
   address streams;
3. materializes each stream per the ISA's style —

   * RISC-V: one **pointer register** per ``(array, inv)`` stream, bumped by
     ``s*8`` per iteration, accesses via immediate-offset ``fld/fsd`` with
     displacement ``c*8``; when the IV has no other use the exit test runs
     on a precomputed **end pointer** (``bne a5, s0`` — Listing 2),
   * AArch64: one **adjusted base register** per ``(array, inv, c)`` stream;
     accesses are register-offset ``ldr/str [base, xj, lsl #3]`` and the IV
     register stays live (Listing 1);

4. hoists loop-invariant global-scalar reads into registers;
5. emits a bottom exit test whose shape is the §3.3 comparison point (fused
   branch vs ``cmp``+``b.cond`` vs GCC 9.2's ``sub``/``subs`` pair).

Loops that do not match (or when register pools run dry) degrade gracefully
to generic addressing — exactly what a real compiler does under pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import CompilerError
from repro.compiler import ast_nodes as A
from repro.compiler.exprcache import expr_key
from repro.compiler.sema import assigned_names, contains_call

ELEM = 8


@dataclass
class AccessGroup:
    """One strength-reducible address stream (see module docstring).

    ``style`` is how the body addresses the stream: ``"ptr"`` — a pointer
    register bumped per iteration, accesses via immediate-offset load/store
    with displacement ``c*8`` (RISC-V always; AArch64 for strided
    record/AoS streams, i.e. ``scale > 1``, where its immediate-offset
    forms are what GCC emits) — or ``"regoff"`` — AArch64's register-offset
    ``[base, Xi, lsl #3]`` with the constant folded into an adjusted base.
    """

    array: str
    inv_key: tuple | None
    inv_expr: A.Expr | None
    const_off: int            # 'regoff': the folded c; 'ptr': 0
    scale: int = 1            # element stride per IV step (AoS field count)
    style: str = "ptr"
    reg: str = ""
    offsets: set[int] = field(default_factory=set)


@dataclass
class LoopPlan:
    """Preheader decisions consulted by body codegen via _reduced_access."""

    iv_name: str = ""
    iv_reg: str = ""
    step: int = 1
    bound_reg: str | None = None
    bound_const: int | None = None
    groups: dict[tuple, AccessGroup] = field(default_factory=dict)
    end_ptr_reg: str | None = None
    test_group_reg: str | None = None
    iv_in_regs: bool = True   # False when the IV was eliminated (pointer exit)


def _const_value(expr: A.Expr) -> int | None:
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.Unary) and expr.op == "-":
        inner = _const_value(expr.operand)
        return None if inner is None else -inner
    return None


def _flatten_sum(expr: A.Expr) -> list[A.Expr] | None:
    """Flatten nested '+' into a term list (long-typed only)."""
    if isinstance(expr, A.Binary) and expr.op == "+" and expr.type == A.LONG:
        left = _flatten_sum(expr.left)
        right = _flatten_sum(expr.right)
        if left is None or right is None:
            return None
        return left + right
    return [expr]


def _mentions_var(expr: A.Expr | None, name: str) -> bool:
    if expr is None:
        return False
    if isinstance(expr, A.VarRef):
        return expr.name == name
    if isinstance(expr, (A.Unary, A.Cast)):
        return _mentions_var(expr.operand, name)
    if isinstance(expr, (A.Binary, A.Logical)):
        return _mentions_var(expr.left, name) or _mentions_var(expr.right, name)
    if isinstance(expr, A.ArrayRef):
        return _mentions_var(expr.index, name)
    if isinstance(expr, A.Call):
        return any(_mentions_var(a, name) for a in expr.args)
    return False


def _is_invariant(expr: A.Expr, banned: set[str], globals_ok: bool = True) -> bool:
    """Pure and not depending on anything assigned in the loop."""
    if isinstance(expr, A.IntLit):
        return True
    if isinstance(expr, A.VarRef):
        return expr.name not in banned
    if isinstance(expr, A.Unary):
        return expr.op in ("-", "~") and _is_invariant(expr.operand, banned)
    if isinstance(expr, A.Binary):
        return _is_invariant(expr.left, banned) and _is_invariant(expr.right, banned)
    return False


def _iv_term_scale(term: A.Expr, iv: str) -> int | None:
    """Scale of an IV term: ``IV`` → 1, ``IV*k``/``k*IV`` → k, else None."""
    if isinstance(term, A.VarRef) and term.name == iv:
        return 1
    if isinstance(term, A.Binary) and term.op == "*":
        left, right = term.left, term.right
        if isinstance(left, A.VarRef) and left.name == iv:
            k = _const_value(right)
            return k if k is not None and k > 0 else None
        if isinstance(right, A.VarRef) and right.name == iv:
            k = _const_value(left)
            return k if k is not None and k > 0 else None
    return None


def match_access(index: A.Expr, iv: str, banned: set[str]):
    """Match ``index`` against ``IV*scale + inv + c``.

    Returns ``(inv_expr_or_None, c, scale)`` or None when the access is not
    reducible. ``banned`` is the set of names assigned in the loop (the IV
    itself is excluded by construction). ``scale`` covers AoS/record
    layouts (``atoms[ip*6 + field]``).
    """
    terms = _flatten_sum(index)
    if terms is None:
        return None
    iv_terms = [
        (t, s) for t in terms
        if (s := _iv_term_scale(t, iv)) is not None
    ]
    if len(iv_terms) != 1:
        return None
    iv_term, scale = iv_terms[0]
    rest = [t for t in terms if t is not iv_term]
    const = 0
    inv_terms: list[A.Expr] = []
    for term in rest:
        value = _const_value(term)
        if value is not None:
            const += value
        elif _is_invariant(term, banned) and not _mentions_var(term, iv):
            inv_terms.append(term)
        else:
            return None
    if not inv_terms:
        return None, const, scale
    inv: A.Expr = inv_terms[0]
    for term in inv_terms[1:]:
        combined = A.Binary(line=inv.line, op="+", left=inv, right=term)
        combined.type = A.LONG
        inv = combined
    return inv, const, scale


def _body_has_loops(stmts: list[A.Stmt]) -> bool:
    """True if any nested For/While loop exists under ``stmts``."""
    for stmt in stmts:
        if isinstance(stmt, (A.ForStmt, A.WhileStmt)):
            return True
        if isinstance(stmt, A.IfStmt):
            if _body_has_loops(stmt.then_body) or _body_has_loops(stmt.else_body):
                return True
        elif isinstance(stmt, (A.RegionStmt, A.BlockStmt)):
            if _body_has_loops(stmt.body):
                return True
    return False


def _collect_accesses(stmts: list[A.Stmt], sink: list[A.ArrayRef]) -> None:
    """All ArrayRefs at this loop level (descends ifs/regions, not loops)."""

    def from_expr(expr: A.Expr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, A.ArrayRef):
            sink.append(expr)
            from_expr(expr.index)
        elif isinstance(expr, (A.Unary, A.Cast)):
            from_expr(expr.operand)
        elif isinstance(expr, (A.Binary, A.Logical)):
            from_expr(expr.left)
            from_expr(expr.right)
        elif isinstance(expr, A.Call):
            for arg in expr.args:
                from_expr(arg)

    for stmt in stmts:
        if isinstance(stmt, A.AssignStmt):
            if isinstance(stmt.target, A.ArrayRef):
                sink.append(stmt.target)
                from_expr(stmt.target.index)
            from_expr(stmt.value)
        elif isinstance(stmt, A.DeclStmt):
            from_expr(stmt.init)
        elif isinstance(stmt, A.ExprStmt):
            from_expr(stmt.expr)
        elif isinstance(stmt, A.ReturnStmt):
            from_expr(stmt.value)
        elif isinstance(stmt, A.IfStmt):
            from_expr(stmt.cond)
            _collect_accesses(stmt.then_body, sink)
            _collect_accesses(stmt.else_body, sink)
        elif isinstance(stmt, (A.RegionStmt, A.BlockStmt)):
            _collect_accesses(stmt.body, sink)
        # nested For/While bodies belong to their own lowering


def _global_scalar_reads(stmts: list[A.Stmt], symbols, sink: set[str]) -> None:
    """Global scalars read anywhere under ``stmts`` (descends everything)."""

    def from_expr(expr: A.Expr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, A.VarRef):
            info = symbols.globals.get(expr.name)
            if info is not None and not info.is_array:
                sink.add(expr.name)
        elif isinstance(expr, (A.Unary, A.Cast)):
            from_expr(expr.operand)
        elif isinstance(expr, (A.Binary, A.Logical)):
            from_expr(expr.left)
            from_expr(expr.right)
        elif isinstance(expr, A.ArrayRef):
            from_expr(expr.index)
        elif isinstance(expr, A.Call):
            for arg in expr.args:
                from_expr(arg)

    for stmt in stmts:
        if isinstance(stmt, A.AssignStmt):
            from_expr(stmt.value)
            if isinstance(stmt.target, A.ArrayRef):
                from_expr(stmt.target.index)
        elif isinstance(stmt, A.DeclStmt):
            from_expr(stmt.init)
        elif isinstance(stmt, A.ExprStmt):
            from_expr(stmt.expr)
        elif isinstance(stmt, A.ReturnStmt):
            from_expr(stmt.value)
        elif isinstance(stmt, A.IfStmt):
            from_expr(stmt.cond)
            _global_scalar_reads(stmt.then_body, symbols, sink)
            _global_scalar_reads(stmt.else_body, symbols, sink)
        elif isinstance(stmt, A.WhileStmt):
            from_expr(stmt.cond)
            _global_scalar_reads(stmt.body, symbols, sink)
        elif isinstance(stmt, A.ForStmt):
            for inner in ([stmt.init] if stmt.init else []) + (
                [stmt.update] if stmt.update else []
            ):
                _global_scalar_reads([inner], symbols, sink)
            from_expr(stmt.cond)
            _global_scalar_reads(stmt.body, symbols, sink)
        elif isinstance(stmt, (A.RegionStmt, A.BlockStmt)):
            _global_scalar_reads(stmt.body, symbols, sink)


class LoopLoweringMixin:
    """Canonical-for lowering; mixed into :class:`CodeGen`."""

    # ---- hooks the ISA back ends provide (beyond CodeGen's) ---------------

    def emit_group_init(self, reg: str, array: str, const_elems: int,
                        reg_elems: str | None) -> None:
        """reg = &array + (const_elems + [reg_elems]) * 8."""
        raise NotImplementedError

    def emit_bump(self, reg: str, byte_step: int) -> None:
        raise NotImplementedError

    # ---- access resolution used by gen_array_load/store --------------------

    def _reduced_access(self, expr: A.ArrayRef):
        """If ``expr`` belongs to the innermost plan's streams, return
        (group, displacement)."""
        if not self._loop_plans:
            return None
        plan = self._loop_plans[-1]
        banned = self._loop_banned[-1]
        match = match_access(expr.index, plan.iv_name, banned)
        if match is None:
            return None
        inv, const, scale = match
        key, disp, _style = self._group_key(expr.name, inv, const, scale)
        group = plan.groups.get(key)
        if group is None:
            return None
        return group, disp

    def _group_key(self, array: str, inv: A.Expr | None, const: int,
                   scale: int):
        """(key, displacement, style) for one access. See AccessGroup."""
        inv_key = None if inv is None else expr_key(inv)
        if inv is not None and inv_key is None:
            return ("__unreducible__",), 0, "ptr"
        if self.uses_pointer_bump() or scale != 1:
            # pointer stream with the constant as a load/store displacement
            return (array, inv_key, scale, "ptr"), const * ELEM, "ptr"
        # AArch64 unit-stride: register-offset with the constant folded into
        # an adjusted base
        return (array, inv_key, const, "regoff"), 0, "regoff"

    # ---- the lowering -------------------------------------------------------

    def gen_canonical_for(self, stmt: A.ForStmt) -> None:
        iv = stmt.iv_name
        step = stmt.iv_step
        assert iv is not None and step is not None

        banned = assigned_names(stmt.body)
        banned.add(iv)
        body_has_calls = contains_call(stmt.body)
        if body_has_calls:
            # calls may modify globals: treat all global scalars as assigned
            banned |= {
                name for name, info in self.symbols.globals.items()
                if not info.is_array
            }

        # -- IV binding and init ----------------------------------------------
        iv_is_decl = isinstance(stmt.init, A.DeclStmt)
        if iv_is_decl:
            binding = self._bind_var(iv, False, stmt.line)
        else:
            binding = self.bindings.get(iv)
            if binding is None:
                # IV is a global scalar: too exotic for the canonical path
                self.gen_generic_for(stmt)
                return
        if binding.kind != "reg":
            # no register for the IV: fall back to the generic lowering
            # (which re-binds the induction variable itself)
            if iv_is_decl:
                del self.bindings[iv]
            self.gen_generic_for(stmt)
            return
        iv_reg = binding.reg

        init_expr = stmt.init.init if iv_is_decl else stmt.init.value
        init_const = _const_value(init_expr)
        iv_init_deferred = False
        if init_const is not None and _const_value(stmt.cond.right) is not None:
            # defer: a pointer-exit loop never reads the IV register, so the
            # li would be dead there (decided below; safe because with both
            # ends constant no zero-trip guard reads the IV either)
            iv_init_deferred = True
        elif init_const is not None:
            self.emit_li(iv_reg, init_const)
        else:
            value = self.gen_expr(init_expr)
            if value.reg != iv_reg:
                self.emit_move(iv_reg, value.reg, False)
            self.release(value)

        # -- bound --------------------------------------------------------
        bound_expr = stmt.cond.right
        strict = stmt.cond.op == "<"
        bound_const = _const_value(bound_expr)
        if not strict and bound_const is not None:
            # normalize j <= C to j < C+1
            bound_const += 1
            strict = True
        plan = LoopPlan(iv_name=iv, iv_reg=iv_reg, step=step)
        released: list[tuple[str, bool]] = []

        if bound_const is None:
            reg = self.alloc_var_reg(False)
            if reg is None:
                raise CompilerError("register pressure: no bound register",
                                    stmt.line)
            bvalue = self.gen_expr(bound_expr)
            if not strict:
                # j <= e: bound = e + 1
                if not self.emit_binop_long_imm("+", reg, bvalue.reg, 1):
                    self.emit_li(reg, 1)
                    self.emit_binop_long("+", reg, bvalue.reg, reg)
                strict = True
            elif bvalue.reg != reg:
                self.emit_move(reg, bvalue.reg, False)
            self.release(bvalue)
            plan.bound_reg = reg
            released.append((reg, False))
        else:
            # constant bound: materialization decided after the exit
            # strategy is known (a pointer-exit loop never reads it)
            plan.bound_const = bound_const

        # -- zero-trip guard ------------------------------------------------
        exit_label = self.new_label("loopend")
        if init_const is not None and bound_const is not None:
            if init_const >= bound_const:
                # statically empty loop
                self.emit_label(exit_label)
                self._release_loop_regs(released, iv_is_decl, iv, binding)
                return
        else:
            self._emit_guard(plan, iv_reg, exit_label, stmt.line)

        # -- access grouping ----------------------------------------------
        accesses: list[A.ArrayRef] = []
        _collect_accesses(stmt.body, accesses)
        for access in accesses:
            match = match_access(access.index, iv, banned)
            if match is None:
                continue
            inv, const, scale = match
            key, disp, style = self._group_key(access.name, inv, const, scale)
            if key == ("__unreducible__",):
                continue
            group = plan.groups.get(key)
            if group is None:
                group = AccessGroup(
                    array=access.name,
                    inv_key=None if inv is None else expr_key(inv),
                    inv_expr=inv,
                    const_off=const if style == "regoff" else 0,
                    scale=scale,
                    style=style,
                )
                plan.groups[key] = group
            group.offsets.add(disp)

        # displacement sanity for pointer streams (immediate-offset ranges)
        for key in list(plan.groups):
            group = plan.groups[key]
            if group.style == "ptr" and any(
                not -2048 <= d < 2048 for d in group.offsets
            ):
                del plan.groups[key]

        # allocate stream registers, leaving headroom for LICM/CSE pinning.
        # Under the gcc12 profile, repeated non-invariant index expressions
        # in the body will want pin registers, so trade a couple of address
        # streams for them (newer GCC makes the same kind of call).
        spare = 2
        if self.cse.enabled:
            from repro.compiler.exprcache import count_repeated_keys, key_vars

            counts: dict[tuple, int] = {}
            count_repeated_keys(stmt.body, counts)
            # demand: repeated keys that are neither loop-invariant (LICM's
            # job) nor IV-indexed (strength reduction's job)
            pin_demand = sum(
                1 for key, n in counts.items()
                if n >= 2
                and (key_vars(key) & banned)
                and iv not in key_vars(key)
            )
            spare += min(pin_demand, 2)
        max_streams = self.profile.max_streams
        allocated = 0
        for key in list(plan.groups):
            if len(self.var_int_pool) <= spare or (
                max_streams is not None and allocated >= max_streams
            ):
                del plan.groups[key]
                continue
            reg = self.alloc_var_reg(False)
            plan.groups[key].reg = reg
            released.append((reg, False))
            allocated += 1

        # -- does the body still need the IV register? ------------------------
        reduced_indexes = {
            id(a.index) for a in accesses
            if self._reduced_for_plan(a, plan, banned)
        }
        iv_used_elsewhere = self._iv_used_outside(stmt.body, iv, reduced_indexes)

        # -- preheader: stream setup ---------------------------------------
        for group in plan.groups.values():
            inv_reg = None
            inv_value = None
            if group.inv_expr is not None:
                inv_value = self.gen_expr(group.inv_expr)
                inv_reg = inv_value.reg
            if group.style == "ptr":
                const_elems = (init_const or 0) * group.scale + group.const_off
                extra = iv_reg if init_const is None else None
                # pointer = &arr + (init*scale + inv)*8 (+ iv*scale*8 when
                # the initial IV value is not a compile-time constant)
                self._emit_stream_init(group.reg, group.array, const_elems,
                                       inv_reg, extra, group.scale)
            else:
                self._emit_stream_init(group.reg, group.array, group.const_off,
                                       inv_reg, None)
            if inv_value is not None:
                self.release(inv_value)

        # -- pointer exit (RISC-V shape) -----------------------------------
        use_pointer_exit = (
            self.uses_pointer_bump()
            and step == 1
            and strict
            and iv_is_decl
            and not iv_used_elsewhere
            and plan.groups
        )
        if use_pointer_exit:
            first_key = next(iter(plan.groups))
            test_group = plan.groups[first_key]
            end_reg = self.alloc_var_reg(False)
            if end_reg is None:
                use_pointer_exit = False
            else:
                released.append((end_reg, False))
                inv_reg = None
                inv_value = None
                if test_group.inv_expr is not None:
                    inv_value = self.gen_expr(test_group.inv_expr)
                    inv_reg = inv_value.reg
                if bound_const is not None:
                    self._emit_stream_init(
                        end_reg, test_group.array,
                        bound_const * test_group.scale, inv_reg, None,
                    )
                else:
                    self._emit_stream_init(
                        end_reg, test_group.array, 0, inv_reg,
                        plan.bound_reg, test_group.scale,
                    )
                if inv_value is not None:
                    self.release(inv_value)
                plan.end_ptr_reg = end_reg
                plan.test_group_reg = test_group.reg
                plan.iv_in_regs = False

        if iv_init_deferred and not (use_pointer_exit and iv_is_decl):
            self.emit_li(iv_reg, init_const)

        # -- constant bound: materialize now if the exit test wants a register
        if (
            plan.bound_const is not None
            and plan.end_ptr_reg is None
            and self._materialize_bound(plan.bound_const)
        ):
            reg = self.alloc_var_reg(False)
            if reg is None:
                raise CompilerError("register pressure: no bound register",
                                    stmt.line)
            self.emit_li(reg, plan.bound_const)
            plan.bound_reg = reg
            released.append((reg, False))

        # -- loop-invariant code motion -----------------------------------
        # Register-hungry hoists run only in innermost loops: registers
        # spent at an outer level starve the inner loops where instruction
        # counts actually multiply.
        innermost = not _body_has_loops(stmt.body)
        hoists = self._hoist_globals(stmt.body, banned, body_has_calls)
        fp_hoists = self._hoist_fp_consts(stmt.body) if innermost else []
        licm_hoists = (
            self._hoist_invariant_exprs(stmt.body, banned, reduced_indexes)
            if innermost else []
        )
        base_hoists = (
            self._hoist_array_bases(accesses, plan, banned)
            if innermost else []
        )

        # -- body ---------------------------------------------------------
        head = self.new_label("loop")
        cont = self.new_label("cont")
        self.cse_barrier()
        self.emit_label(head)
        self._loop_plans.append(plan)
        self._loop_banned.append(banned)
        self.loop_stack.append((cont, exit_label))
        self.gen_block(stmt.body)
        self.loop_stack.pop()
        self._loop_banned.pop()
        self._loop_plans.pop()
        self.emit_label(cont)
        self.cse_barrier()

        # -- bumps and exit test --------------------------------------------
        for group in plan.groups.values():
            if group.style == "ptr":
                self.emit_bump(group.reg, step * group.scale * ELEM)
        if not use_pointer_exit:
            ok = self.emit_binop_long_imm("+", iv_reg, iv_reg, step)
            if not ok:
                temp = self.int_temps.acquire(stmt.line)
                self.emit_li(temp, step)
                self.emit_binop_long("+", iv_reg, iv_reg, temp)
                self.int_temps.release(temp)
        self.loop_exit_test(plan, head, strict)
        self.emit_label(exit_label)
        self.cse_barrier()

        self._unhoist_array_bases(base_hoists)
        self._unhoist_invariant_exprs(licm_hoists)
        self._unhoist_fp_consts(fp_hoists)
        self._unhoist(hoists)
        self._release_loop_regs(released, iv_is_decl, iv, binding)

    # ---- helpers -----------------------------------------------------------

    def _materialize_bound(self, bound_const: int) -> bool:
        """Should a constant bound live in a register? RISC-V branches always
        need one; AArch64 answers per profile (the §3.3 idiom)."""
        raise NotImplementedError

    def _emit_guard(self, plan: LoopPlan, iv_reg: str, exit_label: str,
                    line: int) -> None:
        """Jump straight to exit when the loop would run zero times."""
        if plan.bound_reg is not None:
            self.emit_compare_branch(">=", iv_reg, plan.bound_reg, exit_label,
                                     False)
        else:
            temp = self.int_temps.acquire(line)
            self.emit_li(temp, plan.bound_const)
            self.emit_compare_branch(">=", iv_reg, temp, exit_label, False)
            self.int_temps.release(temp)

    def _emit_stream_init(self, reg: str, array: str, const_elems: int,
                          inv_reg: str | None, extra_reg: str | None,
                          extra_scale: int = 1) -> None:
        """reg = &array + (const_elems + inv_reg + extra_reg*extra_scale)*8."""
        self.emit_global_addr(reg, array)
        if inv_reg is not None:
            self.emit_shift_add(reg, inv_reg, 1)
        if extra_reg is not None:
            self.emit_shift_add(reg, extra_reg, extra_scale)
        if const_elems:
            if not self.emit_binop_long_imm("+", reg, reg, const_elems * ELEM):
                temp = self.int_temps.acquire(0)
                self.emit_li(temp, const_elems * ELEM)
                self.emit_binop_long("+", reg, reg, temp)
                self.int_temps.release(temp)

    def emit_shift_add(self, reg: str, index_reg: str, scale: int = 1) -> None:
        """reg += index_reg * 8 * scale (ISA hook)."""
        raise NotImplementedError

    def _reduced_for_plan(self, access: A.ArrayRef, plan: LoopPlan,
                          banned: set[str]) -> bool:
        match = match_access(access.index, plan.iv_name, banned)
        if match is None:
            return False
        inv, const, scale = match
        key, _disp, _style = self._group_key(access.name, inv, const, scale)
        return key in plan.groups

    def _iv_used_outside(self, stmts: list[A.Stmt], iv: str,
                         reduced_indexes: set[int]) -> bool:
        """Does the body read the IV other than inside reduced indexes?"""

        def expr_uses(expr: A.Expr | None) -> bool:
            if expr is None or id(expr) in reduced_indexes:
                return False
            if isinstance(expr, A.VarRef):
                return expr.name == iv
            if isinstance(expr, (A.Unary, A.Cast)):
                return expr_uses(expr.operand)
            if isinstance(expr, (A.Binary, A.Logical)):
                return expr_uses(expr.left) or expr_uses(expr.right)
            if isinstance(expr, A.ArrayRef):
                return expr_uses(expr.index)
            if isinstance(expr, A.Call):
                return any(expr_uses(a) for a in expr.args)
            return False

        def visit(stmt_list: list[A.Stmt]) -> bool:
            for stmt in stmt_list:
                if isinstance(stmt, A.AssignStmt):
                    if expr_uses(stmt.value):
                        return True
                    if isinstance(stmt.target, A.ArrayRef) and expr_uses(
                        stmt.target.index
                    ):
                        return True
                elif isinstance(stmt, A.DeclStmt) and expr_uses(stmt.init):
                    return True
                elif isinstance(stmt, A.ExprStmt) and expr_uses(stmt.expr):
                    return True
                elif isinstance(stmt, A.ReturnStmt) and expr_uses(stmt.value):
                    return True
                elif isinstance(stmt, A.IfStmt):
                    if expr_uses(stmt.cond) or visit(stmt.then_body) or visit(
                        stmt.else_body
                    ):
                        return True
                elif isinstance(stmt, A.WhileStmt):
                    if expr_uses(stmt.cond) or visit(stmt.body):
                        return True
                elif isinstance(stmt, A.ForStmt):
                    pieces = [stmt.init, stmt.update]
                    if expr_uses(stmt.cond) or visit([p for p in pieces if p]):
                        return True
                    if visit(stmt.body):
                        return True
                elif isinstance(stmt, (A.RegionStmt, A.BlockStmt)):
                    if visit(stmt.body):
                        return True
            return False

        return visit(stmts)

    def _hoist_globals(self, body: list[A.Stmt], banned: set[str],
                       body_has_calls: bool) -> list:
        """Load loop-invariant global scalars into registers for the body."""
        if body_has_calls:
            return []
        reads: set[str] = set()
        _global_scalar_reads(body, self.symbols, reads)
        hoists = []
        for name in sorted(reads):
            if name in banned or name in self.bindings:
                continue
            info = self.symbols.globals[name]
            is_fp = info.type == A.DOUBLE
            reg = self.alloc_var_reg(is_fp)
            if reg is None:
                continue
            addr_temp = self.int_temps.acquire(0) if is_fp else reg
            self.emit_load_global_scalar(reg, name, is_fp, addr_temp)
            if is_fp:
                self.int_temps.release(addr_temp)
            from repro.compiler.backend_base import Binding

            old = self.bindings.get(name)
            self.bindings[name] = Binding(kind="reg", reg=reg, is_fp=is_fp)
            hoists.append((name, old, reg, is_fp))
        return hoists

    def _hoist_fp_consts(self, body: list[A.Stmt]) -> list[tuple[int, str]]:
        """LICM for FP literals: materialize each distinct constant used in
        the loop body once, in the preheader (GCC keeps such constants in
        registers across the loop). Bounded by spare FP variable registers;
        constants an enclosing loop already hoisted are reused for free."""
        from repro.common import f64_to_bits

        values: dict[int, float] = {}

        def from_expr(expr: A.Expr | None) -> None:
            if expr is None:
                return
            if isinstance(expr, A.FloatLit):
                values.setdefault(f64_to_bits(expr.value), expr.value)
            elif isinstance(expr, (A.Unary, A.Cast)):
                from_expr(expr.operand)
            elif isinstance(expr, (A.Binary, A.Logical)):
                from_expr(expr.left)
                from_expr(expr.right)
            elif isinstance(expr, A.ArrayRef):
                from_expr(expr.index)
            elif isinstance(expr, A.Call):
                for arg in expr.args:
                    from_expr(arg)

        def visit(stmts: list[A.Stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, A.AssignStmt):
                    from_expr(stmt.value)
                    if isinstance(stmt.target, A.ArrayRef):
                        from_expr(stmt.target.index)
                elif isinstance(stmt, A.DeclStmt):
                    from_expr(stmt.init)
                elif isinstance(stmt, A.ExprStmt):
                    from_expr(stmt.expr)
                elif isinstance(stmt, A.ReturnStmt):
                    from_expr(stmt.value)
                elif isinstance(stmt, A.IfStmt):
                    from_expr(stmt.cond)
                    visit(stmt.then_body)
                    visit(stmt.else_body)
                elif isinstance(stmt, A.WhileStmt):
                    from_expr(stmt.cond)
                    visit(stmt.body)
                elif isinstance(stmt, A.ForStmt):
                    pieces = [p for p in (stmt.init, stmt.update) if p]
                    visit(pieces)
                    from_expr(stmt.cond)
                    visit(stmt.body)
                elif isinstance(stmt, (A.RegionStmt, A.BlockStmt)):
                    visit(stmt.body)

        visit(body)
        hoists: list[tuple[int, str]] = []
        for bits in sorted(values):
            if bits in self.fp_const_regs:
                continue  # an enclosing loop already hoisted it
            if len(self.var_fp_pool) <= 2:
                break
            reg = self.alloc_var_reg(True)
            if reg is None:
                break
            self.emit_fp_const(reg, values[bits])
            self.fp_const_regs[bits] = reg
            hoists.append((bits, reg))
        return hoists

    def _unhoist_fp_consts(self, hoists: list[tuple[int, str]]) -> None:
        for bits, reg in hoists:
            del self.fp_const_regs[bits]
            self.free_var_reg(reg, True)

    def _hoist_invariant_exprs(
        self, body: list[A.Stmt], banned: set[str],
        reduced_indexes: set[int] = frozenset(),
    ) -> list[tuple[tuple, str]]:
        """Classic LICM: compute loop-invariant integer expressions (index
        arithmetic like ``jj*nx``) once in the preheader. GCC does this at
        -O2 in every version, so it applies under both profiles.
        ``reduced_indexes`` are index expressions strength reduction already
        claimed — they are never evaluated, so hoisting their pieces would
        only waste registers and preheader work."""
        from repro.compiler.exprcache import expr_key, is_interesting

        candidates: dict[tuple, A.Expr] = {}

        def consider(expr: A.Expr | None) -> None:
            if expr is None or id(expr) in reduced_indexes:
                return
            if (
                isinstance(expr, A.Binary)
                and expr.type == A.LONG
                and is_interesting(expr)
                and _is_invariant(expr, banned)
            ):
                key = expr_key(expr)
                if key is not None:
                    candidates.setdefault(key, expr)
                    return  # maximal invariant subtree; don't descend
            if isinstance(expr, (A.Unary, A.Cast)):
                consider(expr.operand)
            elif isinstance(expr, (A.Binary, A.Logical)):
                consider(expr.left)
                consider(expr.right)
            elif isinstance(expr, A.ArrayRef):
                consider(expr.index)
            elif isinstance(expr, A.Call):
                for arg in expr.args:
                    consider(arg)

        def visit(stmts: list[A.Stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, A.AssignStmt):
                    consider(stmt.value)
                    if isinstance(stmt.target, A.ArrayRef):
                        consider(stmt.target.index)
                elif isinstance(stmt, A.DeclStmt):
                    consider(stmt.init)
                elif isinstance(stmt, A.ExprStmt):
                    consider(stmt.expr)
                elif isinstance(stmt, A.ReturnStmt):
                    consider(stmt.value)
                elif isinstance(stmt, A.IfStmt):
                    consider(stmt.cond)
                    visit(stmt.then_body)
                    visit(stmt.else_body)
                elif isinstance(stmt, A.WhileStmt):
                    consider(stmt.cond)
                    visit(stmt.body)
                elif isinstance(stmt, A.ForStmt):
                    visit([p for p in (stmt.init, stmt.update) if p])
                    consider(stmt.cond)
                    visit(stmt.body)
                elif isinstance(stmt, (A.RegionStmt, A.BlockStmt)):
                    visit(stmt.body)

        visit(body)
        hoists: list[tuple[tuple, str]] = []
        for key, expr in candidates.items():
            if key in self.licm_exprs:
                continue  # an enclosing loop already hoisted it
            if len(self.var_int_pool) <= 3:
                break
            value = self.gen_expr(expr)
            reg = self.alloc_var_reg(False)
            if reg is None:
                self.release(value)
                break
            if value.reg != reg:
                self.emit_move(reg, value.reg, False)
            self.release(value)
            self.licm_exprs[key] = reg
            hoists.append((key, reg))
        return hoists

    def _unhoist_invariant_exprs(self, hoists: list[tuple[tuple, str]]) -> None:
        for key, reg in hoists:
            del self.licm_exprs[key]
            self.free_var_reg(reg, False)

    def _hoist_array_bases(self, accesses: list[A.ArrayRef], plan: LoopPlan,
                           banned: set[str]) -> list[tuple[str, str]]:
        """Hoist &array for accesses left on the generic path (all compilers
        keep array base addresses in registers across loops)."""
        names: list[str] = []
        for access in accesses:
            if access.name in names or access.name in self.array_base_regs:
                continue
            if self._reduced_for_plan(access, plan, banned):
                continue
            names.append(access.name)
        hoists: list[tuple[str, str]] = []
        for name in names[:4]:
            # bounded: leave registers for inner loops' own streams/IVs
            if len(self.var_int_pool) <= 4:
                break
            reg = self.alloc_var_reg(False)
            if reg is None:
                break
            self.emit_global_addr(reg, name)
            self.array_base_regs[name] = reg
            hoists.append((name, reg))
        return hoists

    def _unhoist_array_bases(self, hoists: list[tuple[str, str]]) -> None:
        for name, reg in hoists:
            del self.array_base_regs[name]
            self.free_var_reg(reg, False)

    def _release_loop_regs(self, released, iv_is_decl: bool, iv: str,
                           binding) -> None:
        for reg, is_fp in released:
            self.free_var_reg(reg, is_fp)
        if iv_is_decl:
            del self.bindings[iv]
            if binding.kind == "reg":
                self.free_var_reg(binding.reg, False)
