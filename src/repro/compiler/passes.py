"""AST-level preparation passes run by the driver.

* :func:`fold_constants` — integer constant folding (so loop bounds written
  as expressions of literals reach the loop lowering as plain literals).
* :func:`hoist_calls` — rewrites nested non-builtin calls into preceding
  synthetic declarations, guaranteeing the back ends only ever see calls at
  statement root position (their temporaries never live across a call).
"""

from __future__ import annotations

import itertools

from repro.common import CompilerError
from repro.compiler import ast_nodes as A
from repro.compiler.sema import BUILTINS

# --------------------------------------------------------- constant folding

_INT_FOLD = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b if 0 <= b < 64 else None,
    ">>": lambda a, b: a >> b if 0 <= b < 64 else None,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
}


def _fold_expr(expr: A.Expr | None) -> A.Expr | None:
    if expr is None:
        return None
    if isinstance(expr, (A.Unary, A.Cast)):
        expr.operand = _fold_expr(expr.operand)
        if isinstance(expr, A.Unary) and isinstance(expr.operand, A.IntLit):
            value = expr.operand.value
            if expr.op == "-":
                return _int_lit(-value, expr)
            if expr.op == "~":
                return _int_lit(~value, expr)
            if expr.op == "!":
                return _int_lit(int(value == 0), expr)
        if isinstance(expr, A.Unary) and isinstance(expr.operand, A.FloatLit):
            if expr.op == "-":
                lit = A.FloatLit(line=expr.line, value=-expr.operand.value)
                lit.type = A.DOUBLE
                return lit
        if isinstance(expr, A.Cast) and expr.target == A.DOUBLE and isinstance(
            expr.operand, A.IntLit
        ):
            lit = A.FloatLit(line=expr.line, value=float(expr.operand.value))
            lit.type = A.DOUBLE
            return lit
        return expr
    if isinstance(expr, A.Binary):
        expr.left = _fold_expr(expr.left)
        expr.right = _fold_expr(expr.right)
        if (
            isinstance(expr.left, A.IntLit)
            and isinstance(expr.right, A.IntLit)
            and expr.op in _INT_FOLD
        ):
            result = _INT_FOLD[expr.op](expr.left.value, expr.right.value)
            if result is not None:
                return _int_lit(result, expr)
        if (
            expr.op in ("/", "%")
            and isinstance(expr.left, A.IntLit)
            and isinstance(expr.right, A.IntLit)
            and expr.right.value != 0
            and expr.type == A.LONG
        ):
            a, b = expr.left.value, expr.right.value
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            return _int_lit(q if expr.op == "/" else a - q * b, expr)
        return expr
    if isinstance(expr, A.Logical):
        expr.left = _fold_expr(expr.left)
        expr.right = _fold_expr(expr.right)
        return expr
    if isinstance(expr, A.ArrayRef):
        expr.index = _fold_expr(expr.index)
        return expr
    if isinstance(expr, A.Call):
        expr.args = [_fold_expr(arg) for arg in expr.args]
        return expr
    return expr


def _int_lit(value: int, template: A.Expr) -> A.IntLit:
    lit = A.IntLit(line=template.line, value=value)
    lit.type = A.LONG
    return lit


def _fold_stmts(stmts: list[A.Stmt]) -> None:
    for stmt in stmts:
        if isinstance(stmt, A.AssignStmt):
            stmt.value = _fold_expr(stmt.value)
            if isinstance(stmt.target, A.ArrayRef):
                stmt.target.index = _fold_expr(stmt.target.index)
        elif isinstance(stmt, A.DeclStmt):
            stmt.init = _fold_expr(stmt.init)
        elif isinstance(stmt, A.ExprStmt):
            stmt.expr = _fold_expr(stmt.expr)
        elif isinstance(stmt, A.ReturnStmt):
            stmt.value = _fold_expr(stmt.value)
        elif isinstance(stmt, A.IfStmt):
            stmt.cond = _fold_expr(stmt.cond)
            _fold_stmts(stmt.then_body)
            _fold_stmts(stmt.else_body)
        elif isinstance(stmt, A.WhileStmt):
            stmt.cond = _fold_expr(stmt.cond)
            _fold_stmts(stmt.body)
        elif isinstance(stmt, A.ForStmt):
            _fold_stmts([stmt.init])
            stmt.cond = _fold_expr(stmt.cond)
            _fold_stmts([stmt.update])
            _fold_stmts(stmt.body)
        elif isinstance(stmt, (A.RegionStmt, A.BlockStmt)):
            _fold_stmts(stmt.body)


def fold_constants(program: A.Program) -> None:
    """Fold integer literal arithmetic throughout ``program`` (in place)."""
    for func in program.functions:
        _fold_stmts(func.body)


# ------------------------------------------------------------- call hoisting

class _CallHoister:
    def __init__(self):
        self.counter = itertools.count()

    def rewrite_block(self, stmts: list[A.Stmt]) -> list[A.Stmt]:
        out: list[A.Stmt] = []
        for stmt in stmts:
            sink: list[A.Stmt] = []
            self._rewrite_stmt(stmt, sink)
            out.extend(sink)
            out.append(stmt)
        return out

    def _rewrite_stmt(self, stmt: A.Stmt, sink: list[A.Stmt]) -> None:
        if isinstance(stmt, A.AssignStmt):
            stmt.value = self._rewrite(stmt.value, sink, allow_root=True)
            if isinstance(stmt.target, A.ArrayRef):
                stmt.target.index = self._rewrite(stmt.target.index, sink, False)
        elif isinstance(stmt, A.DeclStmt):
            stmt.init = self._rewrite(stmt.init, sink, allow_root=True)
        elif isinstance(stmt, A.ExprStmt):
            stmt.expr = self._rewrite(stmt.expr, sink, allow_root=True)
        elif isinstance(stmt, A.ReturnStmt):
            stmt.value = self._rewrite(stmt.value, sink, allow_root=True)
        elif isinstance(stmt, A.IfStmt):
            stmt.cond = self._rewrite(stmt.cond, sink, allow_root=False)
            stmt.then_body = self.rewrite_block(stmt.then_body)
            stmt.else_body = self.rewrite_block(stmt.else_body)
        elif isinstance(stmt, A.WhileStmt):
            if _has_call(stmt.cond):
                raise CompilerError(
                    "calls in while-conditions are not supported; assign the "
                    "result to a variable first", stmt.line,
                )
            stmt.body = self.rewrite_block(stmt.body)
        elif isinstance(stmt, A.ForStmt):
            if _has_call(stmt.cond):
                raise CompilerError(
                    "calls in for-conditions are not supported", stmt.line
                )
            init_sink: list[A.Stmt] = []
            self._rewrite_stmt(stmt.init, init_sink)
            if init_sink:
                raise CompilerError(
                    "calls in for-initializers are not supported", stmt.line
                )
            stmt.body = self.rewrite_block(stmt.body)
        elif isinstance(stmt, (A.RegionStmt, A.BlockStmt)):
            stmt.body = self.rewrite_block(stmt.body)

    def _rewrite(self, expr: A.Expr | None, sink: list[A.Stmt],
                 allow_root: bool) -> A.Expr | None:
        if expr is None:
            return None
        if isinstance(expr, A.Call) and expr.name not in BUILTINS:
            expr.args = [self._rewrite(arg, sink, False) for arg in expr.args]
            if allow_root:
                return expr
            name = f"__call{next(self.counter)}"
            decl = A.DeclStmt(line=expr.line, var_type=expr.type, name=name,
                              init=expr)
            sink.append(decl)
            ref = A.VarRef(line=expr.line, name=name)
            ref.type = expr.type
            return ref
        if isinstance(expr, A.Call):
            expr.args = [self._rewrite(arg, sink, False) for arg in expr.args]
            return expr
        if isinstance(expr, (A.Unary, A.Cast)):
            expr.operand = self._rewrite(expr.operand, sink, False)
            return expr
        if isinstance(expr, (A.Binary, A.Logical)):
            expr.left = self._rewrite(expr.left, sink, False)
            expr.right = self._rewrite(expr.right, sink, False)
            return expr
        if isinstance(expr, A.ArrayRef):
            expr.index = self._rewrite(expr.index, sink, False)
            return expr
        return expr


def _has_call(expr: A.Expr | None) -> bool:
    if expr is None:
        return False
    if isinstance(expr, A.Call) and expr.name not in BUILTINS:
        return True
    if isinstance(expr, A.Call):
        return any(_has_call(a) for a in expr.args)
    if isinstance(expr, (A.Unary, A.Cast)):
        return _has_call(expr.operand)
    if isinstance(expr, (A.Binary, A.Logical)):
        return _has_call(expr.left) or _has_call(expr.right)
    if isinstance(expr, A.ArrayRef):
        return _has_call(expr.index)
    return False


def hoist_calls(program: A.Program) -> None:
    """Rewrite nested calls into preceding declarations (in place).

    After this pass, non-builtin calls appear only as the root expression of
    a declaration initializer, assignment value, return value, or expression
    statement. Synthetic locals keep call results in callee-saved homes so
    no expression temporary ever lives across a call.
    """
    hoister = _CallHoister()
    for func in program.functions:
        func.body = hoister.rewrite_block(func.body)
