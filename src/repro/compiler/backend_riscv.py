"""kernelc RV64G back end.

Embodies the RISC-V side of the paper's comparison: immediate-offset
loads/stores with per-array pointer bumping, fused compare-and-branch
(one instruction per conditional branch — no flags register), and the
Listing 2 loop shape (``fld``/``fsd``/``add``/``add``/``bne``).
"""

from __future__ import annotations

from repro.common import CompilerError, fits_signed, is_power_of_two
from repro.compiler.backend_base import CodeGen, ELEM_SIZE
from repro.compiler.loops import LoopPlan


class RiscvCodeGen(CodeGen):
    isa_name = "rv64"

    INT_TEMPS = ["t0", "t1", "t2", "t3", "t4", "t5", "t6"]
    FP_TEMPS = ["ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7"]
    INT_VARS = ["s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
                "s10", "s11"]
    FP_VARS = ["fs0", "fs1", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8",
               "fs9", "fs10", "fs11"]
    INT_VARS_LEAF_BONUS = ["a2", "a3", "a4", "a5", "a6", "a7"]
    FP_VARS_LEAF_BONUS = ["ft8", "ft9", "ft10", "ft11", "fa2", "fa3", "fa4",
                          "fa5", "fa6", "fa7"]
    ARG_REGS = ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"]
    FP_ARG_REGS = ["fa0", "fa1", "fa2", "fa3", "fa4", "fa5", "fa6", "fa7"]
    RET_REG = "a0"
    FP_RET_REG = "fa0"

    _CALLEE_SAVED = set(INT_VARS) | set(FP_VARS)

    # ------------------------------------------------------------- structure

    def gen_startup(self) -> None:
        self.emit_label("_start")
        self.emit("call main")
        self.emit("li a7, 93")
        self.emit("ecall")

    def emit_prologue_epilogue(self, body: list[str]) -> list[str]:
        saved = sorted(reg for reg in self.used_var_regs
                       if reg in self._CALLEE_SAVED)
        leaf = not any(" call " in line or line.strip().startswith("call ")
                       for line in body)
        save_ra = not leaf
        slot_bytes = self.stack_slots * ELEM_SIZE
        save_bytes = (len(saved) + (1 if save_ra else 0)) * 8
        frame = slot_bytes + save_bytes
        frame = (frame + 15) & ~15
        out: list[str] = []
        if frame:
            out.append(f"    addi sp, sp, -{frame}")
        offset = slot_bytes
        restores: list[str] = []
        for reg in saved:
            op_s, op_l = ("fsd", "fld") if reg.startswith("f") else ("sd", "ld")
            out.append(f"    {op_s} {reg}, {offset}(sp)")
            restores.append(f"    {op_l} {reg}, {offset}(sp)")
            offset += 8
        if save_ra:
            out.append(f"    sd ra, {offset}(sp)")
            restores.append(f"    ld ra, {offset}(sp)")
        out.extend(body)
        out.extend(restores)
        if frame:
            out.append(f"    addi sp, sp, {frame}")
        out.append("    ret")
        return out

    # --------------------------------------------------------------- scalars

    def emit_li(self, reg: str, value: int) -> None:
        self.emit(f"li {reg}, {value}")

    def emit_fp_const(self, reg: str, value: float) -> None:
        if value == 0.0 and not str(value).startswith("-"):
            self.emit(f"fmv.d.x {reg}, zero")
            return
        label = self.fp_const_label(value)
        temp = self.int_temps.acquire(0)
        self.emit(f"la {temp}, {label}")
        self.emit(f"fld {reg}, 0({temp})")
        self.int_temps.release(temp)

    def emit_move(self, dst: str, src: str, is_fp: bool) -> None:
        if dst == src:
            return
        self.emit(f"fmv.d {dst}, {src}" if is_fp else f"mv {dst}, {src}")

    def emit_global_addr(self, reg: str, symbol: str) -> None:
        self.emit(f"la {reg}, {symbol}")

    def emit_load_global_scalar(self, dst, symbol, is_fp, addr_temp) -> None:
        self.emit(f"la {addr_temp}, {symbol}")
        self.emit(f"fld {dst}, 0({addr_temp})" if is_fp else f"ld {dst}, 0({addr_temp})")

    def emit_store_global_scalar(self, src, symbol, is_fp, addr_temp) -> None:
        self.emit(f"la {addr_temp}, {symbol}")
        self.emit(f"fsd {src}, 0({addr_temp})" if is_fp else f"sd {src}, 0({addr_temp})")

    # ------------------------------------------------------------ arithmetic

    _LONG_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
                 "&": "and", "|": "or", "^": "xor", "<<": "sll", ">>": "sra"}

    def emit_binop_long(self, op, dst, a, b) -> None:
        self.emit(f"{self._LONG_OPS[op]} {dst}, {a}, {b}")

    def emit_binop_long_imm(self, op, dst, a, imm) -> bool:
        if op == "+" and fits_signed(imm, 12):
            self.emit(f"addi {dst}, {a}, {imm}")
            return True
        if op == "-" and fits_signed(-imm, 12):
            self.emit(f"addi {dst}, {a}, {-imm}")
            return True
        if op in ("&", "|", "^") and fits_signed(imm, 12):
            name = {"&": "andi", "|": "ori", "^": "xori"}[op]
            self.emit(f"{name} {dst}, {a}, {imm}")
            return True
        if op == "<<" and 0 <= imm < 64:
            self.emit(f"slli {dst}, {a}, {imm}")
            return True
        if op == ">>" and 0 <= imm < 64:
            self.emit(f"srai {dst}, {a}, {imm}")
            return True
        if op == "*" and is_power_of_two(imm):
            self.emit(f"slli {dst}, {a}, {imm.bit_length() - 1}")
            return True
        return False

    _FP_OPS = {"+": "fadd.d", "-": "fsub.d", "*": "fmul.d", "/": "fdiv.d"}

    def emit_binop_double(self, op, dst, a, b) -> None:
        self.emit(f"{self._FP_OPS[op]} {dst}, {a}, {b}")

    def emit_neg(self, dst, src, is_fp) -> None:
        self.emit(f"fneg.d {dst}, {src}" if is_fp else f"neg {dst}, {src}")

    def emit_not(self, dst, src) -> None:
        self.emit(f"seqz {dst}, {src}")

    def emit_bitnot(self, dst, src) -> None:
        self.emit(f"not {dst}, {src}")

    # ----------------------------------------------------------- comparisons

    def emit_compare_value(self, op, dst, a, b, is_fp) -> None:
        if is_fp:
            if op == "<":
                self.emit(f"flt.d {dst}, {a}, {b}")
            elif op == "<=":
                self.emit(f"fle.d {dst}, {a}, {b}")
            elif op == ">":
                self.emit(f"flt.d {dst}, {b}, {a}")
            elif op == ">=":
                self.emit(f"fle.d {dst}, {b}, {a}")
            elif op == "==":
                self.emit(f"feq.d {dst}, {a}, {b}")
            else:
                self.emit(f"feq.d {dst}, {a}, {b}")
                self.emit(f"xori {dst}, {dst}, 1")
            return
        if op == "<":
            self.emit(f"slt {dst}, {a}, {b}")
        elif op == ">":
            self.emit(f"slt {dst}, {b}, {a}")
        elif op == "<=":
            self.emit(f"slt {dst}, {b}, {a}")
            self.emit(f"xori {dst}, {dst}, 1")
        elif op == ">=":
            self.emit(f"slt {dst}, {a}, {b}")
            self.emit(f"xori {dst}, {dst}, 1")
        elif op == "==":
            self.emit(f"xor {dst}, {a}, {b}")
            self.emit(f"seqz {dst}, {dst}")
        else:
            self.emit(f"xor {dst}, {a}, {b}")
            self.emit(f"snez {dst}, {dst}")

    _BRANCHES = {"<": "blt", ">": "bgt", "<=": "ble", ">=": "bge",
                 "==": "beq", "!=": "bne"}

    def emit_compare_branch(self, op, a, b, target, is_fp, fp_temp=None) -> None:
        if is_fp:
            assert fp_temp is not None
            if op == "<":
                self.emit(f"flt.d {fp_temp}, {a}, {b}")
            elif op == "<=":
                self.emit(f"fle.d {fp_temp}, {a}, {b}")
            elif op == ">":
                self.emit(f"flt.d {fp_temp}, {b}, {a}")
            elif op == ">=":
                self.emit(f"fle.d {fp_temp}, {b}, {a}")
            elif op == "==":
                self.emit(f"feq.d {fp_temp}, {a}, {b}")
            else:
                self.emit(f"feq.d {fp_temp}, {a}, {b}")
                self.emit(f"beqz {fp_temp}, {target}")
                return
            self.emit(f"bnez {fp_temp}, {target}")
            return
        self.emit(f"{self._BRANCHES[op]} {a}, {b}, {target}")

    def emit_branch_zero(self, reg, target, if_zero) -> None:
        self.emit(f"beqz {reg}, {target}" if if_zero else f"bnez {reg}, {target}")

    def emit_jump(self, target) -> None:
        self.emit(f"j {target}")

    def emit_call(self, name) -> None:
        self.emit(f"call {name}")

    # ------------------------------------------------------------- converts

    def emit_cast_long_to_double(self, dst, src) -> None:
        self.emit(f"fcvt.d.l {dst}, {src}")

    def emit_cast_double_to_long(self, dst, src) -> None:
        self.emit(f"fcvt.l.d {dst}, {src}")

    _BUILTIN_OPS = {"sqrt": "fsqrt.d", "fabs": "fabs.d",
                    "fmin": "fmin.d", "fmax": "fmax.d"}

    def emit_builtin(self, name, dst, args) -> None:
        op = self._BUILTIN_OPS[name]
        self.emit(f"{op} {dst}, {', '.join(args)}")

    # ---------------------------------------------------------------- memory

    def emit_load_slot(self, dst, offset, is_fp) -> None:
        op = "fld" if is_fp else "ld"
        self.emit(f"{op} {dst}, {offset}(sp)")

    def emit_store_slot(self, src, offset, is_fp) -> None:
        op = "fsd" if is_fp else "sd"
        self.emit(f"{op} {src}, {offset}(sp)")

    def emit_load_indexed(self, dst, base, index, disp, is_fp, temp) -> None:
        # generic (non-strength-reduced) element access: 3 instructions on
        # plain rv64g, 2 with Zba's fused shift-add (the gcc12-zba ablation)
        if is_fp:
            addr = self.int_temps.acquire(0)
            if self.profile.rv_zba:
                self.emit(f"sh3add {addr}, {index}, {base}")
            else:
                self.emit(f"slli {addr}, {index}, 3")
                self.emit(f"add {addr}, {addr}, {base}")
            self.emit(f"fld {dst}, {disp}({addr})")
            self.int_temps.release(addr)
        else:
            if self.profile.rv_zba:
                self.emit(f"sh3add {dst}, {index}, {base}")
            else:
                self.emit(f"slli {dst}, {index}, 3")
                self.emit(f"add {dst}, {dst}, {base}")
            self.emit(f"ld {dst}, {disp}({dst})")

    def emit_store_indexed(self, src, base, index, disp, is_fp, temp) -> None:
        addr = temp if temp is not None else self.int_temps.acquire(0)
        if self.profile.rv_zba:
            self.emit(f"sh3add {addr}, {index}, {base}")
        else:
            self.emit(f"slli {addr}, {index}, 3")
            self.emit(f"add {addr}, {addr}, {base}")
        self.emit(f"{'fsd' if is_fp else 'sd'} {src}, {disp}({addr})")
        if temp is None:
            self.int_temps.release(addr)

    def emit_load_pointer(self, dst, pointer, disp, is_fp) -> None:
        self.emit(f"{'fld' if is_fp else 'ld'} {dst}, {disp}({pointer})")

    def emit_store_pointer(self, src, pointer, disp, is_fp) -> None:
        self.emit(f"{'fsd' if is_fp else 'sd'} {src}, {disp}({pointer})")

    # ------------------------------------------------------------------ loops

    def uses_pointer_bump(self) -> bool:
        return True

    def _materialize_bound(self, bound_const: int) -> bool:
        return True  # fused branches always read two registers

    def emit_shift_add(self, reg, index_reg, scale: int = 1) -> None:
        if self.profile.rv_zba and scale == 1:
            self.emit(f"sh3add {reg}, {index_reg}, {reg}")
            return
        temp = self.int_temps.acquire(0)
        factor = 8 * scale
        if is_power_of_two(factor):
            self.emit(f"slli {temp}, {index_reg}, {factor.bit_length() - 1}")
        else:
            self.emit(f"li {temp}, {factor}")
            self.emit(f"mul {temp}, {temp}, {index_reg}")
        self.emit(f"add {reg}, {reg}, {temp}")
        self.int_temps.release(temp)

    def emit_bump(self, reg, byte_step) -> None:
        self.emit(f"addi {reg}, {reg}, {byte_step}")

    def loop_exit_test(self, plan: LoopPlan, loop_label: str, strict: bool) -> None:
        if plan.end_ptr_reg is not None:
            # Listing 2 shape: pointer vs end pointer, fused branch
            self.emit(f"bne {plan.test_group_reg}, {plan.end_ptr_reg}, {loop_label}")
            return
        if plan.bound_reg is None:
            raise CompilerError("internal: RISC-V loop without bound register")
        if plan.step == 1 and strict:
            self.emit(f"bne {plan.iv_reg}, {plan.bound_reg}, {loop_label}")
        else:
            self.emit(f"blt {plan.iv_reg}, {plan.bound_reg}, {loop_label}")
