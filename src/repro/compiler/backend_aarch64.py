"""kernelc AArch64 (armv8-a+nosimd) back end.

Embodies the Arm side of the paper's comparison: register-offset
loads/stores with an ``lsl #3`` folded into the address (one instruction
where RISC-V needs shift+add+load on the generic path), the Listing 1 loop
shape (``ldr``/``str``/``add``/``cmp``/``b.ne``), NZCV-setting compares
before every conditional branch, and — under the ``gcc9`` profile — the
paper's observed ``sub``/``subs`` loop-bound re-materialization pair.
"""

from __future__ import annotations

from repro.common import CompilerError, EncodingError, is_power_of_two
from repro.compiler.backend_base import CodeGen, ELEM_SIZE
from repro.compiler.loops import LoopPlan
from repro.isa.aarch64.encoding import vfp_encode_imm8
from repro.isa.aarch64.logical_imm import is_bitmask_immediate


class AArch64CodeGen(CodeGen):
    isa_name = "aarch64"

    INT_TEMPS = ["x9", "x10", "x11", "x12", "x13", "x14", "x15"]
    FP_TEMPS = ["d16", "d17", "d18", "d19", "d20", "d21", "d22", "d23"]
    INT_VARS = ["x19", "x20", "x21", "x22", "x23", "x24", "x25", "x26",
                "x27", "x28"]
    FP_VARS = ["d8", "d9", "d10", "d11", "d12", "d13", "d14", "d15"]
    INT_VARS_LEAF_BONUS = ["x2", "x3", "x4", "x5", "x6", "x7", "x16", "x17"]
    FP_VARS_LEAF_BONUS = ["d24", "d25", "d26", "d27", "d28", "d29", "d30",
                          "d31", "d2", "d3", "d4", "d5", "d6", "d7"]
    ARG_REGS = ["x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7"]
    FP_ARG_REGS = ["d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7"]
    RET_REG = "x0"
    FP_RET_REG = "d0"

    _CALLEE_SAVED = set(INT_VARS) | set(FP_VARS)

    # ------------------------------------------------------------- structure

    def gen_startup(self) -> None:
        self.emit_label("_start")
        self.emit("bl main")
        self.emit("mov x8, #93")
        self.emit("svc #0")

    def emit_prologue_epilogue(self, body: list[str]) -> list[str]:
        saved = sorted(reg for reg in self.used_var_regs
                       if reg in self._CALLEE_SAVED)
        leaf = not any(line.strip().startswith("bl ") for line in body)
        save_lr = not leaf
        slot_bytes = self.stack_slots * ELEM_SIZE
        save_bytes = (len(saved) + (1 if save_lr else 0)) * 8
        frame = slot_bytes + save_bytes
        frame = (frame + 15) & ~15
        out: list[str] = []
        if frame:
            out.append(f"    sub sp, sp, #{frame}")
        offset = slot_bytes
        restores: list[str] = []
        # pair adjacent saves with stp/ldp where possible (GCC style)
        to_save = saved + (["x30"] if save_lr else [])
        index = 0
        while index < len(to_save):
            a = to_save[index]
            b = to_save[index + 1] if index + 1 < len(to_save) else None
            if b is not None and a[0] == b[0]:
                out.append(f"    stp {a}, {b}, [sp, #{offset}]")
                restores.append(f"    ldp {a}, {b}, [sp, #{offset}]")
                offset += 16
                index += 2
            else:
                op_s, op_l = ("str", "ldr")
                out.append(f"    {op_s} {a}, [sp, #{offset}]")
                restores.append(f"    {op_l} {a}, [sp, #{offset}]")
                offset += 8
                index += 1
        out.extend(body)
        out.extend(restores)
        if frame:
            out.append(f"    add sp, sp, #{frame}")
        out.append("    ret")
        return out

    # --------------------------------------------------------------- scalars

    def emit_li(self, reg: str, value: int) -> None:
        if 0 <= value < 65536:
            self.emit(f"mov {reg}, #{value}")
        elif -65536 <= value < 0:
            self.emit(f"mov {reg}, #{value}")
        else:
            self.emit(f"movl {reg}, #{value}")

    def emit_fp_const(self, reg: str, value: float) -> None:
        if value == 0.0 and not str(value).startswith("-"):
            # the single NEON instruction the paper notes is unavoidable
            self.emit(f"movi {reg}, #0")
            return
        try:
            vfp_encode_imm8(value)
            self.emit(f"fmov {reg}, #{value!r}")
            return
        except EncodingError:
            pass
        label = self.fp_const_label(value)
        temp = self.int_temps.acquire(0)
        self.emit(f"adrl {temp}, {label}")
        self.emit(f"ldr {reg}, [{temp}]")
        self.int_temps.release(temp)

    def emit_move(self, dst: str, src: str, is_fp: bool) -> None:
        if dst == src:
            return
        self.emit(f"fmov {dst}, {src}" if is_fp else f"mov {dst}, {src}")

    def emit_global_addr(self, reg: str, symbol: str) -> None:
        self.emit(f"adrl {reg}, {symbol}")

    def emit_load_global_scalar(self, dst, symbol, is_fp, addr_temp) -> None:
        self.emit(f"adrl {addr_temp}, {symbol}")
        self.emit(f"ldr {dst}, [{addr_temp}]")

    def emit_store_global_scalar(self, src, symbol, is_fp, addr_temp) -> None:
        self.emit(f"adrl {addr_temp}, {symbol}")
        self.emit(f"str {src}, [{addr_temp}]")

    # ------------------------------------------------------------ arithmetic

    def emit_binop_long(self, op, dst, a, b) -> None:
        if op == "%":
            temp = self.int_temps.acquire(0)
            self.emit(f"sdiv {temp}, {a}, {b}")
            self.emit(f"msub {dst}, {temp}, {b}, {a}")
            self.int_temps.release(temp)
            return
        name = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "&": "and",
                "|": "orr", "^": "eor", "<<": "lsl", ">>": "asr"}[op]
        self.emit(f"{name} {dst}, {a}, {b}")

    def emit_binop_long_imm(self, op, dst, a, imm) -> bool:
        if op in ("+", "-"):
            value = imm if op == "+" else -imm
            magnitude = abs(value)
            name = "add" if value >= 0 else "sub"
            if magnitude < (1 << 12):
                self.emit(f"{name} {dst}, {a}, #{magnitude}")
                return True
            if magnitude % (1 << 12) == 0 and (magnitude >> 12) < (1 << 12):
                self.emit(f"{name} {dst}, {a}, #{magnitude >> 12}, lsl #12")
                return True
            return False
        if op in ("&", "|", "^"):
            if is_bitmask_immediate(imm, 64):
                name = {"&": "and", "|": "orr", "^": "eor"}[op]
                self.emit(f"{name} {dst}, {a}, #{imm}")
                return True
            return False
        if op == "<<" and 0 <= imm < 64:
            self.emit(f"lsl {dst}, {a}, #{imm}")
            return True
        if op == ">>" and 0 <= imm < 64:
            self.emit(f"asr {dst}, {a}, #{imm}")
            return True
        if op == "*" and is_power_of_two(imm):
            self.emit(f"lsl {dst}, {a}, #{imm.bit_length() - 1}")
            return True
        return False

    _FP_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

    def emit_binop_double(self, op, dst, a, b) -> None:
        self.emit(f"{self._FP_OPS[op]} {dst}, {a}, {b}")

    def emit_neg(self, dst, src, is_fp) -> None:
        self.emit(f"fneg {dst}, {src}" if is_fp else f"neg {dst}, {src}")

    def emit_not(self, dst, src) -> None:
        self.emit(f"cmp {src}, #0")
        self.emit(f"cset {dst}, eq")

    def emit_bitnot(self, dst, src) -> None:
        self.emit(f"mvn {dst}, {src}")

    # ----------------------------------------------------------- comparisons

    _INT_CONDS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge",
                  "==": "eq", "!=": "ne"}
    _FP_CONDS = {"<": "mi", "<=": "ls", ">": "gt", ">=": "ge",
                 "==": "eq", "!=": "ne"}

    def emit_compare_value(self, op, dst, a, b, is_fp) -> None:
        if is_fp:
            self.emit(f"fcmp {a}, {b}")
            self.emit(f"cset {dst}, {self._FP_CONDS[op]}")
        else:
            self.emit(f"cmp {a}, {b}")
            self.emit(f"cset {dst}, {self._INT_CONDS[op]}")

    def emit_compare_branch(self, op, a, b, target, is_fp, fp_temp=None) -> None:
        if is_fp:
            self.emit(f"fcmp {a}, {b}")
            self.emit(f"b.{self._FP_CONDS[op]} {target}")
        else:
            self.emit(f"cmp {a}, {b}")
            self.emit(f"b.{self._INT_CONDS[op]} {target}")

    def emit_branch_zero(self, reg, target, if_zero) -> None:
        self.emit(f"cbz {reg}, {target}" if if_zero else f"cbnz {reg}, {target}")

    def emit_jump(self, target) -> None:
        self.emit(f"b {target}")

    def emit_call(self, name) -> None:
        self.emit(f"bl {name}")

    # ------------------------------------------------------------- converts

    def emit_cast_long_to_double(self, dst, src) -> None:
        self.emit(f"scvtf {dst}, {src}")

    def emit_cast_double_to_long(self, dst, src) -> None:
        self.emit(f"fcvtzs {dst}, {src}")

    _BUILTIN_OPS = {"sqrt": "fsqrt", "fabs": "fabs",
                    "fmin": "fminnm", "fmax": "fmaxnm"}

    def emit_builtin(self, name, dst, args) -> None:
        self.emit(f"{self._BUILTIN_OPS[name]} {dst}, {', '.join(args)}")

    # ---------------------------------------------------------------- memory

    def emit_load_slot(self, dst, offset, is_fp) -> None:
        self.emit(f"ldr {dst}, [sp, #{offset}]")

    def emit_store_slot(self, src, offset, is_fp) -> None:
        self.emit(f"str {src}, [sp, #{offset}]")

    def emit_load_indexed(self, dst, base, index, disp, is_fp, temp) -> None:
        # §3.3: register-offset load with the shift folded in — one instruction
        if disp:
            raise CompilerError("internal: displacement on register-offset form")
        self.emit(f"ldr {dst}, [{base}, {index}, lsl #3]")

    def emit_store_indexed(self, src, base, index, disp, is_fp, temp) -> None:
        if disp:
            raise CompilerError("internal: displacement on register-offset form")
        self.emit(f"str {src}, [{base}, {index}, lsl #3]")

    def emit_load_pointer(self, dst, pointer, disp, is_fp) -> None:
        # immediate-offset form, used for strided record/AoS streams
        self.emit(f"ldr {dst}, [{pointer}, #{disp}]")

    def emit_store_pointer(self, src, pointer, disp, is_fp) -> None:
        self.emit(f"str {src}, [{pointer}, #{disp}]")

    # ------------------------------------------------------------------ loops

    def uses_pointer_bump(self) -> bool:
        return False

    def _materialize_bound(self, bound_const: int) -> bool:
        # small bounds: cmp #imm either way; big bounds: gcc12 hoists into a
        # register, gcc9 re-materializes with sub/subs at the exit test
        if bound_const < (1 << 12):
            return False
        return self.profile.hoist_const_bounds

    def emit_shift_add(self, reg, index_reg, scale: int = 1) -> None:
        factor = 8 * scale
        if is_power_of_two(factor):
            self.emit(f"add {reg}, {reg}, {index_reg}, lsl #{factor.bit_length() - 1}")
        else:
            temp = self.int_temps.acquire(0)
            self.emit(f"mov {temp}, #{factor}")
            self.emit(f"madd {reg}, {temp}, {index_reg}, {reg}")
            self.int_temps.release(temp)

    def emit_bump(self, reg, byte_step) -> None:
        self.emit(f"add {reg}, {reg}, #{byte_step}")

    def loop_exit_test(self, plan: LoopPlan, loop_label: str, strict: bool) -> None:
        cond = "ne" if (plan.step == 1 and strict) else "lt"
        if plan.bound_reg is not None:
            self.emit(f"cmp {plan.iv_reg}, {plan.bound_reg}")
        elif plan.bound_const is not None and plan.bound_const < (1 << 12):
            self.emit(f"cmp {plan.iv_reg}, #{plan.bound_const}")
        else:
            # the GCC 9.2 idiom the paper reports for STREAM (§3.3):
            #   sub x1, x0, #hi, lsl #12 ; subs x1, x1, #lo
            hi = plan.bound_const >> 12
            lo = plan.bound_const & 0xFFF
            temp = self.int_temps.acquire(0)
            if hi >= (1 << 12):
                raise CompilerError(
                    f"loop bound {plan.bound_const} too large for sub/subs"
                )
            self.emit(f"sub {temp}, {plan.iv_reg}, #{hi}, lsl #12")
            self.emit(f"subs {temp}, {temp}, #{lo}")
            self.int_temps.release(temp)
        self.emit(f"b.{cond} {loop_label}")
