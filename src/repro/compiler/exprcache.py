"""Block-local value numbering of pure ``long`` expressions.

This is the ``gcc12`` profile's local-CSE machinery (see
:mod:`repro.compiler.profiles`). The back end consults the cache before
evaluating a pure integer expression and, when the profile enables it,
promotes freshly computed "interesting" expressions (index arithmetic —
anything with a multiply, or two or more additive operators) into pinned
registers for reuse later in the same straight-line run.

Soundness: only pure expressions (variables, literals, arithmetic — no
loads or calls) are keyed; an assignment to a variable invalidates every
entry depending on it; any label (= control-flow join), call, or loop
boundary clears the cache entirely.

Crucially, this runs *inside* the back end, after loop strength reduction
has claimed the array-indexing patterns it wants, so caching never defeats
pointer bumping or register-offset addressing — it only accelerates the
residual generic address arithmetic (the flattened ``jj*nx + ii`` indexes
of the grid workloads).
"""

from __future__ import annotations

from repro.compiler import ast_nodes as A


def expr_key(expr: A.Expr) -> tuple | None:
    """Structural key for a pure long expression; None if impure/unkeyable."""
    if isinstance(expr, A.IntLit):
        return ("int", expr.value)
    if isinstance(expr, A.VarRef):
        return ("var", expr.name)
    if isinstance(expr, A.Unary):
        if expr.op not in ("-", "~"):
            return None
        sub = expr_key(expr.operand)
        return None if sub is None else ("un", expr.op, sub)
    if isinstance(expr, A.Binary) and expr.type == A.LONG:
        left = expr_key(expr.left)
        right = expr_key(expr.right)
        if left is None or right is None:
            return None
        if expr.op in ("+", "*", "&", "|", "^"):
            left, right = sorted((left, right))
        return ("bin", expr.op, left, right)
    return None


def key_vars(key: tuple) -> frozenset[str]:
    """Variable names a key depends on."""
    if key[0] == "var":
        return frozenset((key[1],))
    if key[0] == "un":
        return key_vars(key[2])
    if key[0] == "bin":
        return key_vars(key[2]) | key_vars(key[3])
    return frozenset()


def is_interesting(expr: A.Expr) -> bool:
    """Worth pinning a register for: contains a multiply/divide/shift, or at
    least two additive operators (i.e. real index arithmetic, not ``j+1``)."""
    muls = _count_ops(expr, ("*", "/", "%", "<<", ">>"))
    adds = _count_ops(expr, ("+", "-"))
    return muls >= 1 or adds >= 2


def _count_ops(expr: A.Expr, ops: tuple[str, ...]) -> int:
    if isinstance(expr, A.Binary):
        own = 1 if expr.op in ops else 0
        return own + _count_ops(expr.left, ops) + _count_ops(expr.right, ops)
    if isinstance(expr, A.Unary):
        return _count_ops(expr.operand, ops)
    return 0


def count_repeated_keys(stmts, sink: dict[tuple, int]) -> None:
    """Count pure-long expression keys in one statement run (flat — nested
    control flow has its own runs). Used to pin only expressions that will
    actually be reused."""
    from repro.compiler import ast_nodes as A

    def from_expr(expr) -> None:
        if expr is None:
            return
        key = expr_key(expr)
        if key is not None and isinstance(expr, A.Binary):
            sink[key] = sink.get(key, 0) + 1
        if isinstance(expr, (A.Unary, A.Cast)):
            from_expr(expr.operand)
        elif isinstance(expr, (A.Binary, A.Logical)):
            from_expr(expr.left)
            from_expr(expr.right)
        elif isinstance(expr, A.ArrayRef):
            from_expr(expr.index)
        elif isinstance(expr, A.Call):
            for arg in expr.args:
                from_expr(arg)

    for stmt in stmts:
        if isinstance(stmt, A.AssignStmt):
            from_expr(stmt.value)
            if isinstance(stmt.target, A.ArrayRef):
                from_expr(stmt.target.index)
        elif isinstance(stmt, A.DeclStmt):
            from_expr(stmt.init)
        elif isinstance(stmt, A.ExprStmt):
            from_expr(stmt.expr)
        elif isinstance(stmt, A.ReturnStmt):
            from_expr(stmt.value)
        elif isinstance(stmt, A.IfStmt):
            from_expr(stmt.cond)
        elif isinstance(stmt, (A.WhileStmt, A.ForStmt)):
            from_expr(getattr(stmt, "cond", None))
        # bodies of nested statements are separate runs


class ExprCache:
    """The cache proper: key → (register, dependency variables)."""

    def __init__(self, enabled: bool):
        self.enabled = enabled
        self.entries: dict[tuple, tuple[str, frozenset[str]]] = {}

    def lookup(self, expr: A.Expr) -> str | None:
        if not self.enabled or not self.entries:
            return None
        key = expr_key(expr)
        if key is None:
            return None
        entry = self.entries.get(key)
        return entry[0] if entry else None

    def insert(self, expr: A.Expr, reg: str) -> bool:
        if not self.enabled:
            return False
        key = expr_key(expr)
        if key is None:
            return False
        self.entries[key] = (reg, key_vars(key))
        return True

    def invalidate_var(self, name: str) -> list[str]:
        """Drop entries depending on ``name``; returns their registers."""
        freed = []
        for key in list(self.entries):
            reg, deps = self.entries[key]
            if name in deps:
                freed.append(reg)
                del self.entries[key]
        return freed

    def clear(self) -> list[str]:
        """Drop everything (control-flow barrier); returns freed registers."""
        freed = [reg for reg, _deps in self.entries.values()]
        self.entries.clear()
        return freed
