"""Compiler cost-model profiles: the GCC 9.2 / GCC 12.2 stand-ins.

The paper compiles every benchmark with two GCC versions and traces the
resulting path-length differences to specific code-generation idioms
(§3.2–§3.3). We model those idioms as two profiles:

``gcc9``
    * **No block-local CSE of index arithmetic**: repeated pure integer
      subexpressions (e.g. the ``jj*nx + ii`` flattened index every array in
      an LBM/CloverLeaf statement block shares) are re-computed at each use.
    * **Constant loop bounds are re-materialized at the exit test** on
      AArch64: a bound that does not fit the 12-bit compare immediate is
      tested with the paper's observed ``sub x1, x0, #hi, lsl #12; subs
      x1, x1, #lo`` pair — one extra instruction per loop iteration.

``gcc12``
    * Block-local CSE on (the middle-end improvement responsible for most
      of GCC 12's shorter paths on address-heavy kernels).
    * Constant bounds are hoisted to a register outside the loop and tested
      with a single ``cmp xj, xN`` — exactly the GCC 9.2→12.2 STREAM delta
      §3.3 reports (one instruction per kernel iteration, both listings).

On RISC-V the bound idiom is moot (fused compare-and-branch reads two
registers either way), so simple kernels compile identically under both
profiles — matching the paper's observation that "the main kernels remain
the same for both RISC-V binaries".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Profile:
    """A named bundle of code-generation choices.

    ``max_streams`` models the older compiler's weaker handling of register
    pressure in its induction-variable optimizations: GCC 9 keeps fewer
    strength-reduced address streams per loop, recomputing the rest of the
    addresses in the loop body. The cost of that fallback is asymmetric by
    ISA — AArch64's register-offset addressing absorbs most of it, RISC-V
    pays shift+add per access — which is how one compiler knob produces the
    paper's observation that GCC 9→12 helped RISC-V far more than AArch64
    on the address-heavy benchmarks (LBM, CloverLeaf, minisweep).
    """

    name: str
    local_cse: bool
    hoist_const_bounds: bool
    max_streams: int | None = None  # None = limited only by registers
    #: beyond-the-paper ablation: let the RISC-V back end use the Zba
    #: address-generation instructions (sh1add/sh2add/sh3add, ratified
    #: 2021 — after the paper's rv64g baseline). Quantifies how much of
    #: AArch64's register-offset addressing advantage one small extension
    #: recovers.
    rv_zba: bool = False

    def __str__(self) -> str:
        return self.name


GCC9 = Profile(name="gcc9", local_cse=False, hoist_const_bounds=False,
               max_streams=5)
GCC12 = Profile(name="gcc12", local_cse=True, hoist_const_bounds=True,
                max_streams=None)
GCC12_ZBA = Profile(name="gcc12-zba", local_cse=True, hoist_const_bounds=True,
                    max_streams=None, rv_zba=True)

PROFILES: dict[str, Profile] = {
    "gcc9": GCC9, "gcc12": GCC12, "gcc12-zba": GCC12_ZBA,
}


def get_profile(name: str) -> Profile:
    """Look up a profile by name (``"gcc9"`` / ``"gcc12"``)."""
    try:
        return PROFILES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; expected one of {sorted(PROFILES)}"
        ) from None
