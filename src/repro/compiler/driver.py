"""kernelc compilation driver: source text → assembly → loadable image.

The pipeline mirrors a real toolchain: front end (parse, type-check),
middle-end preparation (constant folding, call normalization), ISA back end
(profile-parameterized code generation), assembler, static ELF link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm import Program as AsmProgram, assemble
from repro.compiler import ast_nodes as A
from repro.compiler.backend_aarch64 import AArch64CodeGen
from repro.compiler.backend_riscv import RiscvCodeGen
from repro.compiler.parser import parse
from repro.compiler.passes import fold_constants, hoist_calls
from repro.compiler.profiles import Profile, get_profile
from repro.compiler.sema import analyze
from repro.isa import get_isa
from repro.loader import LoadedImage, build_elf, load_elf

_BACKENDS = {"aarch64": AArch64CodeGen, "rv64": RiscvCodeGen}


@dataclass
class CompiledProgram:
    """The result of one compilation: every intermediate a test or an
    analysis might want to look at."""

    source: str
    isa_name: str
    profile: Profile
    asm_text: str
    program: AsmProgram
    elf_bytes: bytes
    image: LoadedImage


def compile_to_asm(source: str, isa_name: str, profile: str | Profile = "gcc12") -> str:
    """Compile kernelc ``source`` to assembly text for ``isa_name``."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    backend_cls = _BACKENDS.get(_canonical_isa(isa_name))
    if backend_cls is None:
        raise ValueError(f"no back end for ISA {isa_name!r}")
    ast = parse(source)
    symbols = analyze(ast)
    fold_constants(ast)
    hoist_calls(ast)
    generator = backend_cls(symbols, profile)
    return generator.gen_program(ast)


def compile_source(
    source: str, isa_name: str, profile: str | Profile = "gcc12"
) -> CompiledProgram:
    """Compile kernelc ``source`` all the way to a loadable static image."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    canonical = _canonical_isa(isa_name)
    asm_text = compile_to_asm(source, canonical, profile)
    isa = get_isa(canonical)
    program = assemble(asm_text, isa)
    elf_bytes = build_elf(program)
    image = load_elf(elf_bytes)
    return CompiledProgram(
        source=source,
        isa_name=canonical,
        profile=profile,
        asm_text=asm_text,
        program=program,
        elf_bytes=elf_bytes,
        image=image,
    )


def _canonical_isa(name: str) -> str:
    key = name.lower()
    if key in ("aarch64", "arm", "armv8", "armv8-a"):
        return "aarch64"
    if key in ("rv64", "riscv", "rv64g", "riscv64"):
        return "rv64"
    raise ValueError(f"unknown ISA {name!r}")
