"""kernelc — a small optimizing compiler standing in for GCC 9.2 / 12.2.

The paper's pipeline compiles C benchmarks with two GCC versions for two
targets. Offline, with no cross-toolchains, we rebuild the relevant part of
that pipeline: a C-subset language ("kernelc") with

* a front end (lexer → parser → semantic analysis),
* loop-aware code generation with induction-variable strength reduction,
  loop-invariant hoisting and (profile-dependent) local CSE,
* two back ends that embody the ISA-level differences the paper analyses —
  the AArch64 back end uses register-offset (shifted) loads/stores and
  compare+conditional-branch sequences; the RV64 back end uses pointer
  bumping with immediate-offset loads/stores and fused compare-and-branch,
* two *cost-model profiles*, ``gcc9`` and ``gcc12``, reproducing the
  specific code-generation deltas the paper documents (§3.3): GCC 9.2's
  ``sub/subs``-immediate loop-bound idiom on AArch64 versus GCC 12.2's
  hoisted ``cmp reg,reg``, and weaker subexpression reuse in older GCC.

The public entry point is :func:`repro.compiler.driver.compile_source`.
"""

from repro.compiler.driver import compile_source, compile_to_asm, CompiledProgram
from repro.compiler.profiles import Profile, PROFILES, get_profile

__all__ = [
    "compile_source",
    "compile_to_asm",
    "CompiledProgram",
    "Profile",
    "PROFILES",
    "get_profile",
]
