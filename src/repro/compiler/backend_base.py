"""Shared code-generation framework for the kernelc back ends.

One :class:`CodeGen` subclass per ISA. The base class owns everything
structural — statement walking, expression evaluation with a temp-register
pool, variable→register binding with stack-slot overflow, canonical-loop
lowering with loop-invariant hoisting and induction-variable strength
reduction — and defers to ISA hooks for instruction selection. The two
hooks that embody the paper's §3.3 comparison are

* :meth:`CodeGen.emit_compare_branch` — RISC-V emits one fused
  compare-and-branch; AArch64 emits an NZCV-setting compare plus ``b.cond``
  (and, under the ``gcc9`` profile with a large constant bound, the
  ``sub``/``subs`` re-materialization pair the paper observed), and
* the loop addressing style — RISC-V bumps one pointer per array
  (immediate-offset loads/stores), AArch64 keeps the index register and
  uses register-offset loads/stores with an ``lsl #3`` (§3.3's "more
  powerful load and store instructions").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.common import CompilerError
from repro.compiler import ast_nodes as A
from repro.compiler.exprcache import (
    ExprCache,
    count_repeated_keys,
    expr_key,
    is_interesting,
)
from repro.compiler.loops import AccessGroup, LoopLoweringMixin, LoopPlan
from repro.compiler.profiles import Profile
from repro.compiler.sema import BUILTINS, SymbolTable, contains_call

ELEM_SIZE = 8  # both kernelc types are 8 bytes


@dataclass
class Value:
    """An evaluated expression: a register plus whether the caller owns it
    (owned temps must be released; variable home registers must not be)."""

    reg: str
    is_fp: bool
    owned: bool


@dataclass
class Binding:
    """Where a local variable lives."""

    kind: str           # "reg" | "stack"
    reg: str = ""
    offset: int = 0     # stack slot offset (for "stack")
    is_fp: bool = False


class TempPool:
    """A small free-list register pool for expression temporaries."""

    def __init__(self, regs: list[str]):
        self.all = list(regs)
        self.free = list(regs)

    def acquire(self, line: int = 0) -> str:
        if not self.free:
            raise CompilerError(
                "expression too deep: temporary register pool exhausted", line
            )
        return self.free.pop()

    def release(self, reg: str) -> None:
        if reg in self.all and reg not in self.free:
            self.free.append(reg)


class CodeGen(LoopLoweringMixin):
    """Abstract ISA-independent code generator. See module docstring."""

    # subclasses set these class attributes
    isa_name = ""
    INT_TEMPS: list[str] = []
    FP_TEMPS: list[str] = []
    INT_VARS: list[str] = []
    FP_VARS: list[str] = []
    INT_VARS_LEAF_BONUS: list[str] = []
    FP_VARS_LEAF_BONUS: list[str] = []
    ARG_REGS: list[str] = []
    FP_ARG_REGS: list[str] = []
    RET_REG = ""
    FP_RET_REG = ""

    def __init__(self, symbols: SymbolTable, profile: Profile):
        self.symbols = symbols
        self.profile = profile
        self.lines: list[str] = []
        self.label_counter = itertools.count()
        # per-function state, reset in gen_function
        self.int_temps = TempPool([])
        self.fp_temps = TempPool([])
        self.bindings: dict[str, Binding] = {}
        self.hoisted_globals: dict[str, Binding] = {}
        self.var_int_pool: list[str] = []
        self.var_fp_pool: list[str] = []
        self.used_var_regs: set[str] = set()
        self.stack_slots = 0
        self.loop_stack: list[tuple[str, str]] = []  # (continue, break)
        self.current_func: A.FuncDecl | None = None
        self.epilogue_label = ""
        self._loop_plans: list[LoopPlan] = []
        self._loop_banned: list[set[str]] = []
        self.cse = ExprCache(profile.local_cse)
        self.fp_const_pool: dict[int, tuple[float, str]] = {}
        # FP literals hoisted into registers by enclosing loops (LICM)
        self.fp_const_regs: dict[int, str] = {}
        self._cse_repeat_stack: list[set[tuple]] = []
        # loop-invariant expressions hoisted by enclosing loops (LICM)
        self.licm_exprs: dict[tuple, str] = {}
        # array base addresses hoisted by enclosing loops
        self.array_base_regs: dict[str, str] = {}

    # ------------------------------------------------------------------ util

    def emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str = "L") -> str:
        return f".{hint}{next(self.label_counter)}"

    def acquire_temp(self, is_fp: bool, line: int = 0) -> str:
        return (self.fp_temps if is_fp else self.int_temps).acquire(line)

    def release(self, value: Value) -> None:
        if value.owned:
            (self.fp_temps if value.is_fp else self.int_temps).release(value.reg)

    def alloc_var_reg(self, is_fp: bool) -> str | None:
        pool = self.var_fp_pool if is_fp else self.var_int_pool
        if pool:
            reg = pool.pop()
            self.used_var_regs.add(reg)
            return reg
        return None

    def free_var_reg(self, reg: str, is_fp: bool) -> None:
        (self.var_fp_pool if is_fp else self.var_int_pool).append(reg)

    def alloc_stack_slot(self) -> int:
        offset = self.stack_slots * ELEM_SIZE
        self.stack_slots += 1
        return offset

    def fp_const_label(self, value: float) -> str:
        """Label of an FP-literal pool entry (created on first use)."""
        from repro.common import f64_to_bits

        bits = f64_to_bits(value)
        entry = self.fp_const_pool.get(bits)
        if entry is None:
            label = f".LC{len(self.fp_const_pool)}"
            self.fp_const_pool[bits] = (value, label)
            return label
        return entry[1]

    # -- expression-cache (gcc12 local CSE) plumbing --------------------------

    def cse_barrier(self) -> None:
        """Control-flow join/label/call: drop the cache, free pinned regs."""
        for reg in self.cse.clear():
            self.free_var_reg(reg, False)

    def cse_invalidate(self, name: str) -> None:
        for reg in self.cse.invalidate_var(name):
            self.free_var_reg(reg, False)

    # ---------------------------------------------------------- ISA hooks

    def emit_prologue_epilogue(self, body: list[str]) -> list[str]:
        raise NotImplementedError

    def emit_li(self, reg: str, value: int) -> None:
        raise NotImplementedError

    def emit_fp_const(self, reg: str, value: float) -> None:
        raise NotImplementedError

    def emit_move(self, dst: str, src: str, is_fp: bool) -> None:
        raise NotImplementedError

    def emit_global_addr(self, reg: str, symbol: str) -> None:
        raise NotImplementedError

    def emit_load_global_scalar(self, dst: str, symbol: str, is_fp: bool,
                                addr_temp: str) -> None:
        raise NotImplementedError

    def emit_store_global_scalar(self, src: str, symbol: str, is_fp: bool,
                                 addr_temp: str) -> None:
        raise NotImplementedError

    def emit_binop_long(self, op: str, dst: str, a: str, b: str) -> None:
        raise NotImplementedError

    def emit_binop_long_imm(self, op: str, dst: str, a: str, imm: int) -> bool:
        """Try an immediate form; return False to force register form."""
        raise NotImplementedError

    def emit_binop_double(self, op: str, dst: str, a: str, b: str) -> None:
        raise NotImplementedError

    def emit_neg(self, dst: str, src: str, is_fp: bool) -> None:
        raise NotImplementedError

    def emit_not(self, dst: str, src: str) -> None:
        raise NotImplementedError

    def emit_bitnot(self, dst: str, src: str) -> None:
        raise NotImplementedError

    def emit_compare_value(self, op: str, dst: str, a: str, b: str,
                           is_fp: bool) -> None:
        raise NotImplementedError

    def emit_compare_branch(self, op: str, a: str, b: str, target: str,
                            is_fp: bool, fp_temp: str | None = None) -> None:
        """Branch to ``target`` when ``a op b`` holds."""
        raise NotImplementedError

    def emit_branch_zero(self, reg: str, target: str, if_zero: bool) -> None:
        raise NotImplementedError

    def emit_jump(self, target: str) -> None:
        raise NotImplementedError

    def emit_call(self, name: str) -> None:
        raise NotImplementedError

    def emit_cast_long_to_double(self, dst: str, src: str) -> None:
        raise NotImplementedError

    def emit_cast_double_to_long(self, dst: str, src: str) -> None:
        raise NotImplementedError

    def emit_builtin(self, name: str, dst: str, args: list[str]) -> None:
        raise NotImplementedError

    def emit_load_slot(self, dst: str, offset: int, is_fp: bool) -> None:
        raise NotImplementedError

    def emit_store_slot(self, src: str, offset: int, is_fp: bool) -> None:
        raise NotImplementedError

    def emit_load_indexed(self, dst: str, base: str, index: str, disp: int,
                          is_fp: bool, temp: str | None) -> None:
        """Load element: address = base + index*8 + disp (disp may be 0)."""
        raise NotImplementedError

    def emit_store_indexed(self, src: str, base: str, index: str, disp: int,
                           is_fp: bool, temp: str | None) -> None:
        raise NotImplementedError

    def emit_load_pointer(self, dst: str, pointer: str, disp: int,
                          is_fp: bool) -> None:
        raise NotImplementedError

    def emit_store_pointer(self, src: str, pointer: str, disp: int,
                           is_fp: bool) -> None:
        raise NotImplementedError

    def loop_exit_test(self, plan: LoopPlan, loop_label: str,
                       strict: bool) -> None:
        """Emit the bottom-of-loop exit test (ISA- and profile-specific)."""
        raise NotImplementedError

    def uses_pointer_bump(self) -> bool:
        """RISC-V strength-reduces to pointer increments; AArch64 keeps the
        index and uses register-offset addressing."""
        raise NotImplementedError

    # ------------------------------------------------------- program level

    def gen_program(self, program: A.Program) -> str:
        """Generate the full assembly module (text + data + startup)."""
        self.lines = []
        self.lines.append("    .text")
        self.lines.append("    .global _start")
        self.gen_startup()
        for func in program.functions:
            self.gen_function(func)
        self.gen_data(program)
        return "\n".join(self.lines) + "\n"

    def gen_startup(self) -> None:
        raise NotImplementedError

    def gen_data(self, program: A.Program) -> None:
        self.lines.append("")
        self.lines.append("    .data")
        for decl in program.globals:
            self.lines.append("    .align 3")
            self.emit_label(decl.name)
            directive = ".double" if decl.var_type == A.DOUBLE else ".dword"
            if decl.array_size is None:
                value = decl.init_scalar if decl.init_scalar is not None else 0
                self.lines.append(f"    {directive} {value}")
            elif decl.init_list is not None:
                values = list(decl.init_list)
                for start in range(0, len(values), 8):
                    chunk = ", ".join(repr(v) for v in values[start : start + 8])
                    self.lines.append(f"    {directive} {chunk}")
                remaining = decl.array_size - len(values)
                if remaining:
                    self.lines.append(f"    .zero {remaining * ELEM_SIZE}")
            else:
                self.lines.append(f"    .zero {decl.array_size * ELEM_SIZE}")
        # FP literal pool (constants that have no immediate encoding)
        for _bits, (value, label) in sorted(self.fp_const_pool.items()):
            self.lines.append("    .align 3")
            self.emit_label(label)
            self.lines.append(f"    .double {value!r}")

    # ------------------------------------------------------ function level

    def gen_function(self, func: A.FuncDecl) -> None:
        self.current_func = func
        self.int_temps = TempPool(self.INT_TEMPS)
        self.fp_temps = TempPool(self.FP_TEMPS)
        self.bindings = {}
        self.used_var_regs = set()
        self.stack_slots = 0
        self.loop_stack = []
        self._loop_plans = []
        self._loop_banned = []
        self.cse = ExprCache(self.profile.local_cse)
        self.fp_const_regs = {}
        self._cse_repeat_stack = []
        self.licm_exprs = {}
        self.array_base_regs = {}
        leaf = not contains_call(func.body)
        self.var_int_pool = list(self.INT_VARS) + (
            list(self.INT_VARS_LEAF_BONUS) if leaf else []
        )
        self.var_fp_pool = list(self.FP_VARS) + (
            list(self.FP_VARS_LEAF_BONUS) if leaf else []
        )
        # remove arg registers holding parameters from any leaf bonus
        self.var_int_pool = [r for r in self.var_int_pool
                             if r not in self.ARG_REGS[: len(func.params)]]
        self.var_fp_pool = [r for r in self.var_fp_pool
                            if r not in self.FP_ARG_REGS[: len(func.params)]]
        self.epilogue_label = self.new_label("epilogue")

        outer_lines = self.lines
        self.lines = []

        # parameters: move from ABI registers into home registers/slots
        int_arg = fp_arg = 0
        for ptype, pname in func.params:
            is_fp = ptype == A.DOUBLE
            if is_fp:
                src = self.FP_ARG_REGS[fp_arg]
                fp_arg += 1
            else:
                src = self.ARG_REGS[int_arg]
                int_arg += 1
            binding = self._bind_var(pname, is_fp, func.line)
            if binding.kind == "reg":
                self.emit_move(binding.reg, src, is_fp)
            else:
                self.emit_store_slot(src, binding.offset, is_fp)

        self.gen_block(func.body)
        if func.return_type == A.VOID:
            pass
        self.emit_label(self.epilogue_label)
        body = self.lines
        self.lines = outer_lines

        self.lines.append("")
        self.emit_label(func.name)
        self.lines.extend(self.emit_prologue_epilogue(body))
        self.current_func = None

    def _bind_var(self, name: str, is_fp: bool, line: int) -> Binding:
        if name in self.bindings:
            raise CompilerError(f"internal: rebinding {name!r}", line)
        reg = self.alloc_var_reg(is_fp)
        if reg is not None:
            binding = Binding(kind="reg", reg=reg, is_fp=is_fp)
        else:
            binding = Binding(kind="stack", offset=self.alloc_stack_slot(),
                              is_fp=is_fp)
        self.bindings[name] = binding
        return binding

    # -------------------------------------------------------- statements

    def gen_block(self, stmts: list[A.Stmt]) -> None:
        """Generate a lexical block: locals declared here go out of scope
        (and their registers return to the pool) at the closing brace."""
        before = dict(self.bindings)
        if self.cse.enabled:
            counts: dict[tuple, int] = {}
            count_repeated_keys(stmts, counts)
            repeated = {key for key, n in counts.items() if n >= 2}
            self._cse_repeat_stack.append(repeated)
        for stmt in stmts:
            self.gen_stmt(stmt)
        if self.cse.enabled:
            self._cse_repeat_stack.pop()
        for name in list(self.bindings):
            if name not in before:
                binding = self.bindings.pop(name)
                if binding.kind == "reg":
                    self.free_var_reg(binding.reg, binding.is_fp)
                self.cse_invalidate(name)

    def gen_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.DeclStmt):
            is_fp = stmt.var_type == A.DOUBLE
            binding = self._bind_var(stmt.name, is_fp, stmt.line)
            if stmt.init is not None:
                if binding.kind == "reg" and (
                    self._emit_literal_into(stmt.init, binding.reg, is_fp)
                    or self._emit_binary_into(stmt.init, binding.reg, is_fp)
                    or self._emit_builtin_into(stmt.init, binding.reg, is_fp)
                    or self._emit_load_into(stmt.init, binding.reg, is_fp)
                ):
                    return
                value = self.gen_expr(stmt.init)
                self._store_binding(binding, value)
                self.release(value)
        elif isinstance(stmt, A.AssignStmt):
            self.gen_assign(stmt)
        elif isinstance(stmt, A.IfStmt):
            self.gen_if(stmt)
        elif isinstance(stmt, A.WhileStmt):
            self.gen_while(stmt)
        elif isinstance(stmt, A.ForStmt):
            if stmt.iv_name is not None:
                self.gen_canonical_for(stmt)
            else:
                self.gen_generic_for(stmt)
        elif isinstance(stmt, A.ReturnStmt):
            if stmt.value is not None:
                value = self.gen_expr(stmt.value)
                ret = self.FP_RET_REG if value.is_fp else self.RET_REG
                if value.reg != ret:
                    self.emit_move(ret, value.reg, value.is_fp)
                self.release(value)
            self.emit_jump(self.epilogue_label)
        elif isinstance(stmt, A.ExprStmt):
            value = self.gen_expr(stmt.expr)
            if value is not None:
                self.release(value)
        elif isinstance(stmt, A.RegionStmt):
            self.lines.append(f'    .region {stmt.name}')
            self.gen_block(stmt.body)
            self.lines.append("    .endregion")
        elif isinstance(stmt, A.BlockStmt):
            self.gen_block(stmt.body)
        elif isinstance(stmt, A.BreakStmt):
            if not self.loop_stack:
                raise CompilerError("break outside loop", stmt.line)
            self.emit_jump(self.loop_stack[-1][1])
        elif isinstance(stmt, A.ContinueStmt):
            if not self.loop_stack:
                raise CompilerError("continue outside loop", stmt.line)
            self.emit_jump(self.loop_stack[-1][0])
        else:  # pragma: no cover
            raise CompilerError(f"cannot generate {type(stmt).__name__}", stmt.line)

    def _emit_binary_into(self, expr: A.Expr, reg: str, is_fp: bool) -> bool:
        """Compute ``var = a OP b`` straight into the variable's register
        (``fadd.d fa7, fa7, ft0`` instead of compute+move). Reading both
        operands happens before the destination is written, so aliasing with
        the target register is fine."""
        if not isinstance(expr, A.Binary) or expr.op in self._COMPARISONS:
            return False
        if (expr.type == A.DOUBLE) != is_fp:
            return False
        if self.cse.lookup(expr) is not None:
            return False  # let the general path reuse the cached register
        if not is_fp and expr_key(expr) in self.licm_exprs:
            return False  # likewise for LICM-hoisted values
        if (
            not is_fp
            and isinstance(expr.right, A.IntLit)
            and expr.op in ("+", "-", "*", "&", "|", "^", "<<", ">>")
        ):
            left = self.gen_expr(expr.left)
            if self.emit_binop_long_imm(expr.op, reg, left.reg, expr.right.value):
                self.release(left)
                return True
            right = self.gen_expr(expr.right)
        else:
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
        if is_fp:
            self.emit_binop_double(expr.op, reg, left.reg, right.reg)
        else:
            self.emit_binop_long(expr.op, reg, left.reg, right.reg)
        self.release(left)
        self.release(right)
        return True

    def _emit_builtin_into(self, expr: A.Expr, reg: str, is_fp: bool) -> bool:
        """Compute ``var = sqrt(e)`` etc. straight into the home register."""
        if not (isinstance(expr, A.Call) and expr.name in BUILTINS and is_fp):
            return False
        args = [self.gen_expr(arg) for arg in expr.args]
        self.emit_builtin(expr.name, reg, [a.reg for a in args])
        for a in args:
            self.release(a)
        return True

    def _emit_literal_into(self, expr: A.Expr, reg: str, is_fp: bool) -> bool:
        """Materialize a literal straight into a home register (avoids the
        temp+move dance for the very common ``long j = 0`` shape)."""
        if isinstance(expr, A.IntLit) and not is_fp:
            self.emit_li(reg, expr.value)
            return True
        if isinstance(expr, A.FloatLit) and is_fp:
            hoisted = self.fp_const_regs.get(_f64_bits(expr.value))
            if hoisted is not None:
                self.emit_move(reg, hoisted, True)
            else:
                self.emit_fp_const(reg, expr.value)
            return True
        return False

    def _store_binding(self, binding: Binding, value: Value) -> None:
        if binding.kind == "reg":
            if binding.reg != value.reg:
                self.emit_move(binding.reg, value.reg, binding.is_fp)
        else:
            self.emit_store_slot(value.reg, binding.offset, binding.is_fp)

    def gen_assign(self, stmt: A.AssignStmt) -> None:
        target = stmt.target
        if isinstance(target, A.VarRef):
            binding = self.bindings.get(target.name)
            if binding is not None:
                if binding.kind == "reg" and self._emit_literal_into(
                    stmt.value, binding.reg, binding.is_fp
                ):
                    self.cse_invalidate(target.name)
                    return
                if binding.kind == "reg" and (
                    self._emit_binary_into(stmt.value, binding.reg, binding.is_fp)
                    or self._emit_builtin_into(stmt.value, binding.reg,
                                               binding.is_fp)
                    or self._emit_load_into(stmt.value, binding.reg,
                                            binding.is_fp)
                ):
                    self.cse_invalidate(target.name)
                    return
                value = self.gen_expr(stmt.value)
                self._store_binding(binding, value)
                self.release(value)
                self.cse_invalidate(target.name)
                return
            info = self.symbols.globals.get(target.name)
            if info is None:
                raise CompilerError(f"undefined {target.name!r}", stmt.line)
            value = self.gen_expr(stmt.value)
            addr_temp = self.int_temps.acquire(stmt.line)
            self.emit_store_global_scalar(value.reg, target.name,
                                          value.is_fp, addr_temp)
            self.int_temps.release(addr_temp)
            self.release(value)
            self.cse_invalidate(target.name)
            return
        assert isinstance(target, A.ArrayRef)
        value = self.gen_expr(stmt.value)
        self.gen_array_store(target, value, stmt.line)
        self.release(value)

    # -- control flow -------------------------------------------------------

    def gen_if(self, stmt: A.IfStmt) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif")
        target = else_label if stmt.else_body else end_label
        self.gen_cond_branch(stmt.cond, target, jump_if_true=False)
        self.cse_barrier()
        self.gen_block(stmt.then_body)
        if stmt.else_body:
            self.emit_jump(end_label)
            self.emit_label(else_label)
            self.cse_barrier()
            self.gen_block(stmt.else_body)
        self.emit_label(end_label)
        self.cse_barrier()

    def gen_while(self, stmt: A.WhileStmt) -> None:
        head = self.new_label("while")
        exit_label = self.new_label("wend")
        self.cse_barrier()
        self.emit_label(head)
        self.gen_cond_branch(stmt.cond, exit_label, jump_if_true=False)
        self.loop_stack.append((head, exit_label))
        self.gen_block(stmt.body)
        self.loop_stack.pop()
        self.emit_jump(head)
        self.emit_label(exit_label)
        self.cse_barrier()

    def gen_generic_for(self, stmt: A.ForStmt) -> None:
        head = self.new_label("for")
        cont = self.new_label("fcont")
        exit_label = self.new_label("fend")
        saved = dict(self.bindings)
        self.gen_stmt(stmt.init)
        self.cse_barrier()
        self.emit_label(head)
        self.gen_cond_branch(stmt.cond, exit_label, jump_if_true=False)
        self.loop_stack.append((cont, exit_label))
        self.gen_block(stmt.body)
        self.loop_stack.pop()
        self.emit_label(cont)
        self.cse_barrier()
        self.gen_stmt(stmt.update)
        self.emit_jump(head)
        self.emit_label(exit_label)
        self.cse_barrier()
        for name in list(self.bindings):
            if name not in saved:
                binding = self.bindings.pop(name)
                if binding.kind == "reg":
                    self.free_var_reg(binding.reg, binding.is_fp)

    def _unhoist(self, hoists) -> None:
        for name, old_binding, reg, is_fp in reversed(hoists):
            if old_binding is None:
                del self.bindings[name]
            else:
                self.bindings[name] = old_binding
            self.free_var_reg(reg, is_fp)

    # -- conditions -----------------------------------------------------

    _INVERSE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}

    def gen_cond_branch(self, cond: A.Expr, target: str, jump_if_true: bool) -> None:
        """Branch to ``target`` when cond is true (or false)."""
        if isinstance(cond, A.Logical):
            if cond.op == "&&":
                if jump_if_true:
                    skip = self.new_label("and")
                    self.gen_cond_branch(cond.left, skip, jump_if_true=False)
                    self.gen_cond_branch(cond.right, target, jump_if_true=True)
                    self.emit_label(skip)
                else:
                    self.gen_cond_branch(cond.left, target, jump_if_true=False)
                    self.gen_cond_branch(cond.right, target, jump_if_true=False)
            else:  # ||
                if jump_if_true:
                    self.gen_cond_branch(cond.left, target, jump_if_true=True)
                    self.gen_cond_branch(cond.right, target, jump_if_true=True)
                else:
                    skip = self.new_label("or")
                    self.gen_cond_branch(cond.left, skip, jump_if_true=True)
                    self.gen_cond_branch(cond.right, target, jump_if_true=False)
                    self.emit_label(skip)
            return
        if isinstance(cond, A.Unary) and cond.op == "!":
            self.gen_cond_branch(cond.operand, target, jump_if_true=not jump_if_true)
            return
        if isinstance(cond, A.Binary) and cond.op in self._INVERSE:
            op = cond.op if jump_if_true else self._INVERSE[cond.op]
            left = self.gen_expr(cond.left)
            right = self.gen_expr(cond.right)
            fp_temp = None
            if left.is_fp:
                fp_temp = self.int_temps.acquire(cond.line)
            self.emit_compare_branch(op, left.reg, right.reg, target,
                                     left.is_fp, fp_temp)
            if fp_temp is not None:
                self.int_temps.release(fp_temp)
            self.release(left)
            self.release(right)
            return
        value = self.gen_expr(cond)
        self.emit_branch_zero(value.reg, target, if_zero=not jump_if_true)
        self.release(value)

    # -- expressions -----------------------------------------------------

    def gen_expr(self, expr: A.Expr) -> Value:
        if isinstance(expr, A.IntLit):
            reg = self.int_temps.acquire(expr.line)
            self.emit_li(reg, expr.value)
            return Value(reg, False, True)
        if isinstance(expr, A.FloatLit):
            hoisted = self.fp_const_regs.get(_f64_bits(expr.value))
            if hoisted is not None:
                return Value(hoisted, True, False)
            reg = self.fp_temps.acquire(expr.line)
            self.emit_fp_const(reg, expr.value)
            return Value(reg, True, True)
        if isinstance(expr, A.VarRef):
            return self.gen_var_read(expr)
        if isinstance(expr, A.ArrayRef):
            return self.gen_array_load(expr)
        if isinstance(expr, A.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, A.Binary):
            return self.gen_binary(expr)
        if isinstance(expr, A.Logical):
            return self.gen_logical_value(expr)
        if isinstance(expr, A.Cast):
            return self.gen_cast(expr)
        if isinstance(expr, A.Call):
            return self.gen_call(expr)
        raise CompilerError(f"cannot generate {type(expr).__name__}", expr.line)

    def gen_var_read(self, expr: A.VarRef) -> Value:
        binding = self.bindings.get(expr.name)
        is_fp = expr.type == A.DOUBLE
        if binding is not None:
            if binding.kind == "reg":
                return Value(binding.reg, binding.is_fp, False)
            reg = self.acquire_temp(binding.is_fp, expr.line)
            self.emit_load_slot(reg, binding.offset, binding.is_fp)
            return Value(reg, binding.is_fp, True)
        info = self.symbols.globals.get(expr.name)
        if info is None:
            raise CompilerError(f"undefined variable {expr.name!r}", expr.line)
        reg = self.acquire_temp(is_fp, expr.line)
        addr_temp = self.int_temps.acquire(expr.line) if is_fp else reg
        self.emit_load_global_scalar(reg, expr.name, is_fp, addr_temp)
        if is_fp:
            self.int_temps.release(addr_temp)
        return Value(reg, is_fp, True)

    def gen_unary(self, expr: A.Unary) -> Value:
        operand = self.gen_expr(expr.operand)
        dst = operand.reg if operand.owned else self.acquire_temp(
            operand.is_fp, expr.line
        )
        if expr.op == "-":
            self.emit_neg(dst, operand.reg, operand.is_fp)
        elif expr.op == "!":
            self.emit_not(dst, operand.reg)
        else:  # ~
            self.emit_bitnot(dst, operand.reg)
        if operand.owned:
            return Value(dst, operand.is_fp, True)
        return Value(dst, operand.is_fp, True)

    _COMPARISONS = ("<", "<=", ">", ">=", "==", "!=")

    def gen_binary(self, expr: A.Binary) -> Value:
        # hoisted by an enclosing loop's LICM?
        if self.licm_exprs and expr.type == A.LONG:
            licm_reg = self.licm_exprs.get(expr_key(expr))
            if licm_reg is not None:
                return Value(licm_reg, False, False)
        # local-CSE hit? (gcc12 profile; pure long expressions only)
        cached = self.cse.lookup(expr)
        if cached is not None:
            return Value(cached, False, False)
        # constant-immediate fast path for long ops
        if (
            expr.type == A.LONG
            and isinstance(expr.right, A.IntLit)
            and expr.op in ("+", "-", "*", "&", "|", "^", "<<", ">>")
        ):
            left = self.gen_expr(expr.left)
            dst = left.reg if left.owned else self.int_temps.acquire(expr.line)
            if self.emit_binop_long_imm(expr.op, dst, left.reg, expr.right.value):
                return self._maybe_pin(expr, Value(dst, False, True))
            if not left.owned:
                self.int_temps.release(dst)
            # unencodable immediate: give back the operand temp before the
            # general path re-evaluates it, or it leaks until the pool is dry
            self.release(left)
        left = self.gen_expr(expr.left)
        right = self.gen_expr(expr.right)
        if expr.op in self._COMPARISONS:
            dst = self.int_temps.acquire(expr.line)
            self.emit_compare_value(expr.op, dst, left.reg, right.reg, left.is_fp)
            self.release(left)
            self.release(right)
            return Value(dst, False, True)
        is_fp = expr.type == A.DOUBLE
        if left.owned:
            dst = left.reg
        elif right.owned and expr.op in ("+", "*"):
            # commutative: reuse the right temp
            dst = right.reg
        else:
            dst = self.acquire_temp(is_fp, expr.line)
        if is_fp:
            self.emit_binop_double(expr.op, dst, left.reg, right.reg)
        else:
            self.emit_binop_long(expr.op, dst, left.reg, right.reg)
        if left.owned and dst != left.reg:
            self.release(left)
        if right.owned and dst != right.reg:
            self.release(right)
        return self._maybe_pin(expr, Value(dst, is_fp, True))

    def _maybe_pin(self, expr: A.Binary, value: Value) -> Value:
        """Promote a freshly computed index expression into a pinned
        register for reuse (the gcc12 local-CSE behaviour). Only pinned when
        the same expression occurs again in the enclosing statement run —
        pinning a single-use value would just add a move."""
        if (
            value.is_fp
            or not self.cse.enabled
            or not self.var_int_pool
            or not is_interesting(expr)
        ):
            return value
        key = expr_key(expr)
        if key is None or not any(
            key in repeated for repeated in self._cse_repeat_stack
        ):
            return value
        pinned = self.alloc_var_reg(False)
        if pinned is None:
            return value
        self.emit_move(pinned, value.reg, False)
        self.release(value)
        self.cse.insert(expr, pinned)
        return Value(pinned, False, False)

    def gen_logical_value(self, expr: A.Logical) -> Value:
        """Materialize a short-circuit && / || as 0/1."""
        dst = self.int_temps.acquire(expr.line)
        done = self.new_label("lv")
        if expr.op == "&&":
            self.emit_li(dst, 0)
            false_label = self.new_label("lf")
            self.gen_cond_branch(expr, false_label, jump_if_true=False)
            self.emit_li(dst, 1)
            self.emit_label(false_label)
        else:
            self.emit_li(dst, 1)
            true_label = self.new_label("lt")
            self.gen_cond_branch(expr, true_label, jump_if_true=True)
            self.emit_li(dst, 0)
            self.emit_label(true_label)
        self.emit_label(done)
        return Value(dst, False, True)

    def gen_cast(self, expr: A.Cast) -> Value:
        operand = self.gen_expr(expr.operand)
        if expr.target == operand_type(operand):
            return operand
        if expr.target == A.DOUBLE:
            dst = self.fp_temps.acquire(expr.line)
            self.emit_cast_long_to_double(dst, operand.reg)
            self.release(operand)
            return Value(dst, True, True)
        dst = self.int_temps.acquire(expr.line)
        self.emit_cast_double_to_long(dst, operand.reg)
        self.release(operand)
        return Value(dst, False, True)

    def gen_call(self, expr: A.Call) -> Value:
        if expr.name in BUILTINS:
            args = [self.gen_expr(arg) for arg in expr.args]
            dst = self.fp_temps.acquire(expr.line)
            self.emit_builtin(expr.name, dst, [a.reg for a in args])
            for a in args:
                self.release(a)
            return Value(dst, True, True)
        func = self.symbols.functions[expr.name]
        # args are call-free (the driver hoists nested calls), so evaluating
        # into temps then moving into ABI registers is safe.
        values = [self.gen_expr(arg) for arg in expr.args]
        int_arg = fp_arg = 0
        for value in values:
            if value.is_fp:
                self.emit_move(self.FP_ARG_REGS[fp_arg], value.reg, True)
                fp_arg += 1
            else:
                self.emit_move(self.ARG_REGS[int_arg], value.reg, False)
                int_arg += 1
            self.release(value)
        self.emit_call(expr.name)
        self.cse_barrier()
        if func.return_type == A.VOID:
            return Value(self.RET_REG, False, False)
        is_fp = func.return_type == A.DOUBLE
        src = self.FP_RET_REG if is_fp else self.RET_REG
        dst = self.acquire_temp(is_fp, expr.line)
        self.emit_move(dst, src, is_fp)
        return Value(dst, is_fp, True)

    # -- array access (generic path) -----------------------------------------

    def gen_array_load(self, expr: A.ArrayRef, into: str | None = None) -> Value:
        """Load one array element; ``into`` loads straight into a home
        register (no temp+move)."""
        reduced = self._reduced_access(expr)
        is_fp = expr.type == A.DOUBLE
        if reduced is not None:
            group, disp = reduced
            dst = into if into is not None else self.acquire_temp(is_fp, expr.line)
            if group.style == "ptr":
                self.emit_load_pointer(dst, group.reg, disp, is_fp)
            else:
                plan = self._loop_plans[-1]
                self.emit_load_indexed(dst, group.reg, plan.iv_reg, disp, is_fp,
                                       None)
            return Value(dst, is_fp, into is None)
        index = self.gen_expr(expr.index)
        base = self.array_base_regs.get(expr.name)
        base_temp = None
        if base is None:
            base_temp = self.int_temps.acquire(expr.line)
            self.emit_global_addr(base_temp, expr.name)
            base = base_temp
        dst = into if into is not None else self.acquire_temp(is_fp, expr.line)
        self.emit_load_indexed(dst, base, index.reg, 0, is_fp, base_temp)
        if base_temp is not None:
            self.int_temps.release(base_temp)
        self.release(index)
        return Value(dst, is_fp, into is None)

    def _emit_load_into(self, expr: A.Expr, reg: str, is_fp: bool) -> bool:
        """``var = arr[i]`` straight into the home register."""
        if not isinstance(expr, A.ArrayRef) or (expr.type == A.DOUBLE) != is_fp:
            return False
        self.gen_array_load(expr, into=reg)
        return True

    def gen_array_store(self, target: A.ArrayRef, value: Value, line: int) -> None:
        reduced = self._reduced_access(target)
        if reduced is not None:
            group, disp = reduced
            if group.style == "ptr":
                self.emit_store_pointer(value.reg, group.reg, disp, value.is_fp)
            else:
                plan = self._loop_plans[-1]
                self.emit_store_indexed(value.reg, group.reg, plan.iv_reg, disp,
                                        value.is_fp, None)
            return
        index = self.gen_expr(target.index)
        base = self.array_base_regs.get(target.name)
        base_temp = None
        if base is None:
            base_temp = self.int_temps.acquire(line)
            self.emit_global_addr(base_temp, target.name)
            base = base_temp
        temp = self.int_temps.acquire(line)
        self.emit_store_indexed(value.reg, base, index.reg, 0, value.is_fp, temp)
        self.int_temps.release(temp)
        if base_temp is not None:
            self.int_temps.release(base_temp)
        self.release(index)

def operand_type(value: Value) -> str:
    return A.DOUBLE if value.is_fp else A.LONG


def _f64_bits(value: float) -> int:
    from repro.common import f64_to_bits

    return f64_to_bits(value)
