"""Run a repro static-ELF on the emulation core, with optional analyses.

The paper's methodology as a one-shot command against any binary this
toolchain produced::

    $ python -m repro.tools.runelf program.elf --analyze
    exit code 0 after 1,234,567 instructions
    path length by region:
        copy       24,000
        ...
    critical path: 10,234  (ILP 120.6, 2 GHz runtime 0.005117 ms)
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import CriticalPathProbe, InstructionMixProbe, PathLengthProbe
from repro.isa import get_isa
from repro.loader import load_elf
from repro.sim import run_image
from repro.sim.config import load_core_model


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-runelf",
        description="execute a repro static-ELF on the emulation core",
    )
    parser.add_argument("elf", help="path to the ELF file")
    parser.add_argument("--analyze", action="store_true",
                        help="attach path-length / critical-path / mix probes")
    parser.add_argument("--model", default=None,
                        help="core model for a scaled CP (e.g. tx2)")
    parser.add_argument("--max-instructions", type=int, default=500_000_000)
    args = parser.parse_args(argv)

    with open(args.elf, "rb") as handle:
        image = load_elf(handle.read())
    isa = get_isa(image.isa_name)

    probes = []
    path_probe = cp_probe = scaled_probe = mix_probe = None
    if args.analyze:
        path_probe = PathLengthProbe(image.regions)
        cp_probe = CriticalPathProbe()
        mix_probe = InstructionMixProbe()
        probes = [path_probe, cp_probe, mix_probe]
        if args.model:
            scaled_probe = CriticalPathProbe(load_core_model(args.model))
            probes.append(scaled_probe)

    result, _machine = run_image(image, isa, probes,
                                 max_instructions=args.max_instructions)
    if result.stdout:
        sys.stdout.write(result.stdout.decode(errors="replace"))
    if result.stderr:
        sys.stderr.write(result.stderr.decode(errors="replace"))
    print(f"exit code {result.exit_code} after {result.instructions:,} "
          f"instructions")

    if args.analyze:
        counts = path_probe.result()
        print("path length by region:")
        for name, count in sorted(counts.per_region.items()):
            print(f"    {name:16s} {count:12,}")
        cp = cp_probe.result()
        print(f"critical path: {cp.critical_path:,}  (ILP {cp.ilp:.1f}, "
              f"2 GHz runtime {cp.runtime_ms():.6f} ms)")
        if scaled_probe is not None:
            scaled = scaled_probe.result()
            print(f"scaled CP ({args.model}): {scaled.critical_path:,}  "
                  f"(ILP {scaled.ilp:.1f}, "
                  f"2 GHz runtime {scaled.runtime_ms():.6f} ms)")
        mix = mix_probe.result()
        print(f"branches: {mix.branch_fraction:.1%}  "
              f"loads: {mix.loads / mix.total:.1%}  "
              f"stores: {mix.stores / mix.total:.1%}")
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
