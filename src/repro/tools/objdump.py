"""objdump-alike for the repro static-ELF format.

Disassembles every executable segment with the bundled decoders, printing
symbol labels and ``.region`` kernel markers inline::

    $ python -m repro.tools.objdump program.elf
    program.elf: aarch64 (entry 0x10000)

    0000000000010000 <_start>:
       10000:  94000003   bl 0x1000c
       ...
"""

from __future__ import annotations

import argparse
import sys

from repro.common import DecodeError
from repro.isa import get_isa
from repro.loader import load_elf

PF_X = 1


def disassemble_word(isa, word: int, pc: int) -> str:
    """One instruction's disassembly text; ``.word`` for undecodable."""
    try:
        return isa.decode(word, pc).text
    except DecodeError:
        return f".word {word:#010x}"


def disassemble_window(isa, memory, pc: int, *, before: int = 8,
                       after: int = 4) -> list[dict]:
    """Disassemble the instructions around ``pc`` straight out of
    simulated memory (the post-mortem path: no image needed, works on
    whatever the guest was actually executing).

    Returns one ``{"pc", "word", "text"}`` record per decodable
    location, clamped to the memory bounds; an empty list when ``pc``
    itself is outside memory.
    """
    if pc is None or pc < 0 or pc + 4 > memory.size or pc % 4:
        return []
    start = max(0, pc - 4 * before)
    end = min(memory.size - 4, pc + 4 * after)
    records = []
    for addr in range(start, end + 1, 4):
        word = int.from_bytes(memory.read_bytes(addr, 4), "little")
        records.append(
            {"pc": addr, "word": word, "text": disassemble_word(isa, word, addr)}
        )
    return records


def disassemble_image(image, *, show_data: bool = False) -> str:
    """Render a LoadedImage as objdump-style text."""
    isa = get_isa(image.isa_name)
    by_addr = {}
    for name, addr in image.symbols.items():
        by_addr.setdefault(addr, []).append(name)
    region_starts = {r.start: r.name for r in image.regions}
    region_ends = {r.end: r.name for r in image.regions}

    lines = []
    for vaddr, data, flags in image.segments:
        if not flags & PF_X:
            if show_data:
                lines.append(f"\nsegment {vaddr:#x} ({len(data)} bytes, data)")
            continue
        lines.append("")
        for offset in range(0, len(data) - len(data) % 4, 4):
            pc = vaddr + offset
            for name in sorted(by_addr.get(pc, [])):
                lines.append(f"{pc:016x} <{name}>:")
            if pc in region_starts:
                lines.append(f"        // --- region {region_starts[pc]} ---")
            if pc in region_ends:
                lines.append(f"        // --- end region {region_ends[pc]} ---")
            word = int.from_bytes(data[offset : offset + 4], "little")
            try:
                text = isa.decode(word, pc).text
            except DecodeError:
                text = f".word {word:#010x}"
            lines.append(f"   {pc:x}:  {word:08x}   {text}")
    return "\n".join(lines).lstrip("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-objdump",
        description="disassemble a repro static-ELF image",
    )
    parser.add_argument("elf", help="path to the ELF file")
    parser.add_argument("--show-data", action="store_true",
                        help="mention non-executable segments too")
    args = parser.parse_args(argv)

    with open(args.elf, "rb") as handle:
        image = load_elf(handle.read())
    print(f"{args.elf}: {image.isa_name} (entry {image.entry:#x})\n")
    print(disassemble_image(image, show_data=args.show_data))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
