"""Binary utilities built on the same substrate as the experiments.

* ``python -m repro.tools.objdump image.elf`` — disassemble a static ELF
  produced by this toolchain (or write one with
  :func:`repro.loader.build_elf`), annotated with symbols and kernel
  regions.
* ``python -m repro.tools.runelf image.elf`` — load and execute a static
  ELF on the emulation core, with optional per-kernel path-length and
  critical-path reports (the paper's whole methodology as a one-shot
  command against any binary).
"""
