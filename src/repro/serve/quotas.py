"""Per-client admission quotas for the serve daemon.

A client is whatever string the submitter sends as ``client`` (empty
string is a client like any other — the anonymous pool). The quota
bounds *outstanding* jobs — queued plus running — so one tenant cannot
occupy the whole bounded queue; coalesced duplicate submissions ride an
existing job and are never charged.
"""

from __future__ import annotations

import threading

from repro.common.errors import ExperimentError

__all__ = ["Quotas", "QuotaExceededError"]


class QuotaExceededError(ExperimentError):
    """The client already has ``limit`` jobs outstanding."""

    def __init__(self, client: str, limit: int):
        self.client = client
        self.limit = limit
        super().__init__(
            f"client {client!r} already has {limit} job(s) outstanding")


class Quotas:
    """Thread-safe per-client outstanding-job counter.

    ``limit <= 0`` disables quota enforcement (counts are still kept,
    for ``/jobs`` reporting).
    """

    def __init__(self, limit: int = 4):
        self.limit = limit
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def acquire(self, client: str) -> None:
        """Charge one outstanding job to ``client`` (or raise)."""
        with self._lock:
            held = self._counts.get(client, 0)
            if self.limit > 0 and held >= self.limit:
                raise QuotaExceededError(client, self.limit)
            self._counts[client] = held + 1

    def acquire_forced(self, client: str) -> None:
        """Charge past the limit (recovery: crashed jobs re-enter even
        if their client is already at quota — they were admitted once)."""
        with self._lock:
            self._counts[client] = self._counts.get(client, 0) + 1

    def release(self, client: str) -> None:
        """Return one outstanding job (no-op below zero: release is
        called from several completion paths and must be idempotent at
        the floor)."""
        with self._lock:
            held = self._counts.get(client, 0)
            if held <= 1:
                self._counts.pop(client, None)
            else:
                self._counts[client] = held - 1

    def outstanding(self, client: str) -> int:
        with self._lock:
            return self._counts.get(client, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)
