"""``repro serve`` — a crash-safe, overload-safe experiment service.

A long-lived asyncio daemon (stdlib only) in front of the plan/execute
engine: clients submit suite parameter sets over HTTP/JSON, jobs run on
one persistent warm worker pool shared across *requests* (PR 8's
execution tier kept alive by ``Executor(persistent=True)``), progress
streams out as server-sent events, and every job is journaled so a
``kill -9`` mid-suite resumes on restart with byte-identical artifacts
and zero re-execution of cached plans.

Modules:

- :mod:`repro.serve.app` — the daemon: HTTP front end, dispatcher
  thread, recovery scan, graceful drain.
- :mod:`repro.serve.queue` — bounded priority job queue with
  identical-submission coalescing and load-shed estimates.
- :mod:`repro.serve.quotas` — per-client outstanding-job quotas.
- :mod:`repro.serve.journal` — the durable per-job journal
  (:class:`~repro.harness.checkpoint.RunJournal` under
  ``<cache>/serve/jobs/``).
- :mod:`repro.serve.sse` — EventBus → server-sent-events bridge with
  slow-client disconnection.
- :mod:`repro.serve.client` — stdlib HTTP client used by tests, the
  fuzzer's ``diff_serve`` oracle, and the CI smoke.

See ``docs/serve.md`` for the API and the failure matrix.
"""

from repro.serve.app import ServeApp
from repro.serve.client import ServeClient, ServeError
from repro.serve.journal import JobJournal
from repro.serve.queue import Job, JobQueue, QueueFullError
from repro.serve.quotas import QuotaExceededError, Quotas

__all__ = [
    "ServeApp",
    "ServeClient",
    "ServeError",
    "JobJournal",
    "Job",
    "JobQueue",
    "QueueFullError",
    "Quotas",
    "QuotaExceededError",
]
