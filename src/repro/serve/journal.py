"""Durable per-job journals for the serve daemon.

A :class:`JobJournal` is a :class:`~repro.harness.checkpoint.RunJournal`
living under ``<cache_root>/serve/jobs/<job-id>.jsonl`` whose header
additionally records the submission (client, priority, params). The
daemon creates the journal at *admission* — a 202 means the job is
already durable, queued-but-never-dispatched jobs included — and
appends one line per completed plan, so a ``kill -9`` of the daemon
(or a drain with work still queued) leaves, for every incomplete job,
a journal naming exactly what was accepted; the restart recovery scan
re-enqueues those jobs, and because plan results are content-addressed
in the cache, resumed jobs re-execute nothing already journaled —
rendering byte-identical artifacts.

The distributed tier adds *lease* lines: every remote dispatch is
journaled (:meth:`JobJournal.record_lease`) **before** the task frame
leaves the socket, and every settlement — result accepted, duplicate
dropped, lease expired/requeued — is journaled after
(:meth:`JobJournal.record_lease_result`). Lease lines use keys the
base loader ignores (``"lease"`` / ``"lease_done"``), so journals stay
readable by older code; :func:`lease_records` parses them back for
audits and the dedup proofs in ``tests/test_dist.py``.

``FAULT_SITE = "serve"`` routes every appended line through
:func:`repro.harness.faults.corrupt`, so chaos tests can tear job
journal lines deterministically and prove the scan quarantines torn
headers and tolerates torn tails.
"""

from __future__ import annotations

import json

from repro.harness.checkpoint import RunJournal, unfinished_runs

__all__ = ["JobJournal", "unfinished_jobs", "lease_records"]


class JobJournal(RunJournal):
    """One serve job's append-only completion journal."""

    SUBDIR = "serve/jobs"
    FAULT_SITE = "serve"

    def record_lease(self, *, lease: str, fingerprint: str, node: str,
                     attempt: int, expires_in: float) -> None:
        """Journal a remote dispatch *before* it goes on the wire."""
        self._append({"lease": lease, "fp": fingerprint, "node": node,
                      "attempt": attempt,
                      "expires_in": round(expires_in, 3)})

    def record_lease_result(self, *, lease: str, status: str,
                            node: str = "") -> None:
        """Journal how a lease settled: ``ok``, ``failed``,
        ``duplicate``, ``stale``, ``lease-expired`` or ``node-lost``."""
        self._append({"lease_done": lease, "status": status,
                      "node": node})


def lease_records(cache_root, job_id: str
                  ) -> tuple[list[dict], list[dict]]:
    """Parse a job journal's lease lines: ``(grants, settlements)``.

    Torn lines are skipped exactly like the base loader skips them."""
    path = JobJournal.directory(cache_root) / f"{job_id}.jsonl"
    grants: list[dict] = []
    settlements: list[dict] = []
    with path.open("r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if not isinstance(doc, dict):
                continue
            if "lease" in doc:
                grants.append(doc)
            elif "lease_done" in doc:
                settlements.append(doc)
    return grants, settlements


def unfinished_jobs(cache_root) -> list[str]:
    """Job ids whose journals lack the ``finished`` marker — the
    recovery scan run at daemon startup. Torn-header journals are
    quarantined by the scan itself."""
    return unfinished_runs(cache_root, cls=JobJournal)
