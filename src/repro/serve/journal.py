"""Durable per-job journals for the serve daemon.

A :class:`JobJournal` is a :class:`~repro.harness.checkpoint.RunJournal`
living under ``<cache_root>/serve/jobs/<job-id>.jsonl`` whose header
additionally records the submission (client, priority, params). The
dispatcher creates the journal *before* dispatching a job to the
executor and appends one line per completed plan, so a ``kill -9`` of
the daemon leaves, for every in-flight job, a journal naming exactly
what was running; the restart recovery scan re-enqueues those jobs, and
because plan results are content-addressed in the cache, resumed jobs
re-execute nothing already journaled — rendering byte-identical
artifacts.

``FAULT_SITE = "serve"`` routes every appended line through
:func:`repro.harness.faults.corrupt`, so chaos tests can tear job
journal lines deterministically and prove the scan quarantines torn
headers and tolerates torn tails.
"""

from __future__ import annotations

from repro.harness.checkpoint import RunJournal, unfinished_runs

__all__ = ["JobJournal", "unfinished_jobs"]


class JobJournal(RunJournal):
    """One serve job's append-only completion journal."""

    SUBDIR = "serve/jobs"
    FAULT_SITE = "serve"


def unfinished_jobs(cache_root) -> list[str]:
    """Job ids whose journals lack the ``finished`` marker — the
    recovery scan run at daemon startup. Torn-header journals are
    quarantined by the scan itself."""
    return unfinished_runs(cache_root, cls=JobJournal)
