"""The serve daemon: HTTP front end, dispatcher, recovery, drain.

Architecture (all stdlib):

- an **asyncio HTTP/1.1 front end** (hand-rolled parser over
  ``asyncio.start_server``; requests are small JSON documents) handles
  admission, status, artifacts, and SSE streams. Every handler is
  non-blocking: admission is queue bookkeeping, status reads in-memory
  job records, artifacts read rendered files;
- a single **dispatcher thread** pops jobs off the bounded priority
  queue and runs them one at a time through the **distributed tier**
  (:class:`repro.dist.dispatcher.Dispatcher`): with worker nodes
  registered on the dist listener (``--dist-port``), a job's plans
  scatter across them under journaled leases; with none, the job runs
  on the shared local ``Executor(persistent=True)`` exactly as before
  — and when the last node dies mid-job, the dispatcher degrades back
  to that local warm pool rather than failing the job. (Jobs are
  serialized; the dist/executor tier parallelizes plans within a job.)
- every job is journaled (:class:`repro.serve.journal.JobJournal`)
  at *admission* — a 202 means the submission is already durable, so a
  drain or crash with jobs still queued loses nothing; the startup
  **recovery scan** re-enqueues unfinished jobs, whose already-
  journaled plans are satisfied from the content-addressed result
  cache — zero re-execution, byte-identical artifacts;
- **graceful drain** on SIGTERM (or ``POST /drain``): stop admitting
  (``/readyz`` 503, submissions 503), let in-flight work finish within
  ``drain_grace`` seconds, retire the worker pool, close SSE streams.
  Whatever does not finish in time stays journaled for the next start.

Fault injection (site ``serve``): ``crash``/``error`` fire between the
journal write and executor dispatch, ``transient`` models the
admission queue-full race (shed with 429), ``hang`` stalls an SSE
client's writer, and the data kinds tear job-journal lines via
:attr:`JobJournal.FAULT_SITE`.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from pathlib import Path

from repro.common.errors import ExperimentError, ReproError
from repro.dist.dispatcher import Dispatcher
from repro.harness import faults
from repro.harness.cache import ResultCache
from repro.harness.events import EventBus, TimingCollector
from repro.harness.executor import Executor
from repro.harness.plan import suite_from_params, suite_params_doc
from repro.serve.journal import JobJournal, unfinished_jobs
from repro.serve.queue import Job, JobQueue, QueueFullError
from repro.serve.quotas import QuotaExceededError, Quotas
from repro.serve.sse import SSEBroker, event_doc

__all__ = ["ServeApp", "canonical_params", "render_suite_artifacts",
           "assemble_suite"]

#: Keys a submission's ``params`` document may carry.
_PARAM_KEYS = frozenset((
    "scale", "workloads", "windowed", "window_sizes", "slide_fraction",
    "models", "max_instructions", "translate", "shards",
))


def canonical_params(doc: dict) -> dict:
    """Normalize a submitted params document to the canonical
    :func:`suite_params_doc` shape (defaults applied, types coerced) —
    the coalescing key and the journal header. Raises
    :class:`ExperimentError` on unknown keys or bad values."""
    from repro.analysis.windowed import PAPER_WINDOW_SIZES
    from repro.workloads import ALL_WORKLOADS

    if not isinstance(doc, dict):
        raise ExperimentError(
            f"params must be a JSON object, got {type(doc).__name__}")
    unknown = set(doc) - _PARAM_KEYS
    if unknown:
        raise ExperimentError(
            f"unknown params key(s) {sorted(unknown)}; known: "
            f"{sorted(_PARAM_KEYS)}")
    workloads = doc.get("workloads") or None
    if workloads is not None:
        workloads = tuple(str(w).lower() for w in workloads)
        bad = [w for w in workloads if w not in ALL_WORKLOADS]
        if bad:
            raise ExperimentError(
                f"unknown workload(s) {bad}; known: "
                f"{sorted(ALL_WORKLOADS)}")
    try:
        windows = doc.get("window_sizes") or PAPER_WINDOW_SIZES
        params = suite_params_doc(
            float(doc.get("scale", 1.0)),
            workloads=workloads,
            windowed=bool(doc.get("windowed", True)),
            window_sizes=tuple(int(w) for w in windows),
            slide_fraction=float(doc.get("slide_fraction", 0.5)),
            models=doc.get("models") or None,
            max_instructions=int(doc.get("max_instructions", 500_000_000)),
            translate=bool(doc.get("translate", True)),
            shards=int(doc.get("shards", 1)),
        )
    except (TypeError, ValueError) as err:
        raise ExperimentError(f"bad params value: {err}") from None
    if params["scale"] <= 0:
        raise ExperimentError(f"scale must be > 0, got {params['scale']}")
    if params["shards"] < 0:
        raise ExperimentError(
            f"shards must be >= 0 (0 = auto), got {params['shards']}")
    return params


def assemble_suite(params: dict, results: dict):
    """A :class:`SuiteResult` from ``{plan: result}``, exactly as
    ``Executor.run_suite`` would build it for these parameters."""
    from repro.harness.experiments import SuiteResult
    from repro.workloads import get_workload

    scale = float(params["scale"])
    names = (tuple(params["workloads"]) if params.get("workloads")
             else tuple(dict.fromkeys(plan.workload for plan in results)))
    suite = SuiteResult(
        scale=scale,
        workloads={name: get_workload(name, scale) for name in names},
        window_sizes=tuple(int(w) for w in params["window_sizes"]),
    )
    for plan, result in results.items():
        suite.configs[plan.config_key] = result
    return suite


def render_suite_artifacts(suite, *, windowed: bool) -> dict[str, str]:
    """Render the paper artifacts to text, byte-identical to what the
    CLI's ``run``/``report`` write with ``--out``."""
    from repro.harness.experiments import (
        run_figure1, run_figure2, run_table1, run_table2)

    artifacts = {
        "kernelCounts.txt": run_figure1(suite=suite).render() + "\n",
        "basicCPResult.txt": run_table1(suite=suite).render() + "\n",
        "scaledCPResult.txt": run_table2(suite=suite).render() + "\n",
    }
    if windowed:
        figure2 = run_figure2(suite=suite)
        artifacts["windowAverages.txt"] = (
            figure2.window_averages_text() + "\n")
        artifacts["meanILP.txt"] = figure2.render() + "\n"
    return artifacts


def _write_atomic(path: Path, text: str) -> None:
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class ServeApp:
    """The experiment service. See the module docstring for the shape.

    Args:
        cache_root: result-cache directory (required: the journal and
            artifacts live under it; the default cache dir applies when
            None).
        jobs: executor worker processes (None = one per CPU).
        queue_limit: bounded queue depth; submissions beyond it shed
            with 429 + Retry-After.
        client_quota: max outstanding (queued+running) jobs per client
            (0 disables).
        timeout: default per-plan wall-clock limit, used when a job has
            no deadline of its own.
        heartbeat: worker hang-detection deadline (as on the CLI).
        max_tasks_per_worker: the daemon's worker-hygiene knob.
        drain_grace: seconds SIGTERM waits for in-flight work.
        sse_queue: per-SSE-client buffered events before a slow client
            is disconnected.
        dist_port: TCP port for the remote-worker listener (0 = any
            free port; None disables the distributed tier's listener —
            jobs always run on the local pool).
        lease_timeout: seconds a remotely dispatched plan may stay
            unanswered before its lease expires and it is
            re-dispatched.
        node_heartbeat: silence budget before a connected-but-silent
            node is declared hung and dropped.
    """

    def __init__(self, cache_root=None, *, jobs: int | None = None,
                 queue_limit: int = 16, client_quota: int = 4,
                 timeout: float | None = None,
                 heartbeat: float | None = None,
                 max_tasks_per_worker: int = 0,
                 drain_grace: float = 10.0,
                 sse_queue: int = 256,
                 dist_port: int | None = None,
                 lease_timeout: float = 60.0,
                 node_heartbeat: float = 5.0):
        self.cache = ResultCache(cache_root)
        self.bus = EventBus()
        self.timing = TimingCollector()
        self.bus.subscribe(self.timing)
        self.default_timeout = timeout
        self.executor = Executor(
            jobs=jobs, cache=self.cache, events=self.bus, timeout=timeout,
            heartbeat=heartbeat, max_tasks_per_worker=max_tasks_per_worker,
            persistent=True)
        self.dist_port = dist_port
        self.dist_addr: tuple[str, int] | None = None
        self.dispatcher = Dispatcher(
            executor=self.executor, cache=self.cache, events=self.bus,
            lease_timeout=lease_timeout, node_heartbeat=node_heartbeat)
        self.queue = JobQueue(queue_limit)
        self.quotas = Quotas(client_quota)
        self.broker = SSEBroker(sse_queue)
        self.drain_grace = drain_grace
        self.jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._seq = 0
        self._current_job = ""
        self._running = False    # dispatcher alive
        self._ready = False      # accepting submissions
        self.draining = False
        self._stop = threading.Event()
        self._dispatcher: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drain_requested: asyncio.Event | None = None
        self.started = time.time()
        self.bus.subscribe(self._bridge)

    # -- event bridge ----------------------------------------------------

    def _bridge(self, event) -> None:
        """EventBus → SSE (runs on the dispatcher thread; publish hops
        to the loop and never blocks)."""
        self.broker.publish(event_doc(event, job=self._current_job))

    def _publish_job(self, job: Job) -> None:
        self.broker.publish({"event": "JobUpdate", "job": job.id,
                             "state": job.state, "error": job.error})

    # -- admission -------------------------------------------------------

    def _new_job_id(self) -> str:
        self._seq += 1
        stamp = time.strftime("%Y%m%d-%H%M%S")
        return f"j{stamp}-{os.getpid()}-{self._seq:04d}"

    def submit(self, doc: dict) -> tuple[int, dict, dict]:
        """Admit one submission; returns (http_status, body, headers).

        Runs on the event loop, so everything here is bookkeeping —
        queue, quotas, coalescing — never execution."""
        if self.draining or not self._running:
            # Riders whose coalesced job drained away re-submit; give
            # them the same backoff hint shedding gives.
            return 503, {"error": "draining; not accepting jobs"}, {
                "Retry-After": str(self.queue.retry_after())}
        try:
            params = canonical_params(doc.get("params", {}))
        except ExperimentError as err:
            return 400, {"error": str(err)}, {}
        client = str(doc.get("client", ""))
        try:
            priority = int(doc.get("priority", 5))
            job_timeout = doc.get("timeout")
            job_timeout = None if job_timeout is None else float(job_timeout)
        except (TypeError, ValueError) as err:
            return 400, {"error": f"bad priority/timeout: {err}"}, {}
        if job_timeout is not None and job_timeout <= 0:
            return 400, {"error": "timeout must be > 0 seconds"}, {}

        existing = self.queue.coalesce(params)
        if existing is not None:
            return 200, {"job": existing.id, "state": existing.state,
                         "coalesced": True}, {}

        retry = {"Retry-After": str(self.queue.retry_after())}
        try:
            self.quotas.acquire(client)
        except QuotaExceededError as err:
            return 429, {"error": str(err)}, retry
        job = Job(
            id=self._new_job_id(), params=params, client=client,
            priority=priority,
            deadline=(None if job_timeout is None
                      else time.monotonic() + job_timeout))
        try:
            # The queue-full *race*: capacity vanishing between the
            # admission check and the push is modelled by an injected
            # transient at this exact point.
            faults.check_daemon("serve", kinds=("transient",))
            self.queue.push(job)
        except QueueFullError as err:
            self.quotas.release(client)
            return 429, {"error": str(err)}, {
                "Retry-After": str(err.retry_after)}
        except faults.InjectedTransientError as err:
            self.quotas.release(client)
            return 429, {"error": f"admission race lost ({err}); retry"}, \
                retry
        with self._jobs_lock:
            self.jobs[job.id] = job
        # Journal at admission, not at dispatch: a 202 means the job is
        # durable, so a drain (or crash) with this job still *queued*
        # leaves it recoverable on the next start.
        try:
            journal = JobJournal.create(
                self.cache.root, params,
                total=len(suite_from_params(params)), run_id=job.id,
                extra={"job": job.id, "client": job.client,
                       "priority": job.priority})
            journal.close()
        except Exception:  # noqa: BLE001 — admission must not fail on
            pass           # journal hiccups; dispatch re-creates it
        self._publish_job(job)
        return 202, {"job": job.id, "state": job.state,
                     "queue_depth": self.queue.depth()}, {}

    # -- recovery --------------------------------------------------------

    def recover(self) -> list[str]:
        """Re-enqueue every journaled-but-unfinished job (after a crash
        or an over-grace drain). Returns the recovered job ids."""
        recovered = []
        for job_id in unfinished_jobs(self.cache.root):
            try:
                journal = JobJournal.load(self.cache.root, job_id)
            except ExperimentError:
                continue  # quarantined by the scan
            job = Job(
                id=job_id, params=dict(journal.params),
                client=str(journal.header.get("client", "")),
                priority=int(journal.header.get("priority", 5)),
                recovered=True)
            self.quotas.acquire_forced(job.client)
            try:
                self.queue.push(job)
            except QueueFullError:
                # More crashed jobs than queue slots: leave the rest
                # journaled; they recover on a later start.
                self.quotas.release(job.client)
                break
            with self._jobs_lock:
                self.jobs[job.id] = job
            recovered.append(job_id)
        return recovered

    # -- dispatch --------------------------------------------------------

    def start_dispatcher(self) -> None:
        if self._dispatcher is not None:
            return
        self._running = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher",
            daemon=True)
        self._dispatcher.start()

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.pop(timeout=0.2)
            if job is None:
                continue
            try:
                self._run_job(job)
            except BaseException:
                # _run_job handles job errors; anything escaping is a
                # daemon bug — fail the job rather than kill dispatch.
                if job.state in ("queued", "running"):
                    self._finish_job(job, "failed",
                                     error="dispatcher error")
        self._running = False

    def _run_job(self, job: Job) -> None:
        remaining = job.remaining()
        if remaining is not None and remaining <= 0:
            # Close out the admission-time journal: a shed job must not
            # come back from the dead as a recovered one.
            try:
                JobJournal.load(self.cache.root, job.id).finish()
            except ExperimentError:
                pass
            self._finish_job(
                job, "shed", error="deadline expired before dispatch")
            return
        job.state = "running"
        self._publish_job(job)
        journal = None
        started = time.monotonic()
        try:
            plans = suite_from_params(job.params)
            journal = self._job_journal(job, total=len(plans))
            # The chaos window: the job is journaled but not yet
            # dispatched. A crash here must be recovered on restart.
            faults.check_daemon("serve", kinds=("crash", "error"))
            self.bus.subscribe(journal.subscriber)
            self._current_job = job.id
            try:
                # Deadline propagation: the time left *now* becomes the
                # executor's per-plan wall-clock budget.
                self.executor.timeout = (remaining if remaining is not None
                                         else self.default_timeout)
                # The distributed tier: scatter across registered
                # worker nodes under journaled leases; with zero nodes
                # this is exactly executor.run(plans).
                results = self.dispatcher.run(plans, journal=journal)
            finally:
                self._current_job = ""
                self.bus.unsubscribe(journal.subscriber)
            suite = assemble_suite(job.params, results)
            windowed = bool(job.params.get("windowed", True))
            outdir = self.artifact_dir(job.id)
            outdir.mkdir(parents=True, exist_ok=True)
            for name, text in render_suite_artifacts(
                    suite, windowed=windowed).items():
                path = outdir / name
                _write_atomic(path, text)
                job.artifacts[name] = str(path)
            journal.finish()
            seconds = time.monotonic() - started
            job.summary = {
                "plans": len(plans),
                "seconds": round(seconds, 3),
                "journaled_done": len(journal.done),
            }
            self._finish_job(job, "done", seconds=seconds)
        except ReproError as err:
            self._finish_job(job, "failed",
                             error=f"{type(err).__name__}: {err}")
        except Exception as err:  # noqa: BLE001 — a job must never
            self._finish_job(job, "failed",  # take the dispatcher down
                             error=f"{type(err).__name__}: {err}")
        finally:
            if journal is not None:
                journal.close()

    def _job_journal(self, job: Job, total: int) -> JobJournal:
        # Every job normally has an admission-time journal; recovered
        # jobs have their original. A quarantined/corrupt (or, for a
        # journal-hiccup admission, missing) one is replaced fresh.
        try:
            return JobJournal.load(self.cache.root, job.id)
        except ExperimentError:
            pass
        return JobJournal.create(
            self.cache.root, job.params, total=total, run_id=job.id,
            extra={"job": job.id, "client": job.client,
                   "priority": job.priority})

    def _finish_job(self, job: Job, state: str, *, error: str = "",
                    seconds: float | None = None) -> None:
        job.state = state
        job.error = error
        self.queue.job_finished(job, seconds)
        self.quotas.release(job.client)
        job.done_event.set()
        self._publish_job(job)

    # -- paths -----------------------------------------------------------

    def artifact_dir(self, job_id: str) -> Path:
        return Path(self.cache.root) / "serve" / "artifacts" / job_id

    # -- status documents ------------------------------------------------

    def stats_doc(self) -> dict:
        with self._jobs_lock:
            states: dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        return {
            "uptime": round(time.time() - self.started, 1),
            "ready": self._ready and not self.draining,
            "draining": self.draining,
            "queue_depth": self.queue.depth(),
            "jobs": states,
            "quotas": self.quotas.snapshot(),
            "pool_workers": len(self.executor._pool_workers),
            "sse_disconnected_slow": self.broker.disconnected_slow,
            "dist": self.dispatcher.stats_doc(),
            "timing": self.timing.summary(),
        }

    def job_doc(self, job_id: str) -> dict | None:
        with self._jobs_lock:
            job = self.jobs.get(job_id)
        return None if job is None else job.to_doc()

    def jobs_doc(self) -> dict:
        with self._jobs_lock:
            docs = [job.to_doc() for job in self.jobs.values()]
        return {"jobs": docs, "queue_depth": self.queue.depth()}

    # -- drain / shutdown ------------------------------------------------

    def request_drain(self) -> None:
        """Begin graceful drain (thread- and signal-safe)."""
        self.draining = True
        loop, event = self._loop, self._drain_requested
        if loop is not None and event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass

    @staticmethod
    async def _call_blocking(fn, *args) -> None:
        """Run a blocking call off-loop — or on it when the interpreter
        is already shutting down (an atexit drain cannot spawn the
        default ThreadPoolExecutor; briefly blocking the loop there is
        harmless)."""
        try:
            await asyncio.get_running_loop().run_in_executor(
                None, fn, *args)
        except RuntimeError:
            fn(*args)

    async def _drain_and_stop(self, server) -> None:
        """Stop admitting, wait out in-flight work, retire the pool."""
        self._ready = False
        self.draining = True
        deadline = time.monotonic() + self.drain_grace
        while time.monotonic() < deadline:
            if self.queue.depth() == 0 and not self._current_job:
                break
            await asyncio.sleep(0.05)
        self._stop.set()
        if self._dispatcher is not None:
            await self._call_blocking(
                self._dispatcher.join, max(
                    0.5, deadline - time.monotonic() + 1.0))
        if self._dispatcher is None or not self._dispatcher.is_alive():
            # Only a quiesced executor can be closed gracefully; a
            # dispatcher still wedged in a job keeps its (daemonic)
            # workers, which die with the process. Its job is journaled
            # and recovers on the next start.
            await self._call_blocking(self.dispatcher.close)
            await self._call_blocking(self.executor.close)
        # Jobs still queued when the grace ran out: their admission-
        # time journals are unfinished, so the next start recovers
        # them. Unblock any in-process waiters/riders now.
        for job in self.queue.drain_remaining():
            job.error = ("drained before dispatch; journaled for "
                         "restart recovery")
            self.quotas.release(job.client)
            job.done_event.set()
            self._publish_job(job)
        self.broker.close_all()
        server.close()
        await server.wait_closed()

    # -- serving ---------------------------------------------------------

    def serve(self, host: str = "127.0.0.1", port: int = 8123,
              ready_file=None, on_ready=None) -> None:
        """Run the daemon until drained (blocks the calling thread)."""
        asyncio.run(self._serve_async(host, port, ready_file, on_ready))

    async def _serve_async(self, host, port, ready_file, on_ready) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._drain_requested = asyncio.Event()
        self.broker.bind(loop)
        recovered = self.recover()
        if self.dist_port is not None:
            self.dist_addr = self.dispatcher.start_listener(
                host, self.dist_port)
        self.start_dispatcher()
        server = await asyncio.start_server(self._handle, host, port)
        bound_port = server.sockets[0].getsockname()[1]
        try:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self.request_drain)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread (tests) or platform without support
        if ready_file is not None:
            _write_atomic(Path(ready_file), json.dumps(
                {"host": host, "port": bound_port, "pid": os.getpid(),
                 "dist_port": (self.dist_addr[1]
                               if self.dist_addr else None),
                 "recovered": recovered}) + "\n")
        self._ready = True
        if on_ready is not None:
            on_ready(host, bound_port)
        if self.draining:  # drain requested before the loop existed
            self._drain_requested.set()
        await self._drain_requested.wait()
        await self._drain_and_stop(server)

    def start_background(self, host: str = "127.0.0.1",
                         port: int = 0) -> tuple[str, int]:
        """Run the daemon on a background thread (tests); returns the
        bound (host, port) once it is accepting."""
        ready = threading.Event()
        info: dict = {}

        def _on_ready(h, p):
            info["addr"] = (h, p)
            ready.set()

        self._bg = threading.Thread(
            target=self.serve, args=(host, port),
            kwargs={"on_ready": _on_ready}, daemon=True)
        self._bg.start()
        if not ready.wait(60.0):
            raise ExperimentError("serve daemon failed to start in 60s")
        return info["addr"]

    def stop_background(self, timeout: float = 30.0) -> None:
        self.request_drain()
        bg = getattr(self, "_bg", None)
        if bg is not None:
            bg.join(timeout)

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=10.0)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                    asyncio.LimitOverrunError, ConnectionError):
                return
            try:
                request, headers = _parse_head(head)
                method, target = request
            except ValueError:
                await _respond(writer, 400, {"error": "malformed request"})
                return
            body = b""
            length = int(headers.get("content-length", "0") or 0)
            if length:
                if length > 1 << 20:
                    await _respond(writer, 413, {"error": "body too large"})
                    return
                body = await reader.readexactly(length)
            await self._route(writer, method, target, body)
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _route(self, writer, method: str, target: str,
                     body: bytes) -> None:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        if method == "GET" and path == "/healthz":
            await _respond(writer, 200, {"ok": True,
                                         "draining": self.draining})
        elif method == "GET" and path == "/readyz":
            if self._ready and not self.draining:
                await _respond(writer, 200, {"ready": True})
            else:
                await _respond(writer, 503, {
                    "ready": False,
                    "reason": "draining" if self.draining else "starting"})
        elif method == "GET" and path == "/stats":
            await _respond(writer, 200, self.stats_doc())
        elif method == "GET" and path == "/nodes":
            await _respond(writer, 200, self.dispatcher.stats_doc())
        elif (method == "POST" and len(parts) == 3
                and parts[0] == "nodes" and parts[2] == "drain"):
            if self.dispatcher.drain_node(parts[1]):
                await _respond(writer, 202, {"draining": parts[1]})
            else:
                await _respond(writer, 404, {
                    "error": f"no live node {parts[1]!r}"})
        elif method == "POST" and path == "/drain":
            self.request_drain()
            await _respond(writer, 202, {"draining": True,
                                         "grace": self.drain_grace})
        elif method == "POST" and path == "/jobs":
            try:
                doc = json.loads(body.decode("utf-8")) if body else {}
            except ValueError:
                await _respond(writer, 400,
                               {"error": "body is not valid JSON"})
                return
            status, payload, extra = self.submit(doc)
            await _respond(writer, status, payload, extra_headers=extra)
        elif method == "GET" and path == "/jobs":
            await _respond(writer, 200, self.jobs_doc())
        elif method == "GET" and path == "/events":
            await self._stream_events(writer, None)
        elif method == "GET" and len(parts) >= 2 and parts[0] == "jobs":
            job_id = parts[1]
            doc = self.job_doc(job_id)
            if doc is None:
                await _respond(writer, 404,
                               {"error": f"no such job {job_id!r}"})
            elif len(parts) == 2:
                await _respond(writer, 200, doc)
            elif parts[2] == "events" and len(parts) == 3:
                await self._stream_events(writer, job_id)
            elif parts[2] == "artifacts" and len(parts) == 3:
                await _respond(writer, 200,
                               {"job": job_id,
                                "artifacts": sorted(
                                    self.jobs[job_id].artifacts)})
            elif parts[2] == "artifacts" and len(parts) == 4:
                await self._send_artifact(writer, job_id, parts[3])
            else:
                await _respond(writer, 404, {"error": "not found"})
        else:
            await _respond(writer, 404, {"error": "not found"})

    async def _send_artifact(self, writer, job_id: str,
                             name: str) -> None:
        with self._jobs_lock:
            job = self.jobs.get(job_id)
            path = job.artifacts.get(name) if job is not None else None
        if path is None or not Path(path).is_file():
            await _respond(writer, 404,
                           {"error": f"no artifact {name!r} for job "
                                     f"{job_id!r}"})
            return
        data = Path(path).read_bytes()
        await _respond(writer, 200, None, raw=data,
                       content_type="text/plain; charset=utf-8")

    async def _stream_events(self, writer, job_id: str | None) -> None:
        client = self.broker.subscribe(job_id)
        spec = faults.fire("serve", ("hang",))
        if spec is not None:
            client.stall_seconds = spec.seconds
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n"
                     b": connected\n\n")
        try:
            await writer.drain()
            if client.stall_seconds:
                # Injected stalled client: stop draining; the broker
                # overflows this queue and disconnects us.
                await asyncio.sleep(client.stall_seconds)
            while True:
                try:
                    frame = await asyncio.wait_for(client.queue.get(),
                                                   timeout=1.0)
                except asyncio.TimeoutError:
                    if client.dead or self.draining:
                        break
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                if frame is None or client.dead:
                    break
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self.broker.unsubscribe(client)


def _parse_head(head: bytes) -> tuple[tuple[str, str], dict]:
    lines = head.decode("latin-1").split("\r\n")
    method, target, _version = lines[0].split(" ", 2)
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            key, value = line.split(":", 1)
            headers[key.strip().lower()] = value.strip()
    return (method.upper(), target), headers


_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 413: "Payload Too Large",
                429: "Too Many Requests", 503: "Service Unavailable"}


async def _respond(writer, status: int, doc: dict | None, *,
                   raw: bytes | None = None,
                   content_type: str = "application/json",
                   extra_headers: dict | None = None) -> None:
    payload = raw if raw is not None else (
        json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
    head = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            "Connection: close"]
    for key, value in (extra_headers or {}).items():
        head.append(f"{key}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                 + payload)
    await writer.drain()
