"""Bounded priority job queue with coalescing, for the serve daemon.

Admission control lives here: the queue is *bounded* (a full queue
raises :class:`QueueFullError` carrying a Retry-After estimate instead
of queueing unboundedly), prioritized (lower ``priority`` number runs
first, FIFO within a priority), and *coalescing* — a submission whose
canonical parameters match a job already queued or running returns that
job instead of enqueueing a duplicate execution.

The queue is thread-safe and deliberately dumb about policy it does not
own: deadlines are checked by the dispatcher (which owns job
bookkeeping) and quotas by :mod:`repro.serve.quotas`.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import ExperimentError

__all__ = ["Job", "JobQueue", "QueueFullError", "params_fingerprint"]


def params_fingerprint(params: dict) -> str:
    """Content address of a canonical suite-params doc (the coalescing
    key: byte-identical params ⇒ byte-identical artifacts)."""
    blob = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class QueueFullError(ExperimentError):
    """The bounded queue is full; ``retry_after`` is the shed hint in
    seconds (HTTP 429 + Retry-After)."""

    def __init__(self, limit: int, retry_after: int):
        self.limit = limit
        self.retry_after = retry_after
        super().__init__(
            f"job queue is full ({limit} queued); retry in "
            f"~{retry_after}s")


@dataclass
class Job:
    """One submitted suite: parameters, admission metadata, outcome."""

    id: str
    params: dict
    client: str = ""
    priority: int = 5
    #: Submission wall-clock time (for display only).
    submitted: float = field(default_factory=time.time)
    #: Absolute monotonic deadline, or None for no deadline.
    deadline: float | None = None
    #: queued | running | done | failed | shed
    state: str = "queued"
    error: str = ""
    #: Rendered artifact name -> on-disk path (absolute, str).
    artifacts: dict[str, str] = field(default_factory=dict)
    #: Execution summary (executed/cached/seconds/...) once done.
    summary: dict = field(default_factory=dict)
    #: True when this job was re-enqueued by the restart recovery scan.
    recovered: bool = False
    #: Set when the job reaches a terminal state.
    done_event: threading.Event = field(default_factory=threading.Event)

    @property
    def fingerprint(self) -> str:
        return params_fingerprint(self.params)

    def remaining(self, now: float | None = None) -> float | None:
        """Seconds until the deadline (negative = expired), or None."""
        if self.deadline is None:
            return None
        return self.deadline - (time.monotonic() if now is None else now)

    def to_doc(self) -> dict:
        doc = {
            "job": self.id,
            "state": self.state,
            "client": self.client,
            "priority": self.priority,
            "submitted": self.submitted,
            "params": self.params,
            "recovered": self.recovered,
        }
        if self.deadline is not None:
            remaining = self.remaining()
            doc["deadline_remaining"] = round(max(0.0, remaining), 3)
        if self.error:
            doc["error"] = self.error
        if self.artifacts:
            doc["artifacts"] = sorted(self.artifacts)
        if self.summary:
            doc["summary"] = self.summary
        return doc


class JobQueue:
    """Thread-safe bounded priority queue of :class:`Job` values."""

    def __init__(self, limit: int = 16):
        if limit < 1:
            raise ExperimentError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = 0
        self._cond = threading.Condition()
        #: fingerprint -> queued-or-running job, for coalescing.
        self._in_flight: dict[str, Job] = {}
        #: EWMA of completed-job wall seconds (Retry-After estimate).
        self._ewma_seconds = 30.0

    # -- admission -------------------------------------------------------

    def coalesce(self, params: dict) -> Job | None:
        """The queued-or-running job identical submissions ride, if any."""
        with self._cond:
            return self._in_flight.get(params_fingerprint(params))

    def push(self, job: Job) -> None:
        """Enqueue (or raise :class:`QueueFullError` when full)."""
        with self._cond:
            if len(self._heap) >= self.limit:
                raise QueueFullError(self.limit, self.retry_after())
            self._seq += 1
            heapq.heappush(self._heap, (job.priority, self._seq, job))
            self._in_flight[job.fingerprint] = job
            self._cond.notify()

    def pop(self, timeout: float | None = None) -> Job | None:
        """Highest-priority job, blocking up to ``timeout``; None on
        timeout. The job stays registered for coalescing until
        :meth:`job_finished`."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cond:
            while not self._heap:
                rest = (None if deadline is None
                        else deadline - time.monotonic())
                if rest is not None and rest <= 0:
                    return None
                self._cond.wait(rest)
            return heapq.heappop(self._heap)[2]

    def job_finished(self, job: Job, seconds: float | None = None) -> None:
        """Drop the job from the coalescing map; fold its duration into
        the Retry-After estimate."""
        with self._cond:
            if self._in_flight.get(job.fingerprint) is job:
                del self._in_flight[job.fingerprint]
            if seconds is not None and seconds > 0:
                self._ewma_seconds = (0.7 * self._ewma_seconds
                                      + 0.3 * seconds)

    # -- introspection ---------------------------------------------------

    def depth(self) -> int:
        with self._cond:
            return len(self._heap)

    def retry_after(self) -> int:
        """Shed hint: roughly how long until a queue slot frees up."""
        backlog = max(1, len(self._in_flight))
        return max(1, int(self._ewma_seconds * backlog / max(1, self.limit)))

    def drain_remaining(self) -> list[Job]:
        """Empty the queue (graceful-drain bookkeeping: jobs still
        queued at shutdown stay journaled-or-unjournaled as they are and
        are surfaced to the caller)."""
        with self._cond:
            jobs = [job for _p, _s, job in sorted(self._heap)]
            self._heap.clear()
            return jobs
