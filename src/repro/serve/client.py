"""Stdlib HTTP client for the serve daemon.

Used by the test suite, the fuzzer's ``diff_serve`` oracle, and the CI
smoke — and small enough to read as API documentation for anyone
writing their own client (everything is plain HTTP/JSON; see
``docs/serve.md`` for the endpoint table and a curl quickstart).
"""

from __future__ import annotations

import http.client
import json
import time

from repro.common.errors import ExperimentError

__all__ = ["ServeClient", "ServeError"]


class ServeError(ExperimentError):
    """A non-2xx response. ``status`` is the HTTP code; ``retry_after``
    is the shed hint in seconds when the server sent one (429/503)."""

    def __init__(self, status: int, body: dict, retry_after: int | None):
        self.status = status
        self.body = body
        self.retry_after = retry_after
        hint = f" (retry after {retry_after}s)" if retry_after else ""
        super().__init__(
            f"HTTP {status}: {body.get('error', body)}{hint}")


class ServeClient:
    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------

    def _request(self, method: str, path: str, doc: dict | None = None,
                 ) -> tuple[int, dict, bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = (json.dumps(doc).encode("utf-8")
                    if doc is not None else None)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            retry_after = response.getheader("Retry-After")
            headers_doc = {"retry_after": (int(retry_after)
                                           if retry_after else None)}
            return response.status, headers_doc, payload
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              doc: dict | None = None) -> dict:
        status, headers, payload = self._request(method, path, doc)
        try:
            parsed = json.loads(payload.decode("utf-8"))
        except ValueError:
            parsed = {"error": payload.decode("utf-8", "replace")[:200]}
        if status >= 400:
            raise ServeError(status, parsed, headers["retry_after"])
        return parsed

    # -- API -------------------------------------------------------------

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def ready(self) -> bool:
        status, _headers, _payload = self._request("GET", "/readyz")
        return status == 200

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def submit(self, params: dict, *, client: str = "",
               priority: int = 5,
               timeout: float | None = None) -> dict:
        doc: dict = {"params": params, "client": client,
                     "priority": priority}
        if timeout is not None:
            doc["timeout"] = timeout
        return self._json("POST", "/jobs", doc)

    def jobs(self) -> dict:
        return self._json("GET", "/jobs")

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll: float = 0.2) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["state"] in ("done", "failed", "shed"):
                return doc
            if time.monotonic() >= deadline:
                raise ExperimentError(
                    f"job {job_id} still {doc['state']!r} after "
                    f"{timeout:g}s")
            time.sleep(poll)

    def artifacts(self, job_id: str) -> list[str]:
        return self._json("GET", f"/jobs/{job_id}/artifacts")["artifacts"]

    def artifact(self, job_id: str, name: str) -> str:
        status, headers, payload = self._request(
            "GET", f"/jobs/{job_id}/artifacts/{name}")
        if status >= 400:
            raise ServeError(status,
                             {"error": payload.decode("utf-8", "replace")},
                             headers["retry_after"])
        return payload.decode("utf-8")

    def drain(self) -> dict:
        return self._json("POST", "/drain")

    def nodes(self) -> dict:
        """Distributed-tier status: registered nodes + counters."""
        return self._json("GET", "/nodes")

    def drain_node(self, name: str) -> dict:
        """Gracefully drain one worker node (finish current task,
        return leases, disconnect)."""
        return self._json("POST", f"/nodes/{name}/drain")

    def events(self, job_id: str | None = None, *,
               max_events: int | None = None,
               time_budget: float | None = None):
        """Yield parsed SSE event documents (a generator holding one
        streaming connection; stops on disconnect, ``max_events``, or
        ``time_budget`` seconds)."""
        path = f"/jobs/{job_id}/events" if job_id else "/events"
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=min(self.timeout, time_budget or self.timeout))
        seen = 0
        started = time.monotonic()
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            if response.status != 200:
                raise ServeError(response.status,
                                 {"error": "event stream refused"}, None)
            while True:
                if time_budget is not None and \
                        time.monotonic() - started > time_budget:
                    return
                try:
                    line = response.fp.readline()
                except (TimeoutError, OSError):
                    return
                if not line:
                    return
                if line.startswith(b"data:"):
                    try:
                        yield json.loads(line[5:].strip().decode("utf-8"))
                    except ValueError:
                        continue
                    seen += 1
                    if max_events is not None and seen >= max_events:
                        return
        finally:
            conn.close()
