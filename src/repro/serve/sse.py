"""EventBus → server-sent-events bridge with slow-client protection.

The executor (and the dispatcher thread it runs on) must never block on
a client socket. The bridge therefore decouples the two sides with one
bounded :class:`asyncio.Queue` per connected client:

- the dispatcher thread calls :meth:`SSEBroker.publish`, which hops
  onto the event loop with ``call_soon_threadsafe`` and *drops* the
  event for any client whose queue is full — marking that client dead
  (its writer coroutine wakes on a sentinel and closes the connection).
  A stalled ``curl`` costs its own stream, never the suite;
- each client's writer coroutine drains its queue onto the socket at
  whatever pace the socket tolerates.

The ``serve`` fault site's ``hang`` kind models the stalled client: a
firing spec makes the writer sleep instead of draining, so chaos tests
can force the overflow → disconnect path deterministically.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading

__all__ = ["SSEBroker", "SSEClient", "event_doc", "format_sse"]


def event_doc(event, job: str = "") -> dict:
    """A JSON-safe document for one EventBus event (plans collapse to
    their ``describe()`` strings; anything else non-serializable to
    ``str``)."""
    doc: dict = {"event": type(event).__name__}
    if job:
        doc["job"] = job
    for field in dataclasses.fields(event):
        value = getattr(event, field.name)
        if hasattr(value, "describe") and callable(value.describe):
            doc[field.name] = value.describe()
            continue
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            doc[field.name] = str(value)
        else:
            doc[field.name] = value
    return doc


def format_sse(doc: dict) -> bytes:
    """One ``text/event-stream`` frame for ``doc``."""
    payload = json.dumps(doc, sort_keys=True)
    return (f"event: {doc.get('event', 'message')}\n"
            f"data: {payload}\n\n").encode("utf-8")


class SSEClient:
    """One connected event-stream consumer."""

    def __init__(self, job_id: str | None, maxsize: int):
        #: Only events for this job (None = the global stream).
        self.job_id = job_id
        self.queue: asyncio.Queue = asyncio.Queue(maxsize)
        #: Set by the broker when this client's queue overflowed; the
        #: writer coroutine closes the connection on its next wake.
        self.dead = False
        #: Events dropped on the floor for this client (telemetry).
        self.dropped = 0
        #: Injected stalled-socket simulation (``serve``/``hang``).
        self.stall_seconds = 0.0


class SSEBroker:
    """Fan-out point between the dispatcher thread and SSE writers."""

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self._clients: list[SSEClient] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._lock = threading.Lock()
        #: Clients disconnected for falling behind (telemetry).
        self.disconnected_slow = 0

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach to the serving event loop (publish is a no-op until
        bound, so the dispatcher can run without an HTTP front end)."""
        self._loop = loop

    # -- event-loop side -------------------------------------------------

    def subscribe(self, job_id: str | None = None) -> SSEClient:
        client = SSEClient(job_id, self.maxsize)
        with self._lock:
            self._clients.append(client)
        return client

    def unsubscribe(self, client: SSEClient) -> None:
        with self._lock:
            if client in self._clients:
                self._clients.remove(client)

    def _deliver(self, frame: bytes, job: str) -> None:
        """On the loop: enqueue for every matching client; overflow
        disconnects that client instead of blocking anyone."""
        with self._lock:
            clients = list(self._clients)
        for client in clients:
            if client.dead:
                continue
            if client.job_id is not None and client.job_id != job:
                continue
            try:
                client.queue.put_nowait(frame)
            except asyncio.QueueFull:
                client.dead = True
                client.dropped += 1
                self.disconnected_slow += 1
                # Make room for the wake-up sentinel, then wake the
                # writer so it can close the connection.
                while True:
                    try:
                        client.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                client.queue.put_nowait(None)

    # -- dispatcher-thread side ------------------------------------------

    def publish(self, doc: dict) -> None:
        """Thread-safe, non-blocking publish of one event document."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        frame = format_sse(doc)
        job = str(doc.get("job", ""))
        try:
            loop.call_soon_threadsafe(self._deliver, frame, job)
        except RuntimeError:
            pass  # loop shut down mid-publish; the stream is gone anyway

    def close_all(self) -> None:
        """Wake every writer with a sentinel (drain/shutdown)."""
        loop = self._loop

        def _close():
            with self._lock:
                clients = list(self._clients)
            for client in clients:
                client.dead = True
                try:
                    client.queue.put_nowait(None)
                except asyncio.QueueFull:
                    pass
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(_close)
            except RuntimeError:
                pass
