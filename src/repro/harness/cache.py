"""Content-addressed on-disk cache for experiment results.

Layout (under ``~/.cache/repro-isa`` by default, overridable with
``--cache-dir`` or ``$REPRO_ISA_CACHE_DIR``)::

    <root>/<k0k1>/<key>.json          result entries
    <root>/quarantine/                corrupt result entries, moved aside
    <root>/traces/<k0k1>/<key>.rtrc.z trace entries
    <root>/traces/quarantine/         corrupt trace entries
    <root>/blocks/<k0k1>/<key>.rblk.z compiled-block/summary source entries
    <root>/blocks/quarantine/         corrupt block entries
    <root>/runs/<run-id>.jsonl        suite run journals (checkpoint.py)

where ``key = plan.fingerprint()`` — a sha256 over the canonical plan,
the *content* of the core model it references, and the schema versions of
every serialized result type (see :meth:`ExperimentPlan.fingerprint`).
Invalidation is therefore automatic for anything the key covers: a
different scale, window list, model latency or result schema is simply a
different key. Changes the key cannot see (edits to the simulator or the
workload generators themselves) require an explicit
``repro-isa-compare cache clear``.

Integrity and atomicity — the robustness contract:

* every result entry carries a ``check`` envelope (byte length and
  CRC-32 of the canonical result payload); every trace entry carries a
  binary envelope (magic, version, CRC-32 and length of the
  decompressed stream). Reads verify before trusting.
* a corrupt or unreadable-but-present entry is **quarantined**: moved
  once into ``quarantine/`` (never re-parsed on later runs), counted in
  ``stats.quarantined`` and reported via a
  :class:`~repro.harness.events.CacheCorruption` event when an event bus
  is attached. A quarantined key is a plain miss afterwards, so the next
  run re-simulates and re-writes a good entry.
* writes go to a unique per-process tmp name
  (``<name>.<pid>.<n>.tmp`` — two concurrent writers of the same key
  can no longer interleave into one tmp file), are fsynced, then
  ``os.replace``d into place; a killed run never leaves a truncated
  entry, only a stray ``*.tmp`` that ``verify()`` sweeps.
* ``repro-isa-compare cache verify`` (:meth:`ResultCache.verify`) checks
  every entry at both levels, quarantines failures, and removes stray
  tmp files.

The cache is three-level. Below the result entries a :class:`TraceStore`
keeps compressed retirement traces keyed by
:meth:`ExperimentPlan.trace_fingerprint` — the *simulation* identity only
(workload, scale, ISA, profile, budget). Changing analysis parameters
(window sizes, slide fraction, core model) misses at the result level
but hits at the trace level, so the executor replays the recorded stream
through the fused analysis engine instead of re-simulating. Below that, a
:class:`BlockStore` persists the generated block/summary *source texts*
keyed by image fingerprint + translator versions
(:func:`repro.harness.warmcache.block_key`): compiled block functions are
closures over live machine state and cannot be pickled, but their sources
are deterministic per image, so a cold worker preloads them into the
translator's compile cache and skips every ``compile()`` call — the
persistent half of the warm-worker-pool translation reuse.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import struct
import time
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.common.errors import ExperimentError
from repro.harness import faults
from repro.harness.events import CacheCorruption
from repro.harness.plan import ExperimentPlan

if TYPE_CHECKING:
    from repro.harness.experiments import ConfigResult

#: Bump to orphan every existing cache entry (layout/envelope changes).
#: v2: integrity envelope (``check`` field / trace header) + quarantine.
#: v3: results store the nested ConfigResult v2 ("analysis") layout.
#: Entries in any still-readable format keep validating (the result
#: schemas are part of the plan fingerprint, so old-layout entries are
#: simply never looked up for new plans — but ``ls``/``verify`` must not
#: quarantine them as corrupt).
CACHE_FORMAT = 3
_READABLE_FORMATS = frozenset({2, CACHE_FORMAT})

#: Trace entry envelope: magic, version u8, crc32 u32 and length u64 of
#: the *decompressed* stream, then the zlib data.
TRACE_MAGIC = b"RTRZ"
_TRACE_HDR = struct.Struct("<4sBIQ")
TRACE_ENVELOPE_VERSION = 1

#: Block-source entries (third cache level) share the trace header
#: layout under their own magic so a blocks/ file misfiled as a trace
#: (or vice versa) is rejected by magic, not by luck.
BLOCK_MAGIC = b"RBLK"
BLOCK_ENVELOPE_VERSION = 1

#: Unique-per-process tmp suffixes (satellite fix: two processes writing
#: the same key used to collide on one ``with_suffix`` tmp name).
_TMP_COUNTER = itertools.count(1)


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_ISA_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-isa``, else
    ``~/.cache/repro-isa``."""
    env = os.environ.get("REPRO_ISA_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro-isa"


def _unique_tmp(path: pathlib.Path) -> pathlib.Path:
    """A collision-free sibling tmp name for an atomic write of ``path``."""
    return path.parent / f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"


def _write_atomic(path: pathlib.Path, data: bytes) -> None:
    """Unique tmp + fsync + ``os.replace``: concurrent-writer-safe and
    crash-safe (a torn write can only ever be a stray tmp file)."""
    tmp = _unique_tmp(path)
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _result_payload(result_doc: dict) -> bytes:
    """Canonical bytes of the result payload, the basis of the ``check``
    envelope (any mutation of a stored value changes the recomputed
    CRC/length and is caught at read time)."""
    return json.dumps(result_doc, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0  # corrupt/unreadable entries encountered (count as misses)
    quarantined: int = 0  # corrupt entries moved aside, never re-parsed

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "errors": self.errors,
                "quarantined": self.quarantined}


@dataclass
class CacheEntry:
    """Metadata for one on-disk entry (``cache ls``)."""

    key: str
    path: pathlib.Path
    plan: ExperimentPlan | None
    created: float
    seconds: float
    bytes: int


def _quarantine_file(path: pathlib.Path, root: pathlib.Path) -> pathlib.Path:
    """Move ``path`` into ``root/quarantine/`` under a non-clobbering
    name; returns the destination (best effort: unlinks on move failure
    so a corrupt entry is never re-parsed either way)."""
    qdir = root / "quarantine"
    qdir.mkdir(parents=True, exist_ok=True)
    dest = qdir / path.name
    n = 0
    while dest.exists():
        n += 1
        dest = qdir / f"{path.name}.{n}"
    try:
        os.replace(path, dest)
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass
    return dest


class TraceStore:
    """Get/put compressed retirement-trace blobs keyed by trace
    fingerprint (the second cache level; see the module docstring).

    ``events`` (an :class:`~repro.harness.events.EventBus`) receives
    :class:`CacheCorruption` on quarantine; None keeps the store silent
    (workers run without a bus — their parent re-reads and reports).
    """

    def __init__(self, root: str | os.PathLike, events=None):
        self.root = pathlib.Path(root)
        self.stats = CacheStats()
        self.events = events

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.rtrc.z"

    def _emit(self, event) -> None:
        if self.events is not None:
            self.events.emit(event)

    # -- read ------------------------------------------------------------

    def _decode(self, raw: bytes) -> bytes:
        """Envelope-verified decompression; raises ValueError on any
        integrity failure."""
        if len(raw) < _TRACE_HDR.size:
            raise ValueError("trace entry shorter than its envelope")
        magic, version, crc, length = _TRACE_HDR.unpack_from(raw)
        if magic != TRACE_MAGIC:
            raise ValueError("bad trace envelope magic")
        if version != TRACE_ENVELOPE_VERSION:
            raise ValueError(f"trace envelope version {version}")
        try:
            blob = zlib.decompress(raw[_TRACE_HDR.size:])
        except zlib.error as err:
            raise ValueError(f"corrupt zlib stream: {err}") from None
        if len(blob) != length:
            raise ValueError(f"trace length {len(blob)} != {length} recorded")
        if zlib.crc32(blob) != crc:
            raise ValueError("trace checksum mismatch")
        return blob

    def _quarantine(self, path: pathlib.Path, reason: str) -> None:
        dest = _quarantine_file(path, self.root)
        self.stats.quarantined += 1
        self._emit(CacheCorruption(level="trace", key=path.name.split(".")[0],
                                   path=str(dest), reason=reason))

    def get(self, key: str) -> bytes | None:
        """The stored trace bytes (decompressed and verified), or None on
        a miss. Corrupt entries are quarantined — read once, moved,
        never re-parsed."""
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            self.stats.errors += 1
            return None
        try:
            blob = self._decode(raw)
        except ValueError as err:
            self.stats.misses += 1
            self.stats.errors += 1
            self._quarantine(path, str(err))
            return None
        self.stats.hits += 1
        return blob

    # -- write -----------------------------------------------------------

    def put(self, key: str, blob: bytes) -> pathlib.Path:
        """Store ``blob`` in a checksummed envelope (atomic, fsynced)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = _TRACE_HDR.pack(TRACE_MAGIC, TRACE_ENVELOPE_VERSION,
                               zlib.crc32(blob), len(blob))
        data += zlib.compress(blob, 1)
        if faults.active() is not None:
            data = faults.corrupt("cache-trace-write", data)
            if faults.fire("cache-tmp-leftover") is not None:
                _leftover_tmp(path)
        _write_atomic(path, data)
        self.stats.puts += 1
        return path

    # -- maintenance -----------------------------------------------------

    def _files(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if sub.is_dir() and len(sub.name) == 2:
                yield from sorted(sub.glob("*.rtrc.z"))

    def verify(self) -> dict:
        """Check every entry's envelope; quarantine failures. Returns
        ``{"checked": n, "ok": n, "quarantined": n}``."""
        report = {"checked": 0, "ok": 0, "quarantined": 0}
        for path in list(self._files()):
            report["checked"] += 1
            try:
                self._decode(path.read_bytes())
            except (OSError, ValueError) as err:
                self.stats.errors += 1
                self._quarantine(path, str(err))
                report["quarantined"] += 1
            else:
                report["ok"] += 1
        return report

    def disk_stats(self) -> dict:
        count = 0
        total = 0
        for path in self._files():
            count += 1
            total += path.stat().st_size
        return {"entries": count, "bytes": total, "root": str(self.root)}

    def clear(self) -> int:
        removed = 0
        for path in list(self._files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            for sub in self.root.iterdir():
                if sub.is_dir() and len(sub.name) == 2:
                    try:
                        sub.rmdir()
                    except OSError:
                        pass
        removed += _clear_quarantine(self.root)
        return removed


class BlockStore:
    """Get/put compiled-block/summary source documents keyed by
    :func:`repro.harness.warmcache.block_key` (the third cache level).

    An entry is a JSON document ``{"v": 1, "sources": [...],
    "cp_sources": [...]}`` — the deterministic generated sources of an
    image's translated blocks and summary chain-stitch functions —
    stored under the same integrity contract as traces: a binary
    envelope (magic, version, CRC-32 and length of the decompressed
    payload), atomic fsynced writes, and quarantine-on-corruption.
    """

    def __init__(self, root: str | os.PathLike, events=None):
        self.root = pathlib.Path(root)
        self.stats = CacheStats()
        self.events = events

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.rblk.z"

    def _emit(self, event) -> None:
        if self.events is not None:
            self.events.emit(event)

    # -- read ------------------------------------------------------------

    def _decode(self, raw: bytes) -> dict:
        """Envelope-verified decompression + parse; raises ValueError on
        any integrity failure."""
        if len(raw) < _TRACE_HDR.size:
            raise ValueError("block entry shorter than its envelope")
        magic, version, crc, length = _TRACE_HDR.unpack_from(raw)
        if magic != BLOCK_MAGIC:
            raise ValueError("bad block envelope magic")
        if version != BLOCK_ENVELOPE_VERSION:
            raise ValueError(f"block envelope version {version}")
        try:
            blob = zlib.decompress(raw[_TRACE_HDR.size:])
        except zlib.error as err:
            raise ValueError(f"corrupt zlib stream: {err}") from None
        if len(blob) != length:
            raise ValueError(f"block length {len(blob)} != {length} recorded")
        if zlib.crc32(blob) != crc:
            raise ValueError("block checksum mismatch")
        try:
            doc = json.loads(blob)
        except ValueError as err:
            raise ValueError(f"unparseable block JSON: {err}") from None
        if not isinstance(doc, dict) or doc.get("v") != 1:
            raise ValueError(f"block doc version {doc.get('v') if isinstance(doc, dict) else None!r}")
        return doc

    def _quarantine(self, path: pathlib.Path, reason: str) -> None:
        dest = _quarantine_file(path, self.root)
        self.stats.quarantined += 1
        self._emit(CacheCorruption(level="block", key=path.name.split(".")[0],
                                   path=str(dest), reason=reason))

    def get(self, key: str) -> dict | None:
        """The stored block-source document (verified), or None on a
        miss. Corrupt entries are quarantined, never re-parsed."""
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            self.stats.errors += 1
            return None
        try:
            doc = self._decode(raw)
        except ValueError as err:
            self.stats.misses += 1
            self.stats.errors += 1
            self._quarantine(path, str(err))
            return None
        self.stats.hits += 1
        return doc

    # -- write -----------------------------------------------------------

    def put(self, key: str, sources, cp_sources=()) -> pathlib.Path:
        """Store the source lists in a checksummed envelope (atomic)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"v": 1, "key": key, "sources": sorted(sources),
               "cp_sources": sorted(cp_sources)}
        blob = json.dumps(doc, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        data = _TRACE_HDR.pack(BLOCK_MAGIC, BLOCK_ENVELOPE_VERSION,
                               zlib.crc32(blob), len(blob))
        data += zlib.compress(blob, 1)
        _write_atomic(path, data)
        self.stats.puts += 1
        return path

    # -- maintenance -----------------------------------------------------

    def _files(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if sub.is_dir() and len(sub.name) == 2:
                yield from sorted(sub.glob("*.rblk.z"))

    def verify(self) -> dict:
        """Check every entry's envelope; quarantine failures."""
        report = {"checked": 0, "ok": 0, "quarantined": 0}
        for path in list(self._files()):
            report["checked"] += 1
            try:
                self._decode(path.read_bytes())
            except (OSError, ValueError) as err:
                self.stats.errors += 1
                self._quarantine(path, str(err))
                report["quarantined"] += 1
            else:
                report["ok"] += 1
        return report

    def disk_stats(self) -> dict:
        count = 0
        total = 0
        for path in self._files():
            count += 1
            total += path.stat().st_size
        return {"entries": count, "bytes": total, "root": str(self.root)}

    def clear(self) -> int:
        removed = 0
        for path in list(self._files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            for sub in self.root.iterdir():
                if sub.is_dir() and len(sub.name) == 2:
                    try:
                        sub.rmdir()
                    except OSError:
                        pass
        removed += _clear_quarantine(self.root)
        return removed


def _leftover_tmp(path: pathlib.Path) -> None:
    """Fault-injection helper: simulate a crashed writer's stray tmp."""
    (path.parent / f"{path.name}.{os.getpid()}.crashed.tmp").write_bytes(
        b"stray tmp left by injected crash")


def _clear_quarantine(root: pathlib.Path) -> int:
    qdir = root / "quarantine"
    removed = 0
    if qdir.is_dir():
        for path in qdir.iterdir():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            qdir.rmdir()
        except OSError:
            pass
    return removed


class ResultCache:
    """Get/put :class:`ConfigResult` objects keyed by plan fingerprint."""

    def __init__(self, root: str | os.PathLike | None = None, events=None):
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.stats = CacheStats()
        self.events = events
        # second level: retirement traces ("traces" is not a 2-char shard
        # dir, so result-entry iteration never descends into it)
        self.traces = TraceStore(self.root / "traces", events=events)
        # third level: compiled-block/summary sources for warm reuse
        self.blocks = BlockStore(self.root / "blocks", events=events)

    def attach_events(self, bus) -> None:
        """Wire an event bus into all cache levels (the executor calls
        this so corruption reports reach the run's subscribers)."""
        self.events = bus
        self.traces.events = bus
        self.blocks.events = bus

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def _emit(self, event) -> None:
        if self.events is not None:
            self.events.emit(event)

    # -- read ------------------------------------------------------------

    def _read_doc(self, path: pathlib.Path) -> dict:
        """Parse + integrity-verify one entry; raises ValueError on any
        corruption (truncated JSON, wrong format, bad checksum...)."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                doc = json.load(handle)
            except ValueError as err:
                raise ValueError(f"unparseable JSON: {err}") from None
        if not isinstance(doc, dict):
            raise ValueError("entry is not a JSON object")
        if doc.get("format") not in _READABLE_FORMATS:
            raise ValueError(f"cache format {doc.get('format')!r} not in "
                             f"{sorted(_READABLE_FORMATS)}")
        try:
            check = doc["check"]
            payload = _result_payload(doc["result"])
        except (KeyError, TypeError) as err:
            raise ValueError(f"missing envelope field: {err}") from None
        if check.get("length") != len(payload):
            raise ValueError(f"payload length {len(payload)} != "
                             f"{check.get('length')} recorded")
        if check.get("crc32") != zlib.crc32(payload):
            raise ValueError("payload checksum mismatch")
        return doc

    def _quarantine(self, path: pathlib.Path, reason: str) -> None:
        dest = _quarantine_file(path, self.root)
        self.stats.quarantined += 1
        self._emit(CacheCorruption(level="result", key=path.stem,
                                   path=str(dest), reason=reason))

    def get(self, plan: ExperimentPlan) -> "ConfigResult | None":
        """The cached result for ``plan``, or None on a miss. Corrupt
        entries count as misses (``stats.errors``) and are quarantined —
        read once, moved, reported, never re-parsed."""
        from repro.harness.experiments import ConfigResult

        path = self.path_for(plan.fingerprint())
        try:
            doc = self._read_doc(path)
            result = ConfigResult.from_dict(doc["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            self.stats.errors += 1
            return None
        except (ValueError, KeyError, TypeError) as err:
            self.stats.misses += 1
            self.stats.errors += 1
            self._quarantine(path, str(err))
            return None
        self.stats.hits += 1
        return result

    def __contains__(self, plan: ExperimentPlan) -> bool:
        return self.path_for(plan.fingerprint()).is_file()

    # -- write -----------------------------------------------------------

    def put(self, plan: ExperimentPlan, result: "ConfigResult",
            seconds: float = 0.0) -> pathlib.Path:
        """Store ``result`` under ``plan``'s fingerprint (atomic, with a
        length + CRC-32 integrity envelope)."""
        key = plan.fingerprint()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        result_doc = result.to_dict()
        payload = _result_payload(result_doc)
        doc = {
            "format": CACHE_FORMAT,
            "key": key,
            "created": time.time(),
            "seconds": seconds,
            "check": {"length": len(payload), "crc32": zlib.crc32(payload)},
            "plan": plan.to_dict(),
            "result": result_doc,
        }
        data = json.dumps(doc, separators=(",", ":")).encode("utf-8")
        if faults.active() is not None:
            data = faults.corrupt("cache-result-write", data)
            if faults.fire("cache-tmp-leftover") is not None:
                _leftover_tmp(path)
        _write_atomic(path, data)
        self.stats.puts += 1
        return path

    # -- maintenance -----------------------------------------------------

    def _files(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if sub.is_dir() and len(sub.name) == 2:
                yield from sorted(sub.glob("*.json"))

    def entries(self) -> list[CacheEntry]:
        """Metadata for every readable entry (unreadable ones skipped)."""
        found = []
        for path in self._files():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    doc = json.load(handle)
                plan = ExperimentPlan.from_dict(doc["plan"])
            except (OSError, ValueError, KeyError, TypeError,
                    ExperimentError):
                plan = None
                doc = {}
            found.append(CacheEntry(
                key=path.stem,
                path=path,
                plan=plan,
                created=float(doc.get("created", 0.0)),
                seconds=float(doc.get("seconds", 0.0)),
                bytes=path.stat().st_size,
            ))
        return found

    def verify(self) -> dict:
        """Integrity-check both cache levels and sweep stray tmp files.

        Every result entry is parsed, envelope-verified and round-tripped
        through :meth:`ConfigResult.from_dict`; every trace entry's
        envelope is verified; failures are quarantined. Serve job
        journals under ``<root>/serve/jobs/`` are header-audited (torn
        or empty headers quarantined with ``.reason`` sidecars, exactly
        like the recovery scan would). Stray ``*.tmp`` files (crashed
        writers, or the tmp-leftover fault) are removed. Do not run
        concurrently with an active suite or daemon — a live writer's
        tmp file is indistinguishable from a stray one.
        """
        from repro.harness.experiments import ConfigResult

        results = {"checked": 0, "ok": 0, "quarantined": 0}
        for path in list(self._files()):
            results["checked"] += 1
            try:
                doc = self._read_doc(path)
                ConfigResult.from_dict(doc["result"])
            except (OSError, ValueError, KeyError, TypeError) as err:
                self.stats.errors += 1
                self._quarantine(path, str(err))
                results["quarantined"] += 1
            else:
                results["ok"] += 1
        traces = self.traces.verify()
        blocks = self.blocks.verify()
        jobs = self._verify_jobs()
        tmp_removed = 0
        if self.root.is_dir():
            for tmp in self.root.rglob("*.tmp"):
                try:
                    tmp.unlink()
                    tmp_removed += 1
                except OSError:
                    pass
        return {"results": results, "traces": traces, "blocks": blocks,
                "jobs": jobs, "tmp_removed": tmp_removed}

    def _verify_jobs(self) -> dict:
        """Audit serve job journals: a loadable header is ok; a torn or
        empty one is quarantined (``.reason`` sidecar) so the daemon's
        recovery scan never trips over it."""
        report = {"checked": 0, "ok": 0, "quarantined": 0}
        # serve is an optional layer above the harness; keep this audit
        # a no-op when it is absent rather than a hard import edge.
        try:
            from repro.serve.journal import JobJournal
        except ImportError:
            return report
        directory = JobJournal.directory(self.root)
        if not directory.is_dir():
            return report
        for path in sorted(directory.glob("*.jsonl")):
            report["checked"] += 1
            try:
                JobJournal.load(self.root, path.stem)
            except ExperimentError:
                # load() already quarantined the journal + sidecar
                self.stats.errors += 1
                report["quarantined"] += 1
            else:
                report["ok"] += 1
        return report

    def disk_stats(self) -> dict:
        """Entry count and total size on disk (both cache levels)."""
        count = 0
        total = 0
        for path in self._files():
            count += 1
            total += path.stat().st_size
        traces = self.traces.disk_stats()
        blocks = self.blocks.disk_stats()
        return {"entries": count, "bytes": total, "root": str(self.root),
                "trace_entries": traces["entries"],
                "trace_bytes": traces["bytes"],
                "block_entries": blocks["entries"],
                "block_bytes": blocks["bytes"]}

    def clear(self) -> int:
        """Delete every entry (results, traces, blocks, quarantine);
        returns the number removed."""
        removed = self.traces.clear()
        removed += self.blocks.clear()
        for path in list(self._files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        # drop now-empty shard directories (best effort)
        if self.root.is_dir():
            for sub in self.root.iterdir():
                if sub.is_dir() and len(sub.name) == 2:
                    try:
                        sub.rmdir()
                    except OSError:
                        pass
        removed += _clear_quarantine(self.root)
        return removed
