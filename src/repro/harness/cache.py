"""Content-addressed on-disk cache for experiment results.

Layout (under ``~/.cache/repro-isa`` by default, overridable with
``--cache-dir`` or ``$REPRO_ISA_CACHE_DIR``)::

    <root>/<k0k1>/<key>.json

where ``key = plan.fingerprint()`` — a sha256 over the canonical plan,
the *content* of the core model it references, and the schema versions of
every serialized result type (see :meth:`ExperimentPlan.fingerprint`).
Invalidation is therefore automatic for anything the key covers: a
different scale, window list, model latency or result schema is simply a
different key. Changes the key cannot see (edits to the simulator or the
workload generators themselves) require an explicit
``repro-isa-compare cache clear``.

Each entry is a single JSON document carrying the plan that produced it,
a creation timestamp and wall-clock, and the versioned
``ConfigResult.to_dict()`` payload. Writes are atomic (tmp file +
``os.replace``), so a killed run never leaves a truncated entry; corrupt
or unreadable entries are treated as misses.

The cache is two-level. Below the result entries a :class:`TraceStore`
keeps compressed retirement traces under ``<root>/traces/<k0k1>/
<key>.rtrc.z``, keyed by :meth:`ExperimentPlan.trace_fingerprint` — the
*simulation* identity only (workload, scale, ISA, profile, budget).
Changing analysis parameters (window sizes, slide fraction, core model)
misses at the result level but hits at the trace level, so the executor
replays the recorded stream through the fused analysis engine instead of
re-simulating.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.common.errors import ExperimentError
from repro.harness.plan import ExperimentPlan

if TYPE_CHECKING:
    from repro.harness.experiments import ConfigResult

#: Bump to orphan every existing cache entry (layout/envelope changes).
CACHE_FORMAT = 1


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_ISA_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-isa``, else
    ``~/.cache/repro-isa``."""
    env = os.environ.get("REPRO_ISA_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro-isa"


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0  # corrupt/unreadable entries encountered (count as misses)

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "errors": self.errors}


@dataclass
class CacheEntry:
    """Metadata for one on-disk entry (``cache ls``)."""

    key: str
    path: pathlib.Path
    plan: ExperimentPlan | None
    created: float
    seconds: float
    bytes: int


class TraceStore:
    """Get/put compressed retirement-trace blobs keyed by trace
    fingerprint (the second cache level; see the module docstring)."""

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.stats = CacheStats()

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.rtrc.z"

    def get(self, key: str) -> bytes | None:
        """The stored trace bytes (decompressed), or None on a miss."""
        try:
            blob = self.path_for(key).read_bytes()
            blob = zlib.decompress(blob)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, zlib.error):
            self.stats.misses += 1
            self.stats.errors += 1
            return None
        self.stats.hits += 1
        return blob

    def put(self, key: str, blob: bytes) -> pathlib.Path:
        """Store ``blob`` compressed (atomic tmp + replace)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".z.tmp")
        tmp.write_bytes(zlib.compress(blob, 1))
        os.replace(tmp, path)
        self.stats.puts += 1
        return path

    def _files(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if sub.is_dir() and len(sub.name) == 2:
                yield from sorted(sub.glob("*.rtrc.z"))

    def disk_stats(self) -> dict:
        count = 0
        total = 0
        for path in self._files():
            count += 1
            total += path.stat().st_size
        return {"entries": count, "bytes": total, "root": str(self.root)}

    def clear(self) -> int:
        removed = 0
        for path in list(self._files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            for sub in self.root.iterdir():
                if sub.is_dir() and len(sub.name) == 2:
                    try:
                        sub.rmdir()
                    except OSError:
                        pass
        return removed


class ResultCache:
    """Get/put :class:`ConfigResult` objects keyed by plan fingerprint."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.stats = CacheStats()
        # second level: retirement traces ("traces" is not a 2-char shard
        # dir, so result-entry iteration never descends into it)
        self.traces = TraceStore(self.root / "traces")

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # -- read ------------------------------------------------------------

    def get(self, plan: ExperimentPlan) -> "ConfigResult | None":
        """The cached result for ``plan``, or None on a miss. Corrupt
        entries count as misses (and bump ``stats.errors``)."""
        from repro.harness.experiments import ConfigResult

        path = self.path_for(plan.fingerprint())
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            if doc.get("format") != CACHE_FORMAT:
                raise ValueError(f"cache format {doc.get('format')!r}")
            result = ConfigResult.from_dict(doc["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            self.stats.errors += 1
            return None
        self.stats.hits += 1
        return result

    def __contains__(self, plan: ExperimentPlan) -> bool:
        return self.path_for(plan.fingerprint()).is_file()

    # -- write -----------------------------------------------------------

    def put(self, plan: ExperimentPlan, result: "ConfigResult",
            seconds: float = 0.0) -> pathlib.Path:
        """Store ``result`` under ``plan``'s fingerprint (atomic)."""
        key = plan.fingerprint()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "format": CACHE_FORMAT,
            "key": key,
            "created": time.time(),
            "seconds": seconds,
            "plan": plan.to_dict(),
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, separators=(",", ":"))
        os.replace(tmp, path)
        self.stats.puts += 1
        return path

    # -- maintenance -----------------------------------------------------

    def _files(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for sub in sorted(self.root.iterdir()):
            if sub.is_dir() and len(sub.name) == 2:
                yield from sorted(sub.glob("*.json"))

    def entries(self) -> list[CacheEntry]:
        """Metadata for every readable entry (unreadable ones skipped)."""
        found = []
        for path in self._files():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    doc = json.load(handle)
                plan = ExperimentPlan.from_dict(doc["plan"])
            except (OSError, ValueError, KeyError, TypeError,
                    ExperimentError):
                plan = None
                doc = {}
            found.append(CacheEntry(
                key=path.stem,
                path=path,
                plan=plan,
                created=float(doc.get("created", 0.0)),
                seconds=float(doc.get("seconds", 0.0)),
                bytes=path.stat().st_size,
            ))
        return found

    def disk_stats(self) -> dict:
        """Entry count and total size on disk (both cache levels)."""
        count = 0
        total = 0
        for path in self._files():
            count += 1
            total += path.stat().st_size
        traces = self.traces.disk_stats()
        return {"entries": count, "bytes": total, "root": str(self.root),
                "trace_entries": traces["entries"],
                "trace_bytes": traces["bytes"]}

    def clear(self) -> int:
        """Delete every entry (results and traces); returns the number
        removed."""
        removed = self.traces.clear()
        for path in list(self._files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        # drop now-empty shard directories (best effort)
        if self.root.is_dir():
            for sub in self.root.iterdir():
                if sub.is_dir() and len(sub.name) == 2:
                    try:
                        sub.rmdir()
                    except OSError:
                        pass
        return removed
