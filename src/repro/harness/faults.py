"""Deterministic fault injection for the resilient execution layer.

A :class:`FaultPlan` is a seeded, serializable description of *which*
failures to inject *where*: each :class:`FaultSpec` names an injection
site, a fault kind, and filters (plan substring, attempt numbers,
per-process occurrence indices) that make the injection exactly
reproducible. The harness threads the active plan through every layer it
hardens:

===================== =====================================================
site                  checked by
===================== =====================================================
``worker``            :func:`repro.harness.executor._child_main`, before
                      the heartbeat thread starts (kinds: ``crash``,
                      ``hang``, ``transient``, ``error``)
``execute``           :func:`repro.harness.executor.execute_plan`, both
                      serial and worker paths (``transient``, ``error``,
                      ``hang``)
``cache-result-write``  :meth:`ResultCache.put` — mangles the JSON entry
                      bytes (``truncate``, ``garble``, ``empty``)
``cache-trace-write``   :meth:`TraceStore.put` — mangles the compressed
                      trace envelope (``truncate``, ``garble``, ``empty``)
``cache-tmp-leftover``  :meth:`ResultCache.put`/:meth:`TraceStore.put` —
                      leaves a stray ``*.tmp`` file (``leftover``)
``shard``               :func:`repro.harness.sharding._shard_child`, before
                      the snapshot decodes (``crash``, ``hang``,
                      ``transient``, ``error``) — and as a *data* site on
                      the snapshot blob the parent ships (``truncate``,
                      ``garble``, ``empty``: the worker sees a corrupt
                      snapshot and dies with :class:`SnapshotError`).
                      Exhausted retries fall the slice back to in-process
                      serial execution; the plan never fails.
``warm``                :meth:`WarmCache.cached_program` on a warm-image
                      *hit* — as an action site (``transient``, ``error``,
                      ``hang``) and as a *data* site garbling the cached
                      image bytes (``truncate``, ``garble``, ``empty``).
                      The fingerprint re-check catches the corruption,
                      evicts the entry and raises ``WarmStateError``; the
                      pool recycles the poisoned worker and the plan
                      retries clean — it never fails. Note warm workers
                      live across plans, so per-process occurrence
                      counters (``at``) count across the whole task
                      stream, not per plan.
``serve``               the ``repro serve`` daemon's job lifecycle — an
                      *action* site between the job-journal append and
                      executor dispatch (``crash``, ``hang``,
                      ``transient``, ``error``; fired via
                      :func:`check_daemon`, since the daemon is its own
                      supervised process rather than an executor worker),
                      a *data* site tearing job-journal lines
                      (``truncate``, ``garble``, ``empty`` — the restart
                      scan must quarantine or tolerate them), and fired
                      with kind filters at the admission queue-full race
                      (``transient``) and the SSE writer (``hang``,
                      modelling a stalled client socket).
``dist``                the remote-executor tier (:mod:`repro.dist`) — a
                      multi-threaded site fired with *explicit points*
                      (:func:`check_point` / :func:`corrupt_point` /
                      :func:`fire_point`, matched against each spec's
                      ``plan`` filter) so concurrent daemon threads and
                      worker-node agents cannot race on the process
                      context. Windows: ``connect:<node>`` (worker
                      connect — ``transient`` models connect refused),
                      ``register:<node>`` (daemon registration race,
                      ``transient``), ``dispatch:<plan>`` (daemon-side
                      ``transient`` = the node socket cut mid-plan),
                      ``task:<plan>`` (worker per-task ``crash``/
                      ``hang``/``transient``/``error`` — ``hang``
                      models heartbeat silence), ``result:<plan>``
                      (data kinds tear the result frame mid-wire;
                      the site-specific ``duplicate`` kind replays the
                      frame, exercising lease dedup).
``translate-compile``   block compilation in :mod:`repro.sim.blocks`
                      (``error``; exercises per-block demotion)
``semantics``           compiled-block wrapping in :mod:`repro.sim.blocks`
                      (``skew``; flips a destination-register bit after
                      each execution of an affected block — a silent
                      wrong-result bug only differential testing catches)
===================== =====================================================

Zero overhead when no plan is installed: every site guard is one module
global read (``_ACTIVE is None`` / ``_FAULT_HOOK is None``). Workers
receive the plan as a serialized dict argument, so injection is
deterministic under both ``fork`` and ``spawn`` start methods, and the
``attempts`` filter lets a fault fire on attempt 1 and *not* on the
retry — the harness proves recovery, not just failure.

Fault kinds:

* ``crash`` — ``os._exit(exit_code)``; only fires inside a worker
  process (the parent must survive to observe the death).
* ``hang`` — sleep ``seconds``; in a worker this happens *before* the
  heartbeat thread starts, so it models a truly wedged process.
* ``transient`` — raise :class:`InjectedTransientError` (an ``OSError``,
  so the executor's transient-retry policy applies).
* ``error`` — raise :class:`InjectedFaultError` (an
  :class:`ExperimentError`: deterministic, never retried).
* ``truncate`` / ``garble`` / ``empty`` — corrupt bytes being written
  (``garble`` XORs seeded-random positions, so corruption is
  reproducible per :attr:`FaultPlan.seed`).
* ``leftover`` — leave a stray tmp file beside the entry.
"""

from __future__ import annotations

import json
import os
import random
import time
import zlib
from dataclasses import dataclass, field

from repro.common.errors import ExperimentError

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "InjectedFaultError",
    "InjectedTransientError",
    "install",
    "uninstall",
    "active",
    "export",
    "set_context",
    "check",
    "check_daemon",
    "check_point",
    "fire",
    "fire_point",
    "corrupt",
    "corrupt_point",
    "mutate_block",
    "KNOWN_SITES",
]

#: Sites whose kinds are *actions* (performed by :func:`check`).
ACTION_KINDS = ("crash", "hang", "transient", "error")
#: Kinds that mangle bytes (applied by :func:`corrupt`).
DATA_KINDS = ("truncate", "garble", "empty")
#: Kinds that mutate compiled-block semantics (applied by
#: :func:`mutate_block` at the ``semantics`` site).
SEMANTIC_KINDS = ("skew",)
#: Site-specific kinds of the ``dist`` tier: ``duplicate`` replays a
#: result frame after the original was sent (the dispatcher must drop
#: the copy by fingerprint — the lease-dedup proof).
DIST_KINDS = ("duplicate",)

#: Every injection site the harness wires up, mapped to the kinds that
#: site can apply. :meth:`FaultPlan.validate` rejects specs outside this
#: table so a typo'd ``--fault-plan`` fails loudly instead of silently
#: never firing.
KNOWN_SITES: dict[str, tuple[str, ...]] = {
    "worker": ACTION_KINDS,
    "execute": ACTION_KINDS,
    "shard": ACTION_KINDS + DATA_KINDS,
    "warm": ("transient", "error", "hang") + DATA_KINDS,
    "serve": ACTION_KINDS + DATA_KINDS,
    "dist": ACTION_KINDS + DATA_KINDS + DIST_KINDS,
    "cache-result-write": DATA_KINDS,
    "cache-trace-write": DATA_KINDS,
    "cache-tmp-leftover": ("leftover",),
    "translate-compile": ("error",),
    "semantics": SEMANTIC_KINDS,
}


class InjectedFaultError(ExperimentError):
    """A deterministic injected failure (kind ``error``)."""


class InjectedTransientError(OSError):
    """An injected failure the executor treats as transient."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection: where, what, and exactly when."""

    site: str
    kind: str
    #: Substring of ``plan.describe()``; "" matches any plan.
    plan: str = ""
    #: Attempt numbers to fire on; () fires on any attempt.
    attempts: tuple[int, ...] = ()
    #: 1-based occurrence indices of this site (per process, counted
    #: over occurrences that pass the plan/attempt filters); () fires on
    #: every occurrence.
    at: tuple[int, ...] = ()
    #: ``hang`` duration.
    seconds: float = 30.0
    #: ``crash`` exit status.
    exit_code: int = 86

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "plan": self.plan,
            "attempts": list(self.attempts),
            "at": list(self.at),
            "seconds": self.seconds,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultSpec":
        return cls(
            site=doc["site"],
            kind=doc["kind"],
            plan=doc.get("plan", ""),
            attempts=tuple(int(a) for a in doc.get("attempts", ())),
            at=tuple(int(a) for a in doc.get("at", ())),
            seconds=float(doc.get("seconds", 30.0)),
            exit_code=int(doc.get("exit_code", 86)),
        )


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultSpec` values plus firing state.

    Occurrence counters are per-process (a worker starts fresh), so the
    ``attempts`` filter is the cross-process knob: the parent passes the
    attempt number into each worker.
    """

    specs: list[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self):
        self.specs = [spec if isinstance(spec, FaultSpec)
                      else FaultSpec.from_dict(spec) for spec in self.specs]
        self._counts: dict[int, int] = {}

    # -- firing ----------------------------------------------------------

    def fire(self, site: str, *, plan: str = "", attempt: int = 0,
             in_worker: bool = False,
             kinds: tuple[str, ...] | None = None) -> FaultSpec | None:
        """The first spec firing at this occurrence of ``site``, or None.

        Increments each matching spec's occurrence counter (filters
        first, so a spec scoped to one plan counts only that plan's
        occurrences). ``kinds`` restricts which specs are considered —
        a site that is both an action point and a data point (``shard``:
        the parent corrupts the blob, the child checks for crashes)
        fires each spec only at the call that can apply it.
        """
        for i, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if kinds is not None and spec.kind not in kinds:
                continue
            if spec.plan and spec.plan not in plan:
                continue
            if spec.attempts and attempt not in spec.attempts:
                continue
            if spec.kind == "crash" and not in_worker:
                continue
            count = self._counts.get(i, 0) + 1
            self._counts[i] = count
            if spec.at and count not in spec.at:
                continue
            return spec
        return None

    def validate(self) -> "FaultPlan":
        """Reject specs naming unknown sites or kinds a site cannot
        apply. Returns ``self`` so loading can chain."""
        for spec in self.specs:
            if spec.site not in KNOWN_SITES:
                raise ExperimentError(
                    f"unknown fault site {spec.site!r}; known sites: "
                    f"{', '.join(sorted(KNOWN_SITES))}")
            allowed = KNOWN_SITES[spec.site]
            if spec.kind not in allowed:
                raise ExperimentError(
                    f"fault kind {spec.kind!r} does not apply at site "
                    f"{spec.site!r} (allowed: {', '.join(allowed)})")
        return self

    def rng_for(self, spec: FaultSpec) -> random.Random:
        """Deterministic RNG for this spec's data corruption (``hash()``
        is salted per process, so key on a stable CRC instead)."""
        tag = zlib.crc32(f"{spec.site}/{spec.kind}".encode())
        return random.Random((self.seed << 32) ^ tag)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {"v": 1, "seed": self.seed,
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        if doc.get("v") != 1:
            raise ExperimentError(f"FaultPlan schema {doc.get('v')!r} != 1")
        return cls(specs=[FaultSpec.from_dict(s) for s in doc["specs"]],
                   seed=int(doc.get("seed", 0)))

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


# -- global installation ------------------------------------------------

_ACTIVE: FaultPlan | None = None
_CONTEXT = {"plan": "", "attempt": 0, "in_worker": False}


def _sync_hooks() -> None:
    """Point the sim layer's injected hooks at us (or clear them). The
    sim package must not import the harness, so the dependency is
    inverted: installation pokes module globals into
    :mod:`repro.sim.blocks`."""
    from repro.sim import blocks

    blocks._FAULT_HOOK = check if _ACTIVE is not None else None
    sem_active = _ACTIVE is not None and any(
        spec.site == "semantics" for spec in _ACTIVE.specs)
    blocks._SEM_HOOK = mutate_block if sem_active else None


def install(plan: FaultPlan) -> None:
    """Activate ``plan`` process-wide (replacing any previous plan)."""
    global _ACTIVE
    _ACTIVE = plan
    _sync_hooks()


def uninstall() -> None:
    """Deactivate fault injection and reset the context."""
    global _ACTIVE
    _ACTIVE = None
    _CONTEXT.update(plan="", attempt=0, in_worker=False)
    _sync_hooks()


def active() -> FaultPlan | None:
    return _ACTIVE


def export() -> dict | None:
    """The active plan as a dict to ship to a worker process, or None."""
    return _ACTIVE.to_dict() if _ACTIVE is not None else None


def set_context(*, plan: str = "", attempt: int = 0,
                in_worker: bool = False) -> None:
    """Record what is being executed, for spec filters."""
    _CONTEXT.update(plan=plan, attempt=attempt, in_worker=in_worker)


def fire(site: str,
         kinds: tuple[str, ...] | None = None) -> FaultSpec | None:
    """Fire ``site`` under the current context; None when inactive."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.fire(site, kinds=kinds, **_CONTEXT)


def _perform(spec: FaultSpec, site: str) -> None:
    if spec.kind == "crash":
        os._exit(spec.exit_code)
    if spec.kind == "hang":
        time.sleep(spec.seconds)
        return
    if spec.kind == "transient":
        raise InjectedTransientError(
            f"injected transient fault at {site!r}")
    if spec.kind == "error":
        raise InjectedFaultError(f"injected fault at {site!r}")
    raise ExperimentError(
        f"fault kind {spec.kind!r} is not an action (site {site!r})")


def check(site: str) -> None:
    """Fire ``site`` and *perform* an action fault (crash/hang/raise)."""
    spec = fire(site, ACTION_KINDS)
    if spec is None:
        return
    _perform(spec, site)


def check_daemon(site: str,
                 kinds: tuple[str, ...] | None = None) -> None:
    """:func:`check` for a supervised *daemon* process.

    ``crash`` specs normally fire only inside executor workers (the
    parent must survive to observe the death); the serve daemon is its
    own supervised process — its supervisor or the chaos test restarts
    it — so here the in-worker guard is forced open. ``kinds`` narrows
    which action kinds this call site can perform (e.g. the SSE writer
    only models ``hang``)."""
    if _ACTIVE is None:
        return
    action = tuple(k for k in (kinds or ACTION_KINDS) if k in ACTION_KINDS)
    ctx = dict(_CONTEXT)
    ctx["in_worker"] = True
    spec = _ACTIVE.fire(site, kinds=action, **ctx)
    if spec is None:
        return
    _perform(spec, site)


def fire_point(site: str, point: str, *, attempt: int = 0,
               kinds: tuple[str, ...] | None = None) -> FaultSpec | None:
    """Fire ``site`` with an *explicit* context instead of the
    process-global one.

    The ``dist`` tier is multi-threaded on both ends (daemon reader
    threads, worker heartbeat threads), so the global
    :func:`set_context` would race between components firing
    concurrently. ``point`` is matched against each spec's ``plan``
    substring filter — call sites tag themselves
    (``"dispatch:<plan>"``, ``"result:<plan>"``, ...) and specs scope
    to a window by filtering on the tag. ``in_worker`` is forced open:
    every dist participant (daemon and node agents) is its own
    supervised process."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.fire(site, plan=point, attempt=attempt,
                        in_worker=True, kinds=kinds)


def check_point(site: str, point: str, *, attempt: int = 0,
                kinds: tuple[str, ...] | None = None) -> None:
    """:func:`check` under an explicit ``point`` (see
    :func:`fire_point`); ``kinds`` narrows which action kinds this call
    site can perform."""
    action = tuple(k for k in (kinds or ACTION_KINDS) if k in ACTION_KINDS)
    spec = fire_point(site, point, attempt=attempt, kinds=action)
    if spec is None:
        return
    _perform(spec, site)


def corrupt_point(site: str, point: str, data: bytes, *,
                  attempt: int = 0) -> bytes:
    """:func:`corrupt` under an explicit ``point`` (see
    :func:`fire_point`)."""
    spec = fire_point(site, point, attempt=attempt, kinds=DATA_KINDS)
    if spec is None:
        return data
    return _apply_corruption(spec, site, data)


def mutate_block(fn, insts):
    """Fire the ``semantics`` site for a freshly compiled block function.

    When a ``skew`` spec fires, the block function is wrapped so every
    execution additionally XORs bit 0 of one integer register the block
    writes — a deliberately *silent* wrong-result bug (no crash, no
    hang) that only a differential oracle can catch. The victim register
    is chosen deterministically from the plan seed among the block's
    integer destinations (falling back to a seeded pick in x1..x30 for
    blocks with none). Demoted blocks are never passed through here, so
    the interpreter stays a trustworthy oracle.
    """
    spec = fire("semantics", SEMANTIC_KINDS)
    if spec is None:
        return fn
    if spec.kind != "skew":
        raise ExperimentError(
            f"fault kind {spec.kind!r} is not a semantics mutation")
    rng = _ACTIVE.rng_for(spec)
    dsts = sorted({d for inst in insts for d in inst.dsts if 1 <= d <= 30})
    reg = rng.choice(dsts) if dsts else rng.randint(1, 30)

    def _skewed(machine, *rest):
        out = fn(machine, *rest)
        machine.r[reg] ^= 1
        return out

    return _skewed


def corrupt(site: str, data: bytes) -> bytes:
    """Fire ``site`` and mangle ``data`` per the spec (identity when the
    site does not fire)."""
    spec = fire(site, DATA_KINDS)
    if spec is None:
        return data
    return _apply_corruption(spec, site, data)


def _apply_corruption(spec: FaultSpec, site: str, data: bytes) -> bytes:
    if spec.kind == "truncate":
        return data[:len(data) // 2]
    if spec.kind == "empty":
        return b""
    if spec.kind == "garble":
        rng = _ACTIVE.rng_for(spec)
        blob = bytearray(data)
        for _ in range(max(4, len(blob) // 64)):
            if not blob:
                break
            blob[rng.randrange(len(blob))] ^= 1 + rng.randrange(255)
        return bytes(blob)
    raise ExperimentError(
        f"fault kind {spec.kind!r} does not corrupt data (site {site!r})")
