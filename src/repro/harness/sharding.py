"""Deterministic intra-run sharding: snapshot, fast-forward, merge.

Paper-scale inputs (§4: 10M-element STREAM) spend nearly all their
wall-clock in the analysis engines, not in bare emulation — the
probe-free translated fast path retires instructions several times
faster than the fused engine can analyze them. That gap is the
parallelism budget this module spends, QEMU-icount style:

1. **Fast-forward** the program once, probe-free
   (:meth:`EmulationCore.fast_forward`), capturing a
   :class:`~repro.sim.snapshot.MachineSnapshot` every checkpoint
   interval (adaptively thinned, so the checkpoint count stays bounded
   without knowing the run length in advance). This pass also yields
   the exact total retirement count and the final machine state, which
   validates against the workload's reference outputs exactly as a
   serial run would.
2. **Slice** the retirement stream at the checkpoints nearest the
   ideal equal-work boundaries. Each slice restores its snapshot,
   builds a fresh analysis engine — ``relative=True`` for every slice
   but the first (PR 6's max-plus suffix engines) — and consumes
   exactly its span of retirements (:class:`BudgetExhausted` is the
   precise end-of-slice signal, not an error).
3. **Merge** the per-slice states left-to-right with
   :meth:`AnalysisState.merge`. Merging is associative by
   construction, so the folded result is byte-identical to the serial
   engine's — sharding is a pure wall-clock optimization with no
   result-identity footprint (``shards`` is excluded from plan
   fingerprints).

Slices run either **in-process** (one shared core: warm translators,
shared static table, the engine merge hits its same-table fast path) or
**in parallel worker processes** (snapshot blobs ship out, engine state
documents ship back, and the merge rebases instruction indices by
``(pc, word)`` identity). The parallel path degrades, never fails: a
shard worker that crashes, hangs up, or returns a corrupt snapshot is
retried a bounded number of times and then its slice simply runs
in-process — fault site ``shard`` (:mod:`repro.harness.faults`)
exercises exactly these paths. Inside a daemonic executor worker (which
cannot fork) the in-process path is chosen automatically.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass

from repro.common import BudgetExhausted, SimulationError
from repro.common.errors import ExperimentError
from repro.harness import faults
from repro.isa import get_isa
from repro.loader import load_program
from repro.sim import CheckpointRecorder, EmulationCore, Machine, MachineSnapshot, Memory

__all__ = [
    "MAX_AUTO_SHARDS",
    "ShardRunStats",
    "resolve_shards",
    "run_sharded_config",
]

#: ``--shards auto`` (0) never resolves above this; past ~8 slices the
#: per-shard restore/merge overhead outgrows the marginal speedup on the
#: workload sizes the paper uses.
MAX_AUTO_SHARDS = 8

#: Initial fast-forward checkpoint interval (instructions). Doubles each
#: time the recorder thins, so checkpoint density adapts to run length.
DEFAULT_CHECKPOINT_INTERVAL = 1 << 15

#: Thin the checkpoint history above this count (bounds snapshot memory).
MAX_CHECKPOINTS = 48

#: Polling interval while supervising shard workers, seconds.
_POLL_S = 0.02


def resolve_shards(shards: int, cores: int | None = None) -> int:
    """Resolve a plan's ``shards`` knob to a concrete slice count.

    ``0`` means *auto*: one slice per available CPU, capped at
    :data:`MAX_AUTO_SHARDS`. Explicit counts pass through unchanged.
    """
    if shards < 0:
        raise ExperimentError(f"shards must be >= 0, got {shards}")
    if shards == 0:
        cores = cores if cores is not None else (os.cpu_count() or 1)
        return max(1, min(cores, MAX_AUTO_SHARDS))
    return shards


@dataclass
class ShardRunStats:
    """Telemetry of one sharded config run (never part of the result
    identity — carried like translation stats, dropped by caches)."""

    shards: int
    checkpoints: int
    total_instructions: int
    ff_seconds: float
    parallel: bool
    fallbacks: int = 0
    retries: int = 0

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "checkpoints": self.checkpoints,
            "total_instructions": self.total_instructions,
            "ff_seconds": self.ff_seconds,
            "parallel": self.parallel,
            "fallbacks": self.fallbacks,
            "retries": self.retries,
        }


def _fresh_machine(compiled) -> tuple[Machine, EmulationCore, object]:
    isa = get_isa(compiled.isa_name)
    memory = Memory()
    load_program(compiled.image, memory)
    machine = Machine(isa.name, memory)
    machine.reset_stack()
    machine.pc = compiled.image.entry
    return machine, isa, memory


def _validate_outputs(workload, isa: str, profile: str, machine,
                      compiled) -> dict[str, float]:
    """Replicate :func:`repro.workloads.run_workload` validation against
    the fast-forwarded final machine (the FF pass runs to completion, so
    sharding validates outputs exactly once, like a serial run)."""
    from repro.workloads.base import read_output_scalars

    if machine.exit_code != 0:
        raise AssertionError(
            f"{workload.name}/{isa}/{profile}: exit code "
            f"{machine.exit_code}"
        )
    expected = workload.expected()
    outputs = read_output_scalars(machine, compiled, expected.keys())
    tol = workload.tolerance()
    for name, want in expected.items():
        got = outputs[name]
        if want == 0.0:
            ok = abs(got) <= tol
        else:
            ok = abs(got - want) <= tol * max(abs(want), 1.0)
        if not ok:
            raise AssertionError(
                f"{workload.name}/{isa}/{profile}: output {name} = "
                f"{got!r}, reference {want!r}"
            )
    return outputs


def _pick_cuts(positions: list[int], total: int, shards: int) -> list[int]:
    """Checkpoint positions nearest the ideal equal-work boundaries.

    ``positions`` are the recorded checkpoints (ascending, first is 0).
    Duplicates collapse, so fewer checkpoints than requested shards
    simply yields fewer (possibly zero) cuts — correctness never depends
    on hitting the ideal boundary, only on cutting *at a checkpoint*.
    """
    interior = [p for p in positions if 0 < p < total]
    if not interior or shards <= 1:
        return []
    cuts = set()
    for k in range(1, shards):
        ideal = round(k * total / shards)
        cuts.add(min(interior, key=lambda p: abs(p - ideal)))
    return sorted(cuts)


# -- worker-process slice execution ---------------------------------------


def _run_slice(core, engine, lo: int, hi: int | None,
               budget: int, trace_writer=None):
    """Consume retirements ``[lo, hi)`` on a machine already positioned
    at ``lo``. ``hi=None`` runs to program exit; bounded slices treat
    :class:`BudgetExhausted` as their normal completion."""
    sinks = [engine]
    if trace_writer is not None:
        sinks.append(trace_writer)
    if hi is None:
        return core.run_batched(sinks, max_instructions=budget - lo)
    try:
        core.run_batched(sinks, max_instructions=hi - lo)
    except BudgetExhausted:
        return None
    raise SimulationError(
        f"program exited inside shard slice [{lo}, {hi}) — the "
        f"fast-forward pass measured a longer run; snapshot and "
        f"simulation disagree"
    )


def _shard_child(conn, payload: dict) -> None:
    """Worker-process entry point: restore, run one slice, ship state.

    The loaded image ships *in* (so workers never touch the compiler)
    and the engine state ships *out* as its :meth:`state_doc` document —
    plain lists and tuples, no numpy buffers or closures — which the
    parent rebases onto the merged result by ``(pc, word)`` identity.
    """
    try:
        fault_doc = payload.get("faults")
        if fault_doc:
            faults.install(faults.FaultPlan.from_dict(fault_doc))
            faults.set_context(plan=payload["describe"],
                               attempt=payload["attempt"], in_worker=True)
        faults.check("shard")
        warm_blocks = payload.get("warm_blocks")
        if warm_blocks:
            # Draw translated block/summary sources from the same
            # on-disk warm level the pool workers use: a spawn-started
            # slice (no inherited code cache) skips per-block codegen.
            from repro.harness.cache import BlockStore
            from repro.harness.warmcache import preload_sources

            doc = BlockStore(warm_blocks["root"]).get(warm_blocks["key"])
            if doc is not None:
                preload_sources(doc)
        snap = MachineSnapshot.from_bytes(payload["snapshot"])
        from repro.analysis.config import AnalysisConfig

        image = payload["image"]
        isa = get_isa(snap.isa_name)
        machine = Machine(isa.name, Memory(snap.memory_size))
        snap.restore(machine, image)
        core = EmulationCore(isa, machine, translate=payload["translate"])
        cfg = AnalysisConfig.from_dict(payload["analysis"])
        engine = cfg.build_engine(
            regions=image.regions, model=payload["model"],
            relative=payload["index"] > 0,
        )
        _run_slice(core, engine, payload["lo"], payload["hi"],
                   payload["budget"])
        conn.send({"ok": True, "state": engine.state_doc(),
                   "translation": core.translation_stats()})
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as err:
        try:
            conn.send({"ok": False,
                       "error": f"{type(err).__name__}: {err}"})
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _run_parallel_slices(bounds, snaps, *, image, describe, cfg,
                         model, budget, translate, retries,
                         stats: ShardRunStats, run_inproc,
                         warm_blocks: dict | None = None):
    """Fan slices out to worker processes; merge state docs in order.

    Per-slice bounded retries; a slice whose workers keep dying (or keep
    shipping corrupt snapshots) falls back to ``run_inproc`` — the plan
    degrades to partial (or full) serial execution instead of failing.
    """
    from repro.harness.executor import _mp_context

    ctx = _mp_context()
    fault_doc = faults.export()
    slices = list(range(len(bounds) - 1))

    def launch(k: int, attempt: int):
        lo, hi = bounds[k], bounds[k + 1]
        blob = faults.corrupt("shard", snaps[lo].to_bytes())
        payload = {
            "image": image,
            "analysis": cfg.to_dict(), "model": model,
            "snapshot": blob, "index": k, "lo": lo, "hi": hi,
            "budget": budget, "translate": translate,
            "faults": fault_doc, "attempt": attempt, "describe": describe,
            "warm_blocks": warm_blocks,
        }
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_shard_child,
                           args=(child_conn, payload), daemon=True)
        proc.start()
        child_conn.close()
        return proc, parent_conn

    states: dict[int, object] = {}
    translations: dict[int, dict | None] = {}
    active = {}  # k -> (proc, conn, attempt)
    for k in slices:
        active[k] = (*launch(k, 1), 1)

    def settle(k: int, msg: dict | None, attempt: int):
        """One slice attempt ended; retry, fall back, or record."""
        if msg is not None and msg.get("ok"):
            engine = cfg.build_engine(regions=image.regions, model=model,
                                      relative=k > 0)
            engine.load_state_doc(msg["state"])
            states[k] = engine.state()
            translations[k] = msg.get("translation")
            return
        if attempt <= retries:
            stats.retries += 1
            active[k] = (*launch(k, attempt + 1), attempt + 1)
            return
        stats.fallbacks += 1
        states[k], translations[k] = run_inproc(k)

    while active:
        time.sleep(_POLL_S)
        for k in list(active):
            proc, conn, attempt = active[k]
            msg = None
            final = False
            if conn.poll():
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    msg = None
                final = True
            elif not proc.is_alive():
                final = True
            if final:
                del active[k]
                proc.join()
                conn.close()
                settle(k, msg, attempt)

    ordered = [states[k] for k in slices]
    merged = ordered[0]
    for state in ordered[1:]:
        merged = merged.merge(state)
    return merged, [translations[k] for k in slices]


# -- the sharded config runner --------------------------------------------


def run_sharded_config(workload, isa: str, profile: str, compiled, cfg,
                       model, max_instructions: int, shards: int,
                       translate: bool = True, trace_writer=None,
                       *, checkpoint_interval: int | None = None,
                       parallel: bool | None = None, retries: int = 1,
                       ) -> tuple["ConfigResult", ShardRunStats]:
    """Run one configuration sharded; byte-identical to the serial path.

    Returns ``(result, stats)``. ``parallel=None`` auto-selects worker
    processes when there is more than one slice, more than one CPU, no
    trace recording, and this process may fork; ``False`` forces the
    in-process path (still sharded — the property tests and the fuzzer
    oracle exercise slice/merge without process overhead).
    """
    from repro.harness.experiments import ConfigResult

    if cfg.engine != "fused":
        raise ExperimentError(
            "sharded execution requires the fused (batched) engine; "
            f"got {cfg.engine!r}"
        )
    if shards < 1:
        raise ExperimentError(f"resolved shard count must be >= 1, got {shards}")

    # Phase 1: probe-free fast-forward with adaptive checkpointing. This
    # pass finds the exact run length, records restore points, and ends
    # on the final machine state (which validates the outputs).
    machine, isa_obj, _memory = _fresh_machine(compiled)
    core = EmulationCore(isa_obj, machine, translate=translate)
    recorder = CheckpointRecorder(machine)
    interval = checkpoint_interval or DEFAULT_CHECKPOINT_INTERVAL
    ff_started = time.monotonic()
    pos = 0
    while machine.running and pos < max_instructions:
        step = min(interval, max_instructions - pos)
        executed = core.fast_forward(step)
        pos += executed
        if executed < step or not machine.running:
            break
        if pos < max_instructions:
            recorder.capture(pos)
            if len(recorder.snapshots) > MAX_CHECKPOINTS:
                recorder.thin()
                interval *= 2
    if machine.running:
        raise BudgetExhausted(
            f"instruction budget ({max_instructions}) exhausted",
            pc=machine.pc,
        )
    total = pos
    ff_seconds = time.monotonic() - ff_started
    # workload=None skips output validation: the fuzzer's sharding oracle
    # runs generated programs that have no reference outputs.
    name = "program"
    if workload is not None:
        name = workload.name
        _validate_outputs(workload, isa, profile, machine, compiled)

    cuts = _pick_cuts([s.retired for s in recorder.snapshots], total, shards)
    bounds: list[int | None] = [0, *cuts, None]
    snaps = {snap.retired: snap for snap in recorder.snapshots}
    n_slices = len(bounds) - 1
    use_parallel = (
        (parallel if parallel is not None else True)
        and n_slices > 1
        and trace_writer is None
        and (os.cpu_count() or 1) > 1
        and not multiprocessing.current_process().daemon
    )
    stats = ShardRunStats(
        shards=n_slices, checkpoints=len(recorder.snapshots),
        total_instructions=total, ff_seconds=ff_seconds,
        parallel=use_parallel,
    )

    def run_inproc(k: int):
        """Run slice ``k`` on the phase-1 core (warm translators, shared
        static table); also the parallel path's per-slice fallback."""
        lo, hi = bounds[k], bounds[k + 1]
        snaps[lo].restore(machine, compiled.image)
        engine = cfg.build_engine(
            regions=compiled.image.regions, model=model, relative=k > 0)
        _run_slice(core, engine, lo, hi, max_instructions,
                   trace_writer=trace_writer)
        return engine.state(), None

    if use_parallel:
        from repro.harness.warmcache import (
            block_key, get_block_root, image_fingerprint,
        )

        warm_blocks = None
        block_root = get_block_root()
        if block_root and translate:
            warm_blocks = {"root": block_root,
                           "key": block_key(image_fingerprint(compiled),
                                            translate)}
        merged, slice_translations = _run_parallel_slices(
            bounds, snaps, image=compiled.image,
            describe=f"{name}/{isa}/{profile}",
            cfg=cfg, model=model, budget=max_instructions,
            translate=translate, retries=retries, stats=stats,
            run_inproc=run_inproc, warm_blocks=warm_blocks,
        )
        translation = _merge_translation_stats(
            [core.translation_stats(), *slice_translations])
    else:
        if trace_writer is not None:
            trace_writer.isa_name = compiled.isa_name
            trace_writer.regions = list(compiled.image.regions)
        # In-process slices run sequentially, so one absolute engine can
        # simply continue across them: it consumes exactly the serial
        # retirement stream (each restore repositions the machine to
        # where the previous slice left it). Relative slices + merge are
        # reserved for worker processes, where the true prefix chain
        # state is unavailable — symbolic max-plus chains there grow
        # with every cell the slice has not seen, which a sequential
        # in-process pass never needs to pay for.
        engine = cfg.build_engine(regions=compiled.image.regions,
                                  model=model, relative=False)
        for k in range(n_slices):
            lo, hi = bounds[k], bounds[k + 1]
            snaps[lo].restore(machine, compiled.image)
            _run_slice(core, engine, lo, hi, max_instructions,
                       trace_writer=trace_writer)
        merged = engine.state()
        translation = core.translation_stats()

    result = ConfigResult.from_analysis(
        name, isa, profile, merged.results(),
        translation=translation,
    )
    return result, stats


def _merge_translation_stats(stats_list) -> dict | None:
    """Sum per-core translation counters (``max_block`` maximizes)."""
    merged = None
    for stats in stats_list:
        if not stats:
            continue
        if merged is None:
            merged = dict(stats)
            continue
        for key, value in stats.items():
            if key == "max_block":
                merged[key] = max(merged.get(key, 0), value)
            else:
                merged[key] = merged.get(key, 0) + value
    return merged
