"""Plan execution: serial or process-parallel, cached, with supervision.

The :class:`Executor` turns a batch of :class:`ExperimentPlan` values
into :class:`ConfigResult` values. For each plan it

1. consults the optional on-disk :class:`ResultCache` (a hit skips
   simulation entirely); on a result-level miss, the cache's trace level
   can still satisfy the plan by replaying a recorded retirement stream
   through the fused analysis engine (:func:`execute_plan`);
2. otherwise simulates — in-process when only one worker would be used
   (``jobs == 1`` or a single outstanding plan) and no timeout/heartbeat
   supervision is requested, else in a worker process
   (``multiprocessing``, fork start method where available) so the
   matrix fans out across cores and a wedged simulation can be killed.
   ``jobs=None`` defaults to one worker per CPU, capped at the number of
   plans to simulate;
3. supervises workers two ways: a per-plan wall-clock ``timeout`` (the
   budget for *legitimate* work) and a ``heartbeat`` deadline (a worker
   that stops beating is wedged — deadlocked, swapped out, or stuck in
   an uninterruptible syscall — long before its timeout would fire);
4. retries *transient* failures — a worker killed by a signal, a
   timeout, a lost heartbeat, an OS-level error — up to ``retries``
   times with exponential backoff plus seeded jitter, and raises a
   structured :class:`SuiteExecutionError` (per-plan attempt histories,
   not a bare message) for anything that remains failed;
5. degrades gracefully: repeated *pool-level* failures (workers dying
   without reporting, broken result pipes) trip the pool breaker and the
   remaining plans run serially in-process
   (:class:`~repro.harness.events.ExecutorDegraded`);
6. emits structured telemetry (:mod:`repro.harness.events`) throughout.

Fault injection (:mod:`repro.harness.faults`) threads through every one
of these paths — ``execute_plan`` and ``_child_main`` check their sites,
and the active plan ships to workers as a serialized argument — at zero
cost when no plan is installed.

Results computed in worker processes travel back through the same
versioned ``to_dict``/``from_dict`` round-trip the cache uses, so the
parallel path is bit-identical to the serial one by construction.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.common.errors import ExperimentError, ReproError
from repro.harness import faults
from repro.harness.cache import ResultCache, TraceStore
from repro.harness.events import (
    EventBus,
    ExecutorDegraded,
    PlanCacheHit,
    PlanFailed,
    PlanFinished,
    PlanShardStats,
    PlanStarted,
    PlanTraceHit,
    PlanTranslationStats,
    SuiteFinished,
    SuiteStarted,
)
from repro.harness.plan import ExperimentPlan, plan_suite

if TYPE_CHECKING:
    from repro.harness.experiments import ConfigResult, SuiteResult

#: Failure classes worth more attempts; everything else is deterministic
#: and retrying would only multiply the wall-clock.
_TRANSIENT = (OSError, EOFError, MemoryError, TimeoutError)

#: Polling interval for the process scheduler, seconds.
_POLL_S = 0.02

#: Consecutive pool-level failures (dead workers, broken pipes) that
#: trip the breaker and degrade the pool to serial execution.
POOL_FAILURE_LIMIT = 3


@dataclass
class AttemptRecord:
    """One failed attempt of one plan."""

    attempt: int
    error: str
    transient: bool
    seconds: float = 0.0
    #: Serialized :class:`~repro.sim.postmortem.GuestFaultReport` when
    #: the attempt died on a guest fault (survives the worker pipe).
    fault: dict | None = None


@dataclass
class PlanFailureReport:
    """Structured failure report for one plan: every attempt, in order."""

    plan: ExperimentPlan
    attempts: list[AttemptRecord] = field(default_factory=list)

    def describe(self) -> str:
        tries = "; ".join(f"attempt {a.attempt}: {a.error}"
                          for a in self.attempts)
        return f"{self.plan.describe()} [{tries}]"


class SuiteExecutionError(ExperimentError):
    """One or more plans exhausted their attempts. ``reports`` holds a
    :class:`PlanFailureReport` per failed plan — the structured
    replacement for the old flat message."""

    def __init__(self, reports: list[PlanFailureReport], total: int):
        self.reports = reports
        detail = "; ".join(r.describe() for r in reports)
        super().__init__(
            f"{len(reports)} of {total} plans failed: {detail}")


def execute_plan(plan: ExperimentPlan,
                 trace_store: "TraceStore | None" = None) -> "ConfigResult":
    """Simulate one plan in this process (no result cache, no retry).

    With a ``trace_store``, the second cache level kicks in: a recorded
    retirement trace for this plan's *simulation* identity is replayed
    through the fused analysis engine (zero simulations), and a fresh
    simulation records its trace for future analysis-parameter changes.

    Fault-injection site ``execute`` fires here (transient/error/hang),
    covering both the serial path and worker processes.
    """
    from repro.harness.experiments import run_config
    from repro.workloads import get_workload

    faults.check("execute")

    trace_writer = None
    if trace_store is not None:
        from repro.harness.experiments import replay_config
        from repro.sim.trace import TraceWriter, read_trace

        key = plan.trace_fingerprint()
        blob = trace_store.get(key)
        if blob is not None:
            return replay_config(read_trace(blob), plan)
        if plan.shards == 1:
            # A sharded plan skips trace *recording*: the trace sink
            # would force every slice onto the slow per-retirement path
            # (and exclude worker processes), costing far more than the
            # recorded trace could ever save. Replay above still works —
            # a trace recorded by any serial run of the same simulation
            # identity satisfies sharded plans too.
            trace_writer = TraceWriter()

    workload = get_workload(plan.workload, plan.scale)
    result = run_config(
        workload,
        plan.isa,
        plan.profile,
        analysis=plan.analysis,
        models={plan.isa: plan.model},
        max_instructions=plan.max_instructions,
        trace_writer=trace_writer,
        translate=plan.translate,
        shards=plan.shards,
    )
    if trace_store is not None and trace_writer is not None:
        trace_store.put(plan.trace_fingerprint(), trace_writer.finish())
    return result


def _heartbeat_loop(conn, lock, interval, stop) -> None:
    """Worker-side heartbeat: periodic beats on the result pipe until
    stopped (or the pipe dies)."""
    while not stop.wait(interval):
        with lock:
            try:
                conn.send({"hb": True})
            except Exception:
                return


def _child_main(conn, plan_doc: dict, trace_root: str | None = None,
                fault_doc: dict | None = None,
                heartbeat: float | None = None, attempt: int = 1) -> None:
    """Worker-process entry point: simulate and ship the result dict.

    Installs the serialized fault plan (if any) and checks the ``worker``
    site *before* the heartbeat thread starts — an injected ``hang``
    therefore models a truly wedged worker (no beats at all), and an
    injected ``crash`` dies without a report, exactly like the real
    failures they stand in for.
    """
    send_lock = threading.Lock()
    stop = threading.Event()
    try:
        plan = ExperimentPlan.from_dict(plan_doc)
        if fault_doc:
            faults.install(faults.FaultPlan.from_dict(fault_doc))
            faults.set_context(plan=plan.describe(), attempt=attempt,
                               in_worker=True)
            faults.check("worker")
        if heartbeat:
            threading.Thread(
                target=_heartbeat_loop,
                args=(conn, send_lock, min(1.0, heartbeat / 4.0), stop),
                daemon=True,
            ).start()
        store = TraceStore(trace_root) if trace_root else None
        started = time.monotonic()
        result = (execute_plan(plan, store) if store is not None
                  else execute_plan(plan))
        stop.set()
        with send_lock:
            conn.send({"ok": True, "result": result.to_dict(),
                       "seconds": time.monotonic() - started,
                       "trace_hit": bool(store and store.stats.hits),
                       "translation": result.translation})
    except (KeyboardInterrupt, SystemExit):
        # report, then RE-RAISE: Ctrl-C/SIGTERM must tear the worker
        # down promptly, not masquerade as a plan failure
        stop.set()
        try:
            with send_lock:
                conn.send({"ok": False, "error": "worker interrupted",
                           "transient": False})
        except Exception:
            pass
        raise
    except Exception as err:
        stop.set()
        report = getattr(err, "fault_report", None)
        try:
            with send_lock:
                conn.send({"ok": False,
                           "error": f"{type(err).__name__}: {err}",
                           "transient": isinstance(err, _TRANSIENT),
                           "fault": (report.to_dict()
                                     if report is not None else None)})
        except Exception:
            pass
    finally:
        stop.set()
        try:
            conn.close()
        except Exception:
            pass


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


def validate_limits(*, jobs: int | None = None, timeout: float | None = None,
                    heartbeat: float | None = None, retries: int = 0) -> None:
    """Reject invalid supervision knobs before any work (or journal) starts."""
    if jobs is not None and jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    if timeout is not None and timeout <= 0:
        raise ExperimentError(f"timeout must be positive, got {timeout}")
    if heartbeat is not None and heartbeat <= 0:
        raise ExperimentError(
            f"heartbeat must be positive, got {heartbeat}")
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")


class Executor:
    """Runs batches of plans with caching, parallelism and supervision.

    Args:
        jobs: worker processes; None (the default) picks one per CPU,
            capped at the number of plans actually needing simulation.
            1 runs in-process.
        cache: optional :class:`ResultCache`; hits skip simulation and
            fresh results are written back. Its trace level replays
            recorded retirement streams for plans that differ only in
            analysis parameters.
        events: optional :class:`EventBus` for progress telemetry.
        timeout: per-plan wall-clock limit in seconds. Enforced by
            running plans in killable worker processes, so setting it
            forces the process path even with ``jobs=1``.
        heartbeat: hang-detection deadline in seconds, distinct from the
            timeout: workers beat every ``heartbeat/4`` (capped at 1s),
            and a worker silent for longer than ``heartbeat`` is killed
            and its plan retried as a transient failure. Setting it
            forces the process path (a wedged in-process plan cannot be
            supervised).
        retries: extra attempts after a transient failure (default 1).
        backoff: base delay before a retry; attempt ``n`` waits
            ``backoff * 2**(n-1)`` (capped at ``backoff_cap``) scaled by
            seeded jitter in [0.5, 1.0]. 0 disables the wait.
        backoff_cap: upper bound on the exponential delay.
    """

    def __init__(
        self,
        *,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        events: EventBus | None = None,
        timeout: float | None = None,
        heartbeat: float | None = None,
        retries: int = 1,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
    ):
        validate_limits(jobs=jobs, timeout=timeout, heartbeat=heartbeat,
                        retries=retries)
        self.jobs = jobs
        self.cache = cache
        self.events = events or EventBus()
        self.timeout = timeout
        self.heartbeat = heartbeat
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        #: Seeded jitter: deterministic per Executor instance.
        self._rng = random.Random(0x5EED)

    # -- public API ------------------------------------------------------

    def run(self, plans: Sequence[ExperimentPlan],
            ) -> dict[ExperimentPlan, "ConfigResult"]:
        """Execute a batch; returns ``{plan: result}`` in input order."""
        plans = list(plans)
        started = time.monotonic()
        results: dict[ExperimentPlan, "ConfigResult"] = {}
        indices = {plan: i + 1 for i, plan in enumerate(plans)}
        total = len(plans)
        if self.cache is not None and self.cache.events is None:
            self.cache.attach_events(self.events)

        todo: list[ExperimentPlan] = []
        for plan in plans:
            cached = self.cache.get(plan) if self.cache is not None else None
            if cached is not None:
                results[plan] = cached
                self.events.emit(PlanCacheHit(
                    plan=plan, index=indices[plan], total=total,
                    key=plan.fingerprint()))
            else:
                todo.append(plan)
        # one worker per CPU by default, never more than there is work
        jobs = self.jobs or min(os.cpu_count() or 1, max(1, len(todo)))
        self.events.emit(SuiteStarted(
            total=total, jobs=jobs, cached=len(results)))

        reports: dict[ExperimentPlan, PlanFailureReport] = {}
        failures: dict[ExperimentPlan, str] = {}
        if todo:
            supervised = (self.timeout is not None
                          or self.heartbeat is not None)
            # Sharded plans fan out their own per-slice worker
            # processes; the pool's daemonic workers cannot fork, so
            # those plans take the serial path and parallelize
            # *internally* instead of nesting inside the pool.
            sharded = [plan for plan in todo if plan.shards != 1]
            pooled = [plan for plan in todo if plan.shards == 1]
            if pooled:
                if (jobs == 1 or len(pooled) == 1) and not supervised:
                    results.update(self._run_serial(
                        pooled, indices, total, failures, reports))
                else:
                    results.update(self._run_pool(
                        pooled, indices, total, failures, reports, jobs))
            if sharded:
                results.update(self._run_serial(
                    sharded, indices, total, failures, reports))

        self.events.emit(SuiteFinished(
            total=total,
            executed=len(todo) - len(failures),
            cached=total - len(todo),
            failed=len(failures),
            seconds=time.monotonic() - started,
        ))
        if failures:
            raise SuiteExecutionError(
                [reports[plan] for plan in failures], total)
        return {plan: results[plan] for plan in plans}

    def run_suite(
        self,
        scale: float = 1.0,
        *,
        workloads: tuple[str, ...] | None = None,
        windowed: bool = True,
        window_sizes: tuple[int, ...] | None = None,
        slide_fraction: float = 0.5,
        models: dict[str, str] | None = None,
        max_instructions: int = 500_000_000,
        translate: bool = True,
        shards: int = 1,
    ) -> "SuiteResult":
        """Plan and execute the paper matrix; assemble a SuiteResult."""
        from repro.analysis.windowed import PAPER_WINDOW_SIZES
        from repro.harness.experiments import SuiteResult
        from repro.workloads import get_workload

        sizes = tuple(window_sizes) if window_sizes else PAPER_WINDOW_SIZES
        plans = plan_suite(
            scale,
            workloads=workloads,
            windowed=windowed,
            window_sizes=sizes,
            slide_fraction=slide_fraction,
            models=models,
            max_instructions=max_instructions,
            translate=translate,
            shards=shards,
        )
        results = self.run(plans)
        names = tuple(workloads) if workloads else tuple(
            dict.fromkeys(plan.workload for plan in plans))
        suite = SuiteResult(
            scale=scale,
            workloads={name: get_workload(name, scale) for name in names},
            window_sizes=sizes,
        )
        for plan, result in results.items():
            suite.configs[plan.config_key] = result
        return suite

    # -- retry policy ----------------------------------------------------

    def _backoff_delay(self, failed_attempt: int) -> float:
        """Exponential backoff with seeded jitter: the wait before the
        attempt after ``failed_attempt``."""
        if self.backoff <= 0:
            return 0.0
        delay = min(self.backoff * (2 ** (failed_attempt - 1)),
                    self.backoff_cap)
        return delay * (0.5 + 0.5 * self._rng.random())

    def _record_failure(self, reports, plan, attempt, message, transient,
                        seconds=0.0, fault=None,
                        ) -> tuple[bool, tuple[str, ...]]:
        """Append an attempt record; returns (will_retry, prior_errors)."""
        report = reports.get(plan)
        if report is None:
            report = reports[plan] = PlanFailureReport(plan=plan)
        history = tuple(a.error for a in report.attempts)
        report.attempts.append(AttemptRecord(
            attempt=attempt, error=message, transient=transient,
            seconds=seconds, fault=fault))
        return (transient and attempt <= self.retries), history

    # -- serial path -----------------------------------------------------

    def _run_serial(self, todo, indices, total, failures, reports):
        results = {}
        traces = self.cache.traces if self.cache is not None else None
        injecting = faults.active() is not None
        for plan in todo:
            attempt = 1
            while True:
                self.events.emit(PlanStarted(
                    plan=plan, index=indices[plan], total=total,
                    attempt=attempt))
                plan_started = time.monotonic()
                trace_hits = traces.stats.hits if traces is not None else 0
                if injecting:
                    faults.set_context(plan=plan.describe(), attempt=attempt,
                                       in_worker=False)
                try:
                    if traces is None:
                        result = execute_plan(plan)
                    else:
                        result = execute_plan(plan, traces)
                except _TRANSIENT as err:
                    message = f"{type(err).__name__}: {err}"
                    seconds = time.monotonic() - plan_started
                    retry, history = self._record_failure(
                        reports, plan, attempt, message, True, seconds)
                    self.events.emit(PlanFailed(
                        plan=plan, error=message, attempt=attempt,
                        will_retry=retry, history=history))
                    if not retry:
                        failures[plan] = message
                        break
                    delay = self._backoff_delay(attempt)
                    if delay:
                        time.sleep(delay)
                    attempt += 1
                    continue
                except (ReproError, AssertionError) as err:
                    # deterministic: simulator/config bugs surface as-is
                    message = f"{type(err).__name__}: {err}"
                    fault = getattr(err, "fault_report", None)
                    _retry, history = self._record_failure(
                        reports, plan, attempt, message, False,
                        time.monotonic() - plan_started,
                        fault=fault.to_dict() if fault is not None else None)
                    self.events.emit(PlanFailed(
                        plan=plan, error=message,
                        attempt=attempt, will_retry=False, history=history))
                    raise
                seconds = time.monotonic() - plan_started
                if traces is not None and traces.stats.hits > trace_hits:
                    self.events.emit(PlanTraceHit(
                        plan=plan, index=indices[plan], total=total,
                        key=plan.trace_fingerprint()))
                if result.translation is not None:
                    self.events.emit(PlanTranslationStats(
                        plan=plan, index=indices[plan], total=total,
                        stats=result.translation))
                if result.shard_stats is not None:
                    self.events.emit(PlanShardStats(
                        plan=plan, index=indices[plan], total=total,
                        stats=result.shard_stats))
                self.events.emit(PlanFinished(
                    plan=plan, index=indices[plan], total=total,
                    seconds=seconds, attempt=attempt))
                results[plan] = result
                if self.cache is not None:
                    if injecting:
                        faults.set_context(plan=plan.describe(),
                                           attempt=attempt, in_worker=False)
                    self.cache.put(plan, result, seconds=seconds)
                break
        return results

    # -- process pool ----------------------------------------------------

    def _run_pool(self, todo, indices, total, failures, reports, jobs):
        from repro.harness.experiments import ConfigResult

        ctx = _mp_context()
        # (plan, attempt, ready_at): backoff delays schedule retries
        pending: list[tuple[ExperimentPlan, int, float]] = [
            (plan, 1, 0.0) for plan in todo]
        active = {}  # Process -> [plan, attempt, conn, started, last_beat]
        results = {}
        trace_root = (str(self.cache.traces.root)
                      if self.cache is not None else None)
        fault_doc = faults.export()
        injecting = fault_doc is not None
        strikes = 0       # consecutive pool-level failures
        degraded = False

        def finish(plan, attempt, started, message=None, transient=False,
                   payload=None, fault=None):
            nonlocal strikes
            if payload is not None:
                strikes = 0
                seconds = payload.get("seconds", 0.0)
                result = ConfigResult.from_dict(payload["result"])
                result.translation = payload.get("translation")
                results[plan] = result
                if payload.get("trace_hit"):
                    self.events.emit(PlanTraceHit(
                        plan=plan, index=indices[plan], total=total,
                        key=plan.trace_fingerprint()))
                if result.translation is not None:
                    self.events.emit(PlanTranslationStats(
                        plan=plan, index=indices[plan], total=total,
                        stats=result.translation))
                self.events.emit(PlanFinished(
                    plan=plan, index=indices[plan], total=total,
                    seconds=seconds, attempt=attempt))
                if self.cache is not None:
                    if injecting:
                        faults.set_context(plan=plan.describe(),
                                           attempt=attempt, in_worker=False)
                    self.cache.put(plan, result, seconds=seconds)
                return
            retry, history = self._record_failure(
                reports, plan, attempt, message, transient,
                time.monotonic() - started, fault=fault)
            self.events.emit(PlanFailed(
                plan=plan, error=message, attempt=attempt,
                will_retry=retry, history=history))
            if retry:
                pending.append((plan, attempt + 1,
                                time.monotonic() + self._backoff_delay(attempt)))
            else:
                failures[plan] = message

        def reap(proc, conn):
            proc.join()
            del active[proc]
            conn.close()

        def pop_ready():
            now = time.monotonic()
            for i, item in enumerate(pending):
                if item[2] <= now:
                    return pending.pop(i)
            return None

        try:
            while pending or active:
                while pending and len(active) < jobs:
                    item = pop_ready()
                    if item is None:
                        break  # retries still backing off
                    plan, attempt, _ready = item
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_child_main,
                        args=(child_conn, plan.to_dict(), trace_root,
                              fault_doc, self.heartbeat, attempt),
                        daemon=True,
                    )
                    self.events.emit(PlanStarted(
                        plan=plan, index=indices[plan], total=total,
                        attempt=attempt))
                    proc.start()
                    child_conn.close()
                    now = time.monotonic()
                    active[proc] = [plan, attempt, parent_conn, now, now]

                time.sleep(_POLL_S)
                for proc in list(active):
                    plan, attempt, conn, started, last_beat = active[proc]
                    final = False
                    msg = None
                    while conn.poll():
                        try:
                            received = conn.recv()
                        except (EOFError, OSError):
                            final = True
                            msg = None
                            break
                        if isinstance(received, dict) and "hb" in received:
                            active[proc][4] = time.monotonic()
                            continue
                        final = True
                        msg = received
                        break
                    if final:
                        reap(proc, conn)
                        if msg is None:
                            strikes += 1
                            finish(plan, attempt, started,
                                   message="worker pipe closed unexpectedly",
                                   transient=True)
                        elif msg.get("ok"):
                            finish(plan, attempt, started, payload=msg)
                        else:
                            finish(plan, attempt, started,
                                   message=msg.get("error", "unknown error"),
                                   transient=bool(msg.get("transient")),
                                   fault=msg.get("fault"))
                    elif not proc.is_alive():
                        exitcode = proc.exitcode
                        reap(proc, conn)
                        strikes += 1
                        finish(plan, attempt, started,
                               message=f"worker died (exit code {exitcode})",
                               transient=True)
                    elif (self.timeout is not None
                          and time.monotonic() - started > self.timeout):
                        proc.terminate()
                        reap(proc, conn)
                        finish(plan, attempt, started,
                               message=f"timed out after {self.timeout:g}s",
                               transient=True)
                    elif (self.heartbeat is not None
                          and time.monotonic() - last_beat > self.heartbeat):
                        proc.terminate()
                        reap(proc, conn)
                        finish(plan, attempt, started,
                               message=f"worker heartbeat lost (silent for "
                                       f"> {self.heartbeat:g}s)",
                               transient=True)
                if strikes >= POOL_FAILURE_LIMIT:
                    degraded = True
                    break
        finally:
            for proc, (_plan, _attempt, conn, _started, _beat) in \
                    active.items():
                proc.terminate()
                proc.join()
                conn.close()

        if degraded:
            # the pool itself is failing (not individual plans): run the
            # remainder in-process, where there is no pipe to break and
            # no fork to die. Plans restart their attempt counters.
            leftover = [plan for plan, _a, _r in pending]
            leftover.extend(state[0] for state in active.values())
            active.clear()
            self.events.emit(ExecutorDegraded(
                failures=strikes, remaining=len(leftover),
                reason="consecutive worker deaths/pipe failures"))
            results.update(self._run_serial(
                leftover, indices, total, failures, reports))
        return results
